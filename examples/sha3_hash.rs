//! Drive the real Keccak-f[1600] datapath through the tensor-algebra
//! simulator and validate each permutation against the software golden
//! model — then race the kernels against the baseline simulators.
//!
//! ```text
//! cargo run --release --example sha3_hash
//! ```

use rteaal_baselines::{EssentLike, VerilatorLike};
use rteaal_core::{Compiler, Simulation};
use rteaal_designs::sha3::{keccak_f, sha3};
use rteaal_kernels::{KernelConfig, KernelKind, OptLevel};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = sha3();
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu)).compile(&circuit)?;
    println!(
        "SHA3 datapath: {} ops/cycle across {} layers",
        compiled.plan_stats().effectual_ops,
        compiled.plan_stats().layers
    );
    let mut sim = Simulation::new(compiled);

    // Absorb a block and run the 24-round permutation.
    let msg: Vec<u64> = (0..17)
        .map(|i| 0x0123_4567_89ab_cdefu64.rotate_left(i as u32))
        .collect();
    sim.poke("start", 1)?;
    for (i, m) in msg.iter().enumerate() {
        sim.poke(&format!("in{i}"), *m)?;
    }
    sim.step();
    sim.poke("start", 0)?;
    // Poll do-while style (comb outputs are sampled pre-commit).
    loop {
        sim.step();
        if sim.peek("done") == Some(1) {
            break;
        }
    }
    // Software golden model.
    let mut sw = [[0u64; 5]; 5];
    for (i, m) in msg.iter().enumerate() {
        sw[i / 5][i % 5] ^= m;
    }
    keccak_f(&mut sw);
    assert_eq!(sim.peek("out0"), Some(sw[0][0]));
    assert_eq!(sim.peek("out1"), Some(sw[0][1]));
    println!(
        "digest lane 0: {:#018x} (matches software Keccak)",
        sw[0][0]
    );

    // A small wall-clock shoot-out over 5000 cycles.
    let graph = rteaal_dfg::build(&rteaal_firrtl::lower_typed(&circuit)?)?;
    let sim_plan = rteaal_dfg::plan::plan(&graph);
    for kind in [KernelKind::Psu, KernelKind::Ti] {
        let mut k = rteaal_kernels::Kernel::compile(&sim_plan, KernelConfig::new(kind));
        let t = Instant::now();
        k.run(5000);
        println!("{:<10} 5000 cycles in {:>8.2?}", kind.label(), t.elapsed());
    }
    let mut v = VerilatorLike::compile(&graph, OptLevel::Full);
    let t = Instant::now();
    v.run(5000);
    println!("{:<10} 5000 cycles in {:>8.2?}", "verilator", t.elapsed());
    let mut e = EssentLike::compile(&graph, OptLevel::Full);
    let t = Instant::now();
    e.run(5000);
    println!("{:<10} 5000 cycles in {:>8.2?}", "essent", t.elapsed());
    Ok(())
}
