//! Batched multi-stimulus simulation: run `B` independent testbenches of
//! one design through a single slot-major `LI` matrix, then verify a lane
//! against a scalar simulation and report the throughput amortization.
//!
//! ```text
//! cargo run --release --example batch_sweep
//! ```

use rteaal_core::{BatchSimulation, Compiler, Simulation};
use rteaal_designs::Workload;
use rteaal_kernels::{KernelConfig, KernelKind};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::rocket(1);
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu)).compile(&workload.circuit)?;
    let num_inputs = compiled.plan.input_slots.len();
    println!(
        "{}: {} ops/cycle across {} layers",
        workload.description,
        compiled.plan_stats().effectual_ops,
        compiled.plan_stats().layers
    );

    // Throughput sweep: lane-cycles per second as the batch widens.
    const CYCLES: u64 = 400;
    let mut single_rate = 0.0;
    for lanes in [1usize, 4, 16, 64] {
        let mut batch = BatchSimulation::new(&compiled, lanes);
        let mut streams: Vec<_> = (0..lanes).map(|l| workload.lane_stimulus(l)).collect();
        let t = Instant::now();
        batch.run_with_stimulus(CYCLES, |_, poker| {
            for (lane, stream) in streams.iter_mut().enumerate() {
                for idx in 0..num_inputs {
                    poker.set_input(idx, lane, stream.next_value());
                }
            }
        });
        let rate = (CYCLES * lanes as u64) as f64 / t.elapsed().as_secs_f64();
        if lanes == 1 {
            single_rate = rate;
        }
        println!(
            "B={lanes:<3} {:>10.0} lane-cycles/s  ({:.2}x vs one lane)",
            rate,
            rate / single_rate
        );
    }

    // Bit-exactness spot check: lane 2 of a fresh batch vs a scalar run.
    let lanes = 4;
    let check_lane = 2;
    let mut batch = BatchSimulation::new(&compiled, lanes);
    let mut streams: Vec<_> = (0..lanes).map(|l| workload.lane_stimulus(l)).collect();
    batch.run_with_stimulus(200, |_, poker| {
        for (lane, stream) in streams.iter_mut().enumerate() {
            for idx in 0..num_inputs {
                poker.set_input(idx, lane, stream.next_value());
            }
        }
    });
    let mut scalar = Simulation::new(
        Compiler::new(KernelConfig::new(KernelKind::Psu)).compile(&workload.circuit)?,
    );
    let input_names: Vec<String> = compiled
        .plan
        .input_slots
        .iter()
        .filter_map(|slot| {
            compiled
                .plan
                .probes
                .iter()
                .find(|(_, s, _)| s == slot)
                .map(|(n, _, _)| n.clone())
        })
        .collect();
    let mut stream = workload.lane_stimulus(check_lane);
    for _ in 0..200 {
        for name in &input_names {
            scalar.poke(name, stream.next_value())?;
        }
        scalar.step();
    }
    for name in batch.signals() {
        assert_eq!(
            batch.peek(name, check_lane),
            scalar.peek(name),
            "signal {name}"
        );
    }
    println!("lane {check_lane} of the batch is bit-identical to a scalar run");
    Ok(())
}
