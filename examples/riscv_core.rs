//! Simulate a real RV32I-subset core on every RTeAAL kernel, checking the
//! architectural state against an ISA-level golden model, and use the
//! DMI channel to wait for the program to halt.
//!
//! ```text
//! cargo run --release --example riscv_core
//! ```

use rteaal_core::{Compiler, DebugModule, Simulation};
use rteaal_designs::rv32i::{asm::*, rv32i, GoldenCpu};
use rteaal_kernels::{KernelConfig, ALL_KERNELS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a0 = sum of 1..=20, then halt.
    let program = vec![
        addi(1, 0, 0),  // acc
        addi(2, 0, 20), // n
        add(1, 1, 2),   // loop: acc += n
        addi(2, 2, -1),
        bne(2, 0, -2),
        add(10, 1, 0), // a0 = acc
        jal(0, 6),     // halt (jump to self at pc 6)
    ];
    let circuit = rv32i(&program);

    let mut golden = GoldenCpu::new(&program);
    for _ in 0..100 {
        golden.step();
    }
    println!("golden model: a0 = {}", golden.x[10]);

    for &kind in &ALL_KERNELS {
        let compiled = Compiler::new(KernelConfig::new(kind)).compile(&circuit)?;
        let ops = compiled.plan_stats().effectual_ops;
        let mut sim = Simulation::new(compiled);
        let mut dmi = DebugModule::new(&mut sim);
        let halted_at = dmi.run_until("halt", 200).expect("program halts");
        let a0 = sim.peek("a0").unwrap();
        println!(
            "{:<4} kernel: a0 = {a0} (halted at cycle {halted_at}, {ops} ops/cycle)",
            kind.label()
        );
        assert_eq!(a0, golden.x[10] as u64);
    }
    println!("all seven kernels agree with the ISA golden model");
    Ok(())
}
