//! Quickstart: compile a FIRRTL design into a tensor-algebra kernel and
//! simulate it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rteaal_core::{Compiler, Simulation};
use rteaal_kernels::{KernelConfig, KernelKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small synchronous design in FIRRTL text.
    let src = "\
circuit Gcd :
  module Gcd :
    input clock : Clock
    input start : UInt<1>
    input a : UInt<16>
    input b : UInt<16>
    output result : UInt<16>
    output busy : UInt<1>
    reg x : UInt<16>, clock
    reg y : UInt<16>, clock
    when start :
      x <= a
      y <= b
    else :
      when gt(x, y) :
        x <= tail(sub(x, y), 1)
      else :
        when neq(y, UInt<16>(0)) :
          y <= tail(sub(y, x), 1)
    result <= x
    busy <= neq(y, UInt<16>(0))
";
    // Compile with the PSU kernel (the paper's best scaling point).
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu)).compile_str(src)?;
    println!("design compiled:");
    println!("  effectual ops : {}", compiled.plan_stats().effectual_ops);
    println!("  layers (I)    : {}", compiled.plan_stats().layers);
    println!("  LI slots      : {}", compiled.plan_stats().slots);
    println!("  elided ids    : {}", compiled.plan_stats().identity_ops);
    println!(
        "  kernel code   : {} B",
        compiled.kernel_report().code_bytes
    );
    println!(
        "  OIM data      : {} B",
        compiled.kernel_report().data_bytes
    );

    // The OIM itself is a JSON artifact, exactly as in the paper's flow.
    let json = compiled.oim_json()?;
    println!("  OIM JSON      : {} B", json.len());

    // Simulate: compute gcd(1071, 462) = 21.
    let mut sim = Simulation::new(compiled);
    sim.poke("start", 1)?;
    sim.poke("a", 1071)?;
    sim.poke("b", 462)?;
    sim.step();
    sim.poke("start", 0)?;
    // Combinational outputs are evaluated before the register commit, so
    // `busy` sampled after a step reflects the state that cycle *started*
    // from — poll do-while style.
    loop {
        sim.step();
        if sim.peek("busy") == Some(0) {
            break;
        }
    }
    println!(
        "gcd(1071, 462) = {} after {} cycles",
        sim.peek("result").unwrap(),
        sim.cycle()
    );
    assert_eq!(sim.peek("result"), Some(21));
    Ok(())
}
