//! Waveform generation and XMR-style internal probing (paper §6.2):
//! compile in waveform mode (signal-eliminating optimizations disabled),
//! capture a VCD, and inspect internal signals by hierarchical name.
//!
//! ```text
//! cargo run --example waveform_dmi
//! ```

use rteaal_core::{Compiler, Simulation};
use rteaal_kernels::{KernelConfig, KernelKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = "\
circuit Blinker :
  module Pwm :
    input clock : Clock
    input duty : UInt<4>
    output out : UInt<1>
    reg phase : UInt<4>, clock
    phase <= tail(add(phase, UInt<4>(1)), 1)
    out <= lt(phase, duty)
  module Blinker :
    input clock : Clock
    output led : UInt<1>
    inst pwm of Pwm
    pwm.clock <= clock
    pwm.duty <= UInt<4>(5)
    led <= pwm.out
";
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Nu))
        .with_waveforms()
        .compile_str(src)?;
    let mut sim = Simulation::new(compiled);
    sim.enable_waveforms();
    for _ in 0..32 {
        // XMR: read the *internal* phase register of the pwm instance.
        // Combinational outputs are evaluated before the register commit,
        // so `led` after a step reflects the phase the cycle started from.
        let phase = sim.peek("pwm.phase").unwrap();
        sim.step();
        let led = sim.peek("led").unwrap();
        assert_eq!(led, (phase < 5) as u64);
    }
    let vcd = sim.take_vcd().unwrap();
    let path = std::env::temp_dir().join("blinker.vcd");
    std::fs::write(&path, &vcd)?;
    println!("captured {} signals over 32 cycles", sim.signals().len());
    println!("wrote {} bytes of VCD to {}", vcd.len(), path.display());
    println!("signals visible through XMR: {:?}", sim.signals());
    Ok(())
}
