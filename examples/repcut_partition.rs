//! RepCut-style partitioned simulation (paper Appendix C, Cascade 2):
//! split a multicore design into replicated partitions, simulate them on
//! scoped threads, synchronize through the register update map, and
//! verify against the unpartitioned reference — then report the
//! replication overhead RepCut trades for parallelism.
//!
//! ```text
//! cargo run --release --example repcut_partition
//! ```

use rteaal_designs::{rocket, ChipConfig};
use rteaal_dfg::interp::Interpreter;
use rteaal_dfg::plan::plan;
use rteaal_einsum::RepCutSim;
use rteaal_firrtl::lower_typed;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = rocket(ChipConfig::new(4));
    let graph = rteaal_dfg::build(&lower_typed(&circuit)?)?;
    let sim_plan = plan(&graph);
    println!(
        "4-core RocketChip analog: {} ops/cycle, {} registers",
        sim_plan.total_ops(),
        graph.regs.len()
    );

    let mut reference = Interpreter::new(&graph);
    for partitions in [1usize, 2, 4, 8] {
        let mut rc = RepCutSim::new(&sim_plan, partitions);
        // Verify 50 cycles in lock-step with the reference.
        let mut reference_check = Interpreter::new(&graph);
        for c in 0..50u64 {
            reference_check.set_input(0, c.wrapping_mul(0x9e37_79b9));
            rc.set_input(0, c.wrapping_mul(0x9e37_79b9));
            reference_check.step();
            rc.step_parallel();
            assert_eq!(reference_check.output(0), rc.output(0), "cycle {c}");
        }
        // Wall-clock the threaded path.
        let t = Instant::now();
        for _ in 0..500 {
            rc.step_parallel();
        }
        let threaded = t.elapsed();
        println!(
            "{partitions} partition(s): replication factor {:.2}x, 500 cycles in {:>8.2?}",
            rc.replication_factor(),
            threaded
        );
        // Show the RUM's selectivity (differential exchange).
        let cross = rc.rum().iter().filter(|e| !e.readers.is_empty()).count();
        println!(
            "    RUM: {} of {} registers are read across partition boundaries",
            cross,
            rc.rum().len()
        );
    }
    let t = Instant::now();
    for _ in 0..500 {
        reference.step();
    }
    println!("reference interpreter: 500 cycles in {:>8.2?}", t.elapsed());
    Ok(())
}
