//! RepCut partition-parallel execution (paper Appendix C, Cascade 2)
//! through the production engine stack: run RepCut on the levelized
//! plan with [`PartitionedPlan`], report the replication factor and
//! per-partition op schedules, execute the decomposition through
//! [`BatchSimulation`] with `Partitioning::Fixed(p)`, and verify every
//! partition count bit-exact against the scalar [`Simulation`] — then
//! wall-clock the partitioned cycle walk.
//!
//! ```text
//! cargo run --release --example repcut_partition
//! ```

use rteaal_core::{BatchSimulation, Compiler, PartitionedPlan, Partitioning, Simulation};
use rteaal_designs::{rocket, ChipConfig};
use rteaal_kernels::{KernelConfig, KernelKind};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = rocket(ChipConfig::new(4));
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu)).compile(&circuit)?;
    println!(
        "4-core RocketChip analog: {} ops/cycle over {} layers",
        compiled.plan.total_ops(),
        compiled.plan.stats.layers
    );

    for partitions in [1usize, 2, 4, 8] {
        // The decomposition itself: per-partition schedules + the RUM.
        let pp = PartitionedPlan::new(&compiled.plan, partitions);
        let counts = pp.op_counts();
        println!(
            "{partitions} partition(s): replication factor {:.2}x, ops per partition {:?}",
            pp.replication_factor(),
            counts
        );
        let cross = pp.rum.iter().filter(|e| !e.readers.is_empty()).count();
        println!(
            "    RUM: {} of {} registers are read across partition boundaries",
            cross,
            pp.rum.len()
        );

        // Execute it through the engine stack and verify 50 cycles in
        // lock-step against the scalar reference simulation.
        let mut sim = BatchSimulation::new_with(&compiled, 1, Partitioning::Fixed(partitions))
            .with_threads(partitions);
        let mut reference = Simulation::new(compiled.clone());
        let stim = compiled
            .plan
            .probes
            .iter()
            .find(|(_, s, _)| compiled.plan.input_slots.contains(s))
            .map(|(n, _, _)| n.clone())
            .expect("design has a named input");
        for c in 0..50u64 {
            let x = c.wrapping_mul(0x9e37_79b9);
            reference.poke(&stim, x)?;
            sim.poke(&stim, 0, x)?;
            reference.step();
            sim.step();
            for (name, _) in &compiled.plan.output_slots {
                assert_eq!(
                    sim.peek(name, 0),
                    reference.peek(name),
                    "output {name} diverged at cycle {c}"
                );
            }
        }

        // Wall-clock the partitioned threaded walk.
        let t = Instant::now();
        sim.step_cycles(500);
        println!("    500 cycles in {:>8.2?}", t.elapsed());
    }
    Ok(())
}
