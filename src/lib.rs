//! # rteaal-sim (workspace root)
//!
//! Convenience re-exports of the RTeAAL Sim reproduction. See the
//! individual crates for the full API:
//!
//! - [`rteaal_core`] — compiler + simulation front door.
//! - [`rteaal_firrtl`] — FIRRTL-subset frontend.
//! - [`rteaal_dfg`] — dataflow graph, passes, levelization, plans.
//! - [`rteaal_tensor`] — fibertrees, formats, the OIM encodings.
//! - [`rteaal_einsum`] — extended Einsums + the cascade golden model.
//! - [`rteaal_kernels`] — the seven RU…TI kernels.
//! - [`rteaal_baselines`] — Verilator-like and ESSENT-like simulators.
//! - [`rteaal_perfmodel`] — cache/machine/top-down models.
//! - [`rteaal_designs`] — evaluation designs and workloads.
//! - [`rteaal_sched`] — continuous-batching lane scheduler.
//! - [`rteaal_serve`] — worker pool + socket serving front end.

pub use rteaal_baselines as baselines;
pub use rteaal_core as core;
pub use rteaal_designs as designs;
pub use rteaal_dfg as dfg;
pub use rteaal_einsum as einsum;
pub use rteaal_firrtl as firrtl;
pub use rteaal_kernels as kernels;
pub use rteaal_perfmodel as perfmodel;
pub use rteaal_sched as sched;
pub use rteaal_serve as serve;
pub use rteaal_tensor as tensor;
