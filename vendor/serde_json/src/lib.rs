//! Workspace-local substitute for `serde_json`.
//!
//! Renders the [`serde::Content`] tree to compact JSON (the same
//! observable encoding as real serde_json for the types this workspace
//! serializes: structs as objects with fields in declaration order,
//! unit enum variants as strings, sequences as arrays) and parses JSON
//! text back into [`serde::Content`].

use serde::Content;
use std::fmt;
use std::fmt::Write as _;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_content(&content)?)
}

fn write_content(content: &Content, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => {
            if v.is_finite() {
                // Rust's shortest-roundtrip formatting; integral floats
                // keep a ".0" so they parse back as floats.
                if *v == v.trunc() && v.abs() < 1e15 {
                    let _ = write!(out, "{v:.1}");
                } else {
                    let _ = write!(out, "{v}");
                }
            } else {
                // JSON has no inf/nan; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_str(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(key, out);
                out.push(':');
                write_content(value, out);
            }
            out.push('}');
        }
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our writer.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_composites() {
        let v: Vec<(String, u64)> = vec![("a\"b\\c".into(), u64::MAX), ("x".into(), 0)];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, u64)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn compact_object_encoding() {
        // The derive encodes structs as maps; check the writer output shape.
        let content = Content::Map(vec![
            ("name".into(), Content::Str("T".into())),
            ("n".into(), Content::U64(3)),
        ]);
        let mut out = String::new();
        super::write_content(&content, &mut out);
        assert_eq!(out, "{\"name\":\"T\",\"n\":3}");
    }

    #[test]
    fn floats_roundtrip() {
        for v in [0.0f64, 1.5, -3.25, 1e-9, 2.0, 540000.0] {
            let json = to_string(&v).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(v, back, "{json}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("garbage").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
