//! Workspace-local substitute for the `rand` crate (0.8 API subset).
//!
//! The workspace uses `rand` exclusively for deterministic test stimulus:
//! `StdRng::seed_from_u64`, `Rng::gen`, and `Rng::gen_range`. This crate
//! provides those on top of splitmix64-seeded xoshiro256**. The streams
//! differ from upstream `rand`'s, which is fine — every consumer only
//! relies on determinism, not on specific values.

/// Distribution support: types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the full domain.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from the `span`-sized window starting at `low`
    /// (`span` in "number of representable steps"; 0 means the full
    /// inclusive domain up to `2^64` values).
    fn sample_window<R: RngCore + ?Sized>(rng: &mut R, low: Self, span: u128) -> Self;

    /// The unsigned distance from `low` to `high` in representable steps.
    fn steps(low: Self, high: Self) -> u128;
}

macro_rules! impl_uniform_int {
    ($($t:ty as $w:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_window<R: RngCore + ?Sized>(rng: &mut R, low: Self, span: u128) -> Self {
                // Multiply-shift bounded sampling; bias is negligible for
                // the test-stimulus spans used here.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u64;
                ((low as $w).wrapping_add(draw as $w)) as $t
            }

            fn steps(low: Self, high: Self) -> u128 {
                (high as $w).wrapping_sub(low as $w) as u64 as u128
            }
        }
    )*};
}

impl_uniform_int!(
    u8 as u64,
    u16 as u64,
    u32 as u64,
    u64 as u64,
    usize as u64,
    i8 as i64,
    i16 as i64,
    i32 as i64,
    i64 as i64,
    isize as i64
);

impl SampleUniform for f64 {
    fn sample_window<R: RngCore + ?Sized>(rng: &mut R, low: Self, span: u128) -> Self {
        low + f64::sample(rng) * f64::from_bits(span as u64)
    }

    fn steps(low: Self, high: Self) -> u128 {
        // The window is carried through the span as raw bits.
        (high - low).to_bits() as u128
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_window(rng, self.start, T::steps(self.start, self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_window(rng, low, T::steps(low, high) + 1)
    }
}

/// The low-level generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling, as an extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `low..high` or `low..=high`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, matching `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as upstream does for small seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let x: u64 = a.gen();
            let y: u64 = b.gen();
            assert_eq!(x, y);
        }
        let mut c = StdRng::seed_from_u64(12);
        let z: u64 = c.gen();
        let w: u64 = StdRng::seed_from_u64(11).gen();
        assert_ne!(z, w);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(0..256);
            assert!(v < 256);
            let s: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
            let u: usize = rng.gen_range(2..6);
            assert!((2..6).contains(&u));
        }
    }

    #[test]
    fn gen_covers_domain_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut high = 0u32;
        for _ in 0..64 {
            let v: u64 = rng.gen();
            high += (v > u64::MAX / 2) as u32;
        }
        assert!(high > 10 && high < 54);
    }
}
