//! Workspace-local substitute for the `serde` crate.
//!
//! The build environment has no access to a cargo registry, so this crate
//! implements the exact subset of serde's surface the workspace uses:
//! `#[derive(Serialize, Deserialize)]` on named-field structs and
//! unit-variant enums, driven through a self-describing [`Content`] tree
//! that `serde_json` renders to and parses from JSON.
//!
//! The data model is deliberately simple: structs become maps keyed by
//! field name (in declaration order), unit enum variants become strings,
//! sequences/tuples/arrays become sequences. This matches serde_json's
//! observable encoding for every type the workspace serializes.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The self-describing intermediate value all (de)serialization goes
/// through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, `Vec`).
    Seq(Vec<Content>),
    /// Map with string keys, in insertion order (structs).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a struct field by name.
    pub fn field(&self, name: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable mismatch description.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Builds an error for an unexpected content shape.
    pub fn expected(what: &str, got: &Content) -> Error {
        Error(format!("expected {what}, got {got:?}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can render itself to [`Content`].
pub trait Serialize {
    /// Converts to the intermediate representation.
    fn to_content(&self) -> Content;
}

/// A value that can rebuild itself from [`Content`].
pub trait Deserialize: Sized {
    /// Parses from the intermediate representation.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| Error(format!("{v} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let wide: i64 = match content {
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| Error(format!("{v} out of range for i64")))?,
                    Content::I64(v) => *v,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .seq()
            .ok_or_else(|| Error::expected("sequence", content))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let items = content
            .seq()
            .ok_or_else(|| Error::expected("array", content))?;
        if items.len() != N {
            return Err(Error(format!("expected {N} elements, got {}", items.len())));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_content(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let items = content.seq().ok_or_else(|| Error::expected("tuple", content))?;
                let mut it = items.iter();
                let tuple = ($(
                    $t::from_content(
                        it.next().ok_or_else(|| Error("tuple too short".into()))?,
                    )?,
                )+);
                Ok(tuple)
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-7i32).to_content()).unwrap(), -7);
        assert!(bool::from_content(&true.to_content()).unwrap());
        let v = vec![(1u32, "x".to_string()), (2, "y".to_string())];
        assert_eq!(
            Vec::<(u32, String)>::from_content(&v.to_content()).unwrap(),
            v
        );
        let arr = [3u64, 9];
        assert_eq!(<[u64; 2]>::from_content(&arr.to_content()).unwrap(), arr);
    }

    #[test]
    fn errors_are_reported() {
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(String::from_content(&Content::Bool(false)).is_err());
    }
}
