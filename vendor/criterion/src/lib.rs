//! Workspace-local substitute for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! mean-over-samples timer instead of criterion's full statistics.
//! Filters passed on the command line (`cargo bench -- <substr>`) select
//! benchmark ids by substring, like upstream.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a group (reported as elements/second).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_id.into()),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The per-iteration timing harness handed to bench closures.
pub struct Bencher {
    samples: u32,
    /// Mean wall-clock per iteration, filled by `iter`.
    mean: Duration,
}

impl Bencher {
    /// Times `f`, storing the mean duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call, then `samples` timed calls.
        black_box(f());
        let t0 = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = t0.elapsed() / self.samples.max(1);
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: u32,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with("--") && a != "--bench")
            .collect();
        Criterion {
            sample_size: 10,
            filters,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Accepted for API compatibility; sampling here is count-based.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self, id, None, f);
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, tp: Option<Throughput>, mut f: F) {
    if !c.selected(id) {
        return;
    }
    let mut b = Bencher {
        samples: c.sample_size,
        mean: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.mean;
    let rate = match tp {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if !per_iter.is_zero() => {
            format!("  ({:.3e} /s)", n as f64 / per_iter.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{id:<48} {per_iter:>12.3?}/iter{rate}");
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    c: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's throughput annotation.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(self.c, &full, self.throughput, f);
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(self.c, &full, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group entry point, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}
