//! Workspace-local substitute for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! two shapes the workspace serializes: structs with named fields and
//! enums with unit variants only. No `syn`/`quote` — the item is parsed
//! directly from the token stream (the registry is unreachable in this
//! build environment), and generics / tuple structs / data-carrying
//! variants are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive input.
enum Item {
    /// Struct name + field names in declaration order.
    Struct(String, Vec<String>),
    /// Enum name + unit variant names.
    Enum(String, Vec<String>),
}

/// Skips one attribute (`#[...]`) if present; returns whether it did.
fn skip_attr(tokens: &[TokenTree], pos: &mut usize) -> bool {
    if let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() == '#' {
            *pos += 1;
            if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                *pos += 1;
            }
            return true;
        }
    }
    false
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("serde derive: expected identifier, found {other:?}"),
    }
}

/// Parses the field names out of a struct body.
fn struct_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < body.len() {
        while skip_attr(body, &mut pos) {}
        if pos >= body.len() {
            break;
        }
        skip_vis(body, &mut pos);
        let name = ident(body, &mut pos);
        match body.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => panic!("serde derive: only named-field structs are supported (field `{name}`)"),
        }
        fields.push(name);
        // Consume the type: everything until a comma outside angle brackets.
        let mut angle_depth = 0i32;
        while pos < body.len() {
            match &body[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

/// Parses the variant names out of an enum body (unit variants only).
fn enum_variants(body: &[TokenTree]) -> Vec<String> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < body.len() {
        while skip_attr(body, &mut pos) {}
        if pos >= body.len() {
            break;
        }
        let name = ident(body, &mut pos);
        match body.get(pos) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde derive: explicit discriminants unsupported (variant `{name}`)")
            }
            Some(TokenTree::Group(_)) => {
                panic!("serde derive: only unit variants are supported (variant `{name}`)")
            }
            other => panic!("serde derive: unexpected token after variant `{name}`: {other:?}"),
        }
        variants.push(name);
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    while skip_attr(&tokens, &mut pos) {}
    skip_vis(&tokens, &mut pos);
    let kind = ident(&tokens, &mut pos);
    let name = ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic types are not supported (`{name}`)");
    }
    let body = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        other => panic!("serde derive: expected braced body for `{name}`, found {other:?}"),
    };
    match kind.as_str() {
        "struct" => Item::Struct(name, struct_fields(&body)),
        "enum" => Item::Enum(name, enum_variants(&body)),
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

/// Derives the workspace-local `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the workspace-local `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(content.field(\"{f}\")\
                             .ok_or_else(|| ::serde::Error(format!(\"missing field `{f}`\")))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                         match content {{\n\
                             ::serde::Content::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::Error(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => Err(::serde::Error::expected(\"variant string\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
