//! Workspace-local substitute for the `proptest` crate.
//!
//! Implements the subset `tests/properties.rs` uses: the `proptest!`
//! macro with a `proptest_config` attribute, range / `Just` / mapped /
//! union strategies, `prop::collection::vec`, `prop::sample::select`,
//! and `any` for integers and tuples. Cases are generated from a
//! deterministic per-test seed; there is no shrinking — a failing case
//! panics with the standard assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng, Standard};

/// Run-count configuration (field-update syntax compatible).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// A boxed, type-erased strategy (the element type of `prop_oneof!`).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy (used by `prop_oneof!` to unify arm types).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

impl<T: SampleUniform + Standard> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// A strategy mapped through a function.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_primitive {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_primitive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

macro_rules! impl_arbitrary_tuple {
    ($(($($t:ident),+))*) => {$(
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            #[allow(non_snake_case)]
            fn arbitrary(rng: &mut StdRng) -> Self {
                $( let $t = $t::arbitrary(rng); )+
                ($($t,)+)
            }
        }
    )*};
}

impl_arbitrary_tuple! {
    (A, B)
    (A, B, C)
}

/// The full-domain strategy for an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;
        use rand::Rng;

        /// A strategy for vectors of `element` with a length in `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = if self.size.min >= self.size.max {
                    self.size.min
                } else {
                    rng.gen_range(self.size.min..self.size.max)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Uniform choice from a fixed list.
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut StdRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }

        /// `prop::sample::select(values)`.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select needs at least one value");
            Select(values)
        }
    }
}

/// A collection size specification (`usize` or `Range<usize>`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Exclusive upper bound.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Builds the deterministic RNG for one test case.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ ((case as u64) << 32))
}

/// The proptest entry-point macro (config attribute + `arg in strategy`
/// test functions).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strategy:expr),* $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::case_rng(stringify!($name), case);
                $(
                    let $arg = $crate::Strategy::generate(&($strategy), &mut __proptest_rng);
                )*
                $body
            }
        }
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    (($config:expr);) => {};
}

/// Assertion macro (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion macro (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion macro (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, boxed, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tag {
        A,
        B(u32),
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs(
            n in 2usize..6,
            xs in prop::collection::vec(any::<(u64, u64)>(), 3..9),
            tag in prop_oneof![Just(Tag::A), (1u32..4).prop_map(Tag::B)],
            pick in prop::sample::select(vec![10u64, 20, 30]),
        ) {
            prop_assert!((2..6).contains(&n));
            prop_assert!(xs.len() >= 3 && xs.len() < 9);
            match tag {
                Tag::A => {}
                Tag::B(v) => prop_assert!((1..4).contains(&v)),
            }
            prop_assert!([10, 20, 30].contains(&pick));
        }
    }
}
