//! Exhaustive wire-protocol coverage: every verb round-trips through
//! the line-JSON envelope, every malformed-envelope shape is refused
//! with a per-request error (never a dropped connection), and the
//! client-side transport faults — truncated line, clean close, garbage
//! response — surface as the right typed [`ProtocolError`]. The happy
//! path is smoked in `socket_smoke.rs`; this module owns the edges.

use rteaal_sched::Job;
use rteaal_serve::{
    designs_digest, ProtocolError, Request, Response, ServeClient, ServeConfig, ServerPool,
    SocketServer, Verb, WireAnalysis, WireBinding, WireDesign, WireJob, WirePong, WireResult,
    WireStats,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// The counter design used for live register/designs coverage.
const COUNTER_SRC: &str = "\
circuit H :
  module H :
    input clock : Clock
    input limit : UInt<8>
    output cnt : UInt<8>
    output done : UInt<1>
    reg acc : UInt<8>, clock
    acc <= tail(add(acc, UInt<8>(1)), 1)
    cnt <= acc
    done <= geq(acc, limit)
";

fn spawn_server() -> SocketAddr {
    let compiled = rteaal_core::Compiler::new(rteaal_kernels::KernelConfig::new(
        rteaal_kernels::KernelKind::Psu,
    ))
    .compile_str(COUNTER_SRC)
    .expect("counter compiles");
    let pool =
        ServerPool::new(&compiled, ServeConfig::with_workers(1), "done").expect("done resolves");
    SocketServer::bind(pool, "127.0.0.1:0")
        .expect("binds loopback")
        .spawn()
        .expect("accept loop spawns")
}

#[test]
fn every_verb_round_trips_through_the_envelope() {
    let job = WireJob {
        name: "sum-5".to_string(),
        budget: 27,
        inputs: vec![WireBinding {
            name: "limit".to_string(),
            value: 5,
        }],
        state_pokes: vec![WireBinding {
            name: "x15".to_string(),
            value: 5,
        }],
        probes: vec!["a0".to_string()],
        design: None,
    };
    let requests = [
        Request::submit(job.clone()),
        Request::submit(job.clone().on_design("sha3")),
        Request::poll(3),
        Request::result(None),
        Request::result(Some(7)),
        Request::stats(),
        Request::register("sha3", COUNTER_SRC, "done"),
        Request::designs(),
        Request::ping(),
        Request::metrics(),
        Request::timeline(7),
    ];
    for request in requests {
        let line = serde_json::to_string(&request).expect("serializes");
        let back: Request = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, request, "{line}");
    }

    let result = WireResult {
        id: 4,
        name: "sum-5".to_string(),
        outcome: "completed".to_string(),
        error: None,
        outputs: vec![WireBinding {
            name: "a0".to_string(),
            value: 15,
        }],
        cycles: 20,
        admitted_at: 2,
        finished_at: 22,
    };
    let stats = WireStats {
        workers: 2,
        lanes: 4,
        designs: 2,
        submitted: 9,
        cycles: 100,
        busy_lane_cycles: 320,
        admitted: 9,
        completed: 8,
        evicted: 1,
        rejected: 0,
        utilization: 0.8,
        uptime_ms: 42,
        queue_depth: 1,
    };
    let responses = [
        Response::submitted(4),
        Response::pending(4),
        Response::result(result),
        Response::stats(stats),
        Response::registered("sha3"),
        Response::designs(vec![
            WireDesign {
                name: "default".to_string(),
                default: true,
                analysis: WireAnalysis {
                    ops: 5,
                    layers: 2,
                    slots: 9,
                    registers: 1,
                    dead_ops: 0,
                    never_toggling: 0,
                    warnings: 0,
                    activity: 12.0,
                },
            },
            WireDesign {
                name: "sha3".to_string(),
                default: false,
                analysis: WireAnalysis::default(),
            },
        ]),
        Response::pong(WirePong {
            uptime_ms: 12_345,
            designs: 2,
            digest: designs_digest(&["default".to_string(), "sha3".to_string()]),
        }),
        Response::error("no such job"),
    ];
    for response in responses {
        let line = serde_json::to_string(&response).expect("serializes");
        let back: Response = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, response, "{line}");
    }
}

#[test]
fn malformed_envelopes_are_refused_at_parse_time() {
    // Every shape a confused (or hostile) client might send. Each must
    // fail as a parse error — the server turns these into per-request
    // `kind:"error"` responses, never a crash.
    let bad = [
        "{}",                                               // no verb
        r#"{"id":3}"#,                                      // no verb, other fields
        r#"{"verb":42}"#,                                   // verb wrong type
        r#"{"verb":"zap"}"#,                                // unknown verb
        r#"{"verb":"submit","job":{}}"#,                    // job missing name/budget
        r#"{"verb":"submit","job":{"name":"j"}}"#,          // job missing budget
        r#"{"verb":"submit","job":{"name":7,"budget":1}}"#, // name wrong type
        r#"{"verb":"poll","id":"seven"}"#,                  // id wrong type
        r#"{"verb":"poll","id":-1}"#,                       // id negative
        "not json at all",
        r#"["verb","poll"]"#, // array, not map
    ];
    for line in bad {
        assert!(
            serde_json::from_str::<Request>(line).is_err(),
            "{line} should not parse"
        );
    }
    // Responses are parsed just as strictly client-side.
    assert!(serde_json::from_str::<Response>(r#"{"kind":"result"}"#).is_err());
    assert!(serde_json::from_str::<Response>(r#"{"ok":true}"#).is_err());
    assert!(
        serde_json::from_str::<Response>(r#"{"ok":true,"kind":"result","result":{"id":1}}"#)
            .is_err(),
        "truncated result payloads must not parse"
    );
    // Pong payloads are validated field-by-field like every other kind.
    assert!(
        serde_json::from_str::<Response>(r#"{"ok":true,"kind":"pong","pong":{}}"#).is_err(),
        "empty pong payloads must not parse"
    );
    assert!(
        serde_json::from_str::<Response>(r#"{"ok":true,"kind":"pong","pong":{"uptime_ms":1}}"#)
            .is_err(),
        "pong missing designs/digest must not parse"
    );
    assert!(
        serde_json::from_str::<Response>(
            r#"{"ok":true,"kind":"pong","pong":{"uptime_ms":-5,"designs":1,"digest":2}}"#
        )
        .is_err(),
        "negative uptime must not parse"
    );
}

/// Sends one raw line to a live server and parses the response line.
fn raw_call(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Response {
    writer.write_all(line.as_bytes()).expect("writes");
    writer.write_all(b"\n").expect("writes newline");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reads");
    serde_json::from_str(reply.trim_end()).expect("server lines always parse")
}

#[test]
fn bad_requests_get_error_responses_and_the_connection_survives() {
    let addr = spawn_server();
    let stream = TcpStream::connect(addr).expect("connects");
    let mut writer = stream.try_clone().expect("clones");
    let mut reader = BufReader::new(stream);
    let cases = [
        ("garbage", "bad request"),
        (r#"{"verb":"zap"}"#, "unknown verb"),
        (r#"{"verb":"submit"}"#, "submit needs"),
        (r#"{"verb":"poll"}"#, "poll needs"),
        (r#"{"verb":"poll","id":12345}"#, "unknown job id"),
        (r#"{"verb":"register"}"#, "register needs"),
        (
            r#"{"verb":"register","design":"d","source":"circuit nope","halt":"done"}"#,
            "failed to compile",
        ),
    ];
    for (line, want) in cases {
        let response = raw_call(&mut writer, &mut reader, line);
        assert!(!response.ok, "{line}");
        assert_eq!(response.kind, "error");
        let error = response.error.expect("error responses carry a message");
        assert!(error.contains(want), "{line}: {error}");
    }
    // After all that abuse, the connection still serves real requests.
    let response = raw_call(&mut writer, &mut reader, r#"{"verb":"stats"}"#);
    assert!(response.ok);
    assert_eq!(response.stats.expect("stats payload").designs, 1);
}

/// A combinationally cyclic design: `a` and `b` feed each other with no
/// register in the loop.
const CYCLIC_SRC: &str = "\
circuit Loop :
  module Loop :
    input clock : Clock
    input x : UInt<1>
    output y : UInt<1>
    node a = not(b)
    node b = not(a)
    y <= and(a, x)
";

#[test]
fn cyclic_design_register_is_a_structured_error_and_the_connection_survives() {
    // Regression for the `register` hardening: a malformed/cyclic design
    // must come back as a per-request server error — never a panic that
    // tears down the connection thread mid-session.
    let addr = spawn_server();
    let stream = TcpStream::connect(addr).expect("connects");
    let mut writer = stream.try_clone().expect("clones");
    let mut reader = BufReader::new(stream);

    let request = serde_json::to_string(&Request::register("loopy", CYCLIC_SRC, "y"))
        .expect("request serializes");
    let response = raw_call(&mut writer, &mut reader, &request);
    assert!(!response.ok, "cyclic designs must be refused");
    assert_eq!(response.kind, "error");
    let error = response.error.expect("refusals carry a message");
    assert!(error.contains("failed to compile"), "{error}");

    // The refusal never entered the registry, and the same connection
    // keeps serving requests.
    let response = raw_call(&mut writer, &mut reader, r#"{"verb":"designs"}"#);
    assert!(response.ok);
    let designs = response.designs.expect("designs payload");
    assert_eq!(designs.len(), 1, "only the default design is registered");
    // The registry exposes the verifier's per-design statistics.
    assert!(designs[0].analysis.ops > 0);
    assert!(designs[0].analysis.activity > 0.0);
    assert_eq!(designs[0].analysis.registers, 1);
}

#[test]
fn register_and_designs_flow_over_a_live_socket() {
    let addr = spawn_server();
    let mut client = ServeClient::connect(addr).expect("connects");
    // Initially only the default design exists.
    let designs = client.designs().expect("designs verb");
    assert_eq!(designs.len(), 1);
    assert!(designs[0].default);
    assert_eq!(designs[0].name, "default");

    // Register a second copy of the counter under a new name; bad
    // registrations are per-request server errors.
    client
        .register("twin", COUNTER_SRC, "done")
        .expect("registers");
    match client.register("twin", COUNTER_SRC, "done") {
        Err(ProtocolError::Server(message)) => {
            assert!(message.contains("already registered"), "{message}");
        }
        other => panic!("duplicate register should fail server-side: {other:?}"),
    }
    match client.register("ghosted", COUNTER_SRC, "ghost") {
        Err(ProtocolError::Server(message)) => {
            assert!(message.contains("unknown halt"), "{message}");
        }
        other => panic!("unknown halt should fail server-side: {other:?}"),
    }
    let names: Vec<String> = client
        .designs()
        .expect("designs verb")
        .into_iter()
        .map(|d| d.name)
        .collect();
    assert_eq!(names, vec!["default".to_string(), "twin".to_string()]);

    // Jobs route to the named design and come back bit-identical to
    // the default (it is the same circuit).
    let job = Job::new("count-5", 13)
        .with_input("limit", 5)
        .with_probe("cnt");
    let on_twin = client.submit_to("twin", &job).expect("submits to twin");
    let on_default = client.submit(&job).expect("submits to default");
    let mut results = vec![
        client.next_result().expect("streams"),
        client.next_result().expect("streams"),
    ];
    results.sort_by_key(|r| r.id);
    assert_eq!(results[0].id, on_twin.min(on_default));
    assert_eq!(results[1].id, on_twin.max(on_default));
    for result in &results {
        assert!(result.completed());
        assert_eq!(result.output("cnt"), Some(6));
    }

    // A job naming an unregistered design is accepted on the wire but
    // comes back rejected — never silently run on the wrong circuit.
    let id = client.submit_to("nope", &job).expect("submission succeeds");
    let rejected = client.result(id).expect("result arrives");
    assert_eq!(rejected.outcome, "rejected");
    assert!(rejected.error.expect("reason").contains("unknown design"));

    let stats = client.stats().expect("stats");
    assert_eq!(stats.designs, 2);
}

#[test]
fn ping_reports_uptime_and_a_registry_sensitive_digest() {
    let addr = spawn_server();
    let mut client = ServeClient::connect(addr).expect("connects");
    let first = client.ping().expect("ping answers");
    assert_eq!(first.designs, 1, "only the default design exists");
    assert_eq!(
        first.digest,
        designs_digest(&["default".to_string()]),
        "digest covers the registry in order"
    );
    // Registering a design changes the digest — the rejoin probe's
    // cheap way to notice a host with different state.
    client
        .register("twin", COUNTER_SRC, "done")
        .expect("registers");
    let second = client.ping().expect("ping answers");
    assert_eq!(second.designs, 2);
    assert_eq!(
        second.digest,
        designs_digest(&["default".to_string(), "twin".to_string()])
    );
    assert_ne!(first.digest, second.digest);
    assert!(second.uptime_ms >= first.uptime_ms, "uptime is monotonic");
}

#[test]
fn metrics_and_timeline_flow_over_a_live_socket() {
    let addr = spawn_server();
    let mut client = ServeClient::connect(addr).expect("connects");

    // Run one job end to end so every lifecycle stage gets recorded.
    let id = client
        .submit(
            &Job::new("count-5", 32)
                .with_input("limit", 5)
                .with_probe("cnt"),
        )
        .expect("submits");
    let result = client.result(id).expect("finishes");
    assert!(result.completed());

    let (snapshot, exposition) = client.metrics().expect("metrics verb answers");
    assert_eq!(snapshot.counter("sched.completed"), 1);
    assert_eq!(snapshot.counter("sched.admitted"), 1);
    assert!(
        snapshot
            .histogram("serve.dispatch_latency_us")
            .is_some_and(|h| h.hist.count == 1),
        "dispatch latency was sampled"
    );
    assert!(snapshot.uptime_ms <= client.stats().expect("stats").uptime_ms);
    // The Prometheus rendering names the same instruments.
    assert!(exposition.contains("# TYPE sched_completed counter"));
    assert!(exposition.contains("serve_dispatch_latency_us_bucket"));

    let timeline = client.timeline(id).expect("timeline verb answers");
    let stages: Vec<_> = timeline.iter().map(|e| e.stage).collect();
    assert_eq!(
        stages,
        rteaal_telemetry::ALL_STAGES.to_vec(),
        "all six stages present in pipeline order"
    );
    assert!(
        timeline.windows(2).all(|w| w[0].at_us <= w[1].at_us),
        "timestamps are non-decreasing"
    );

    // An id the server never saw answers with an empty timeline, not
    // an error — absence of history is a valid observation.
    assert!(client.timeline(10_000).expect("answers").is_empty());
}

/// A fake server for client-side fault coverage: accepts one
/// connection, reads one request line, then answers with `reply` —
/// verbatim, no newline added — and closes.
fn fake_server(reply: &'static [u8]) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
    let addr = listener.local_addr().expect("addr");
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accepts");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("reads the request");
        writer.write_all(reply).expect("writes the reply");
        // Dropping both halves closes the connection.
    });
    addr
}

#[test]
fn mid_line_eof_surfaces_as_truncated_line_with_the_partial() {
    // Regression: a server dying mid-response used to surface as an
    // opaque io error. It must be a typed `TruncatedLine` carrying the
    // bytes that did arrive.
    let partial = br#"{"ok":true,"kind":"stat"#;
    let addr = fake_server(partial);
    let mut client = ServeClient::connect(addr).expect("connects");
    match client.stats() {
        Err(error @ ProtocolError::TruncatedLine { .. }) => {
            assert_eq!(
                error.truncated_partial(),
                Some(r#"{"ok":true,"kind":"stat"#),
                "the partial line is preserved verbatim"
            );
            assert!(error.is_fatal(), "a truncated connection is unusable");
            let shown = error.to_string();
            assert!(shown.contains("mid-line"), "{shown}");
        }
        other => panic!("expected TruncatedLine, got {other:?}"),
    }
}

#[test]
fn clean_close_and_garbage_replies_get_their_own_typed_errors() {
    // EOF at a line boundary (the server closed without answering).
    let mut client = ServeClient::connect(fake_server(b"")).expect("connects");
    match client.stats() {
        Err(ProtocolError::ConnectionClosed) => {}
        other => panic!("expected ConnectionClosed, got {other:?}"),
    }

    // A complete line that is not a protocol envelope.
    let mut client = ServeClient::connect(fake_server(b"not json\n")).expect("connects");
    match client.stats() {
        Err(ProtocolError::Malformed { line, .. }) => assert_eq!(line, "not json"),
        other => panic!("expected Malformed, got {other:?}"),
    }

    // A server-side refusal is the one *non-fatal* kind.
    let addr = spawn_server();
    let mut client = ServeClient::connect(addr).expect("connects");
    match client.poll(99) {
        Err(error @ ProtocolError::Server(_)) => assert!(!error.is_fatal()),
        other => panic!("expected Server, got {other:?}"),
    }
    // ...and the connection survives it.
    assert!(client.stats().is_ok());
    assert_eq!(client.stats().unwrap().workers, 1);
}

#[test]
fn verb_constructors_match_their_wire_names() {
    for (verb, name) in [
        (Verb::Submit, "submit"),
        (Verb::Poll, "poll"),
        (Verb::Result, "result"),
        (Verb::Stats, "stats"),
        (Verb::Register, "register"),
        (Verb::Designs, "designs"),
        (Verb::Ping, "ping"),
        (Verb::Metrics, "metrics"),
        (Verb::Timeline, "timeline"),
    ] {
        let line = serde_json::to_string(&verb).expect("serializes");
        assert_eq!(line, format!("\"{name}\""));
        let back: Verb = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, verb);
    }
}
