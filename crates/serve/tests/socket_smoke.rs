//! End-to-end loopback smoke of the socket front end: a real
//! `TcpListener`, real corpus jobs over the wire, and a bit-exactness
//! check of every streamed result against scalar runs — the same
//! sequence the CI smoke drives through `tables -- serve`.

use rteaal_core::{Compiler, DebugModule, Simulation};
use rteaal_designs::Workload;
use rteaal_kernels::{KernelConfig, KernelKind};
use rteaal_sched::Job;
use rteaal_serve::{ServeClient, ServeConfig, ServerPool, SocketServer};

fn corpus_job(k: u64) -> Job {
    let mut job = Job::new(format!("sum-{k}"), Workload::param_sum_budget(k));
    job.state_pokes = vec![("x15".to_string(), k)];
    job.probes = vec!["a0".to_string(), "pc_out".to_string()];
    job
}

#[test]
fn three_jobs_over_loopback_are_bit_exact() {
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu))
        .compile(&Workload::param_sum_circuit())
        .expect("rv32i compiles");
    let pool =
        ServerPool::new(&compiled, ServeConfig::with_workers(2), "halt").expect("halt resolves");
    let addr = SocketServer::bind(pool, "127.0.0.1:0")
        .expect("binds loopback")
        .spawn()
        .expect("accept loop spawns");

    let mut client = ServeClient::connect(addr).expect("connects");
    let ks = [5u64, 30, 2];
    let ids: Vec<u64> = ks
        .iter()
        .map(|&k| client.submit(&corpus_job(k)).expect("submits"))
        .collect();

    // Results stream back in completion order; collect all three.
    let mut results = Vec::new();
    for _ in &ks {
        results.push(client.next_result().expect("streams a result"));
    }
    for (&k, &id) in ks.iter().zip(&ids) {
        let r = results
            .iter()
            .find(|r| r.id == id)
            .expect("one result per submitted id");
        assert!(r.completed(), "k={k}");
        // Closed form and scalar run agree with the wire result.
        assert_eq!(r.output("a0"), Some(Workload::param_sum_expected(k)));
        let mut scalar = Simulation::new(compiled.clone());
        DebugModule::new(&mut scalar)
            .poke_reg("x15", k)
            .expect("x15 probed");
        while scalar.peek("halt") != Some(1) {
            scalar.step();
        }
        assert_eq!(r.output("a0"), scalar.peek("a0"), "k={k} a0");
        assert_eq!(r.output("pc_out"), scalar.peek("pc_out"), "k={k} pc");
        assert_eq!(r.cycles, scalar.cycle(), "k={k} completion cycle");
    }

    // The stats verb aggregates across workers.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.workers, 2);

    // Poll on a drained id errors (already claimed); a fresh submission
    // polls pending-then-done.
    assert!(client.poll(ids[0]).is_err(), "claimed ids are gone");
    let id = client.submit(&corpus_job(40)).expect("submits");
    let result = loop {
        if let Some(r) = client.poll(id).expect("polls") {
            break r;
        }
        std::thread::yield_now();
    };
    assert_eq!(result.output("a0"), Some(Workload::param_sum_expected(40)));

    // A malformed line errors without poisoning the connection.
    let mut raw = ServeClient::connect(addr).expect("second client connects");
    assert!(raw.poll(12345).is_err(), "unknown id on a fresh connection");
    assert!(raw.stats().is_ok(), "connection stays usable after errors");
}
