//! Property-based end-to-end correctness of the serving pool: N
//! concurrent clients submitting a *shuffled* mixed-length corpus
//! through a [`ServerPool`] must get back, job for job, results
//! bit-identical to dedicated scalar [`Simulation`] runs of the same
//! testbenches — same architectural outputs, same completion cycle —
//! regardless of worker count, lane count, chunk size, submission
//! interleaving, or which worker's lane a job lands on.

use proptest::prelude::*;
use rteaal_core::{Compiled, Compiler, DebugModule, Simulation};
use rteaal_designs::Workload;
use rteaal_kernels::{KernelConfig, KernelKind};
use rteaal_sched::Job;
use rteaal_serve::{JobHandle, ServeConfig, ServerPool};
use std::collections::HashMap;
use std::sync::OnceLock;

const PROBES: [&str; 3] = ["a0", "pc_out", "halt"];

/// The one corpus circuit, compiled once for the whole test binary
/// (every param-sum job shares it; the loop bound travels in the DMI
/// poke).
fn compiled() -> &'static Compiled {
    static COMPILED: OnceLock<Compiled> = OnceLock::new();
    COMPILED.get_or_init(|| {
        Compiler::new(KernelConfig::new(KernelKind::Psu))
            .compile(&Workload::param_sum_circuit())
            .expect("rv32i compiles")
    })
}

/// Scalar reference for loop bound `k`: probe values at halt and the
/// cycle count, memoizable because jobs are fully determined by `k`.
fn scalar_reference(k: u64) -> (Vec<(String, u64)>, u64) {
    let mut sim = Simulation::new(compiled().clone());
    {
        let mut dmi = DebugModule::new(&mut sim);
        dmi.poke_reg("x15", k).expect("x15 is probed");
    }
    for _ in 0..Workload::param_sum_budget(k) {
        sim.step();
        if sim.peek("halt") == Some(1) {
            break;
        }
    }
    assert_eq!(sim.peek("halt"), Some(1), "k={k} halts within budget");
    let outputs = PROBES
        .iter()
        .map(|p| ((*p).to_string(), sim.peek(p).expect("probed")))
        .collect();
    (outputs, sim.cycle())
}

/// A param-sum job for loop bound `k` (what a serving client builds
/// from `Workload::corpus_params` without constructing circuits).
fn job_for(k: u64) -> Job {
    let mut job = Job::new(format!("rv32i-k{k}"), Workload::param_sum_budget(k));
    job.state_pokes = vec![("x15".to_string(), k)];
    job.probes = PROBES.iter().map(|p| (*p).to_string()).collect();
    job
}

/// Deterministically shuffles the corpus (Fisher–Yates over splitmix).
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut stream = rteaal_designs::workload::Stimulus::from_seed(seed);
    for i in (1..items.len()).rev() {
        let j = (stream.next_value() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn concurrent_clients_get_scalar_identical_results(
        workers in prop::sample::select(vec![1usize, 2, 4]),
        clients in 1usize..4,
        jobs_per_client in 1usize..6,
        corpus_seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
        lanes in 1usize..5,
        chunk in prop::sample::select(vec![1u64, 7, 64]),
    ) {
        let total = clients * jobs_per_client;
        let mut ks = Workload::corpus_params(total, corpus_seed);
        shuffle(&mut ks, shuffle_seed);

        let mut cfg = ServeConfig::with_workers(workers);
        cfg.lanes = lanes;
        cfg.chunk_cycles = chunk;
        let pool = ServerPool::new(compiled(), cfg, "halt").expect("halt resolves");

        // Each client thread submits its slice of the shuffled corpus
        // and waits for its own results, concurrently with the others.
        let client_results: Vec<Vec<(u64, rteaal_sched::JobResult)>> =
            std::thread::scope(|scope| {
                let pool = &pool;
                let handles: Vec<_> = ks
                    .chunks(jobs_per_client)
                    .map(|slice| {
                        scope.spawn(move || {
                            let submitted: Vec<(u64, JobHandle)> = slice
                                .iter()
                                .map(|&k| (k, pool.submit(job_for(k))))
                                .collect();
                            submitted
                                .into_iter()
                                .map(|(k, h)| (k, h.wait()))
                                .collect()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

        // Every job's harvested outputs and local cycle count are
        // bit-identical to its scalar reference run.
        let mut reference: HashMap<u64, (Vec<(String, u64)>, u64)> = HashMap::new();
        for (k, result) in client_results.into_iter().flatten() {
            let (outputs, cycles) = reference
                .entry(k)
                .or_insert_with(|| scalar_reference(k));
            prop_assert!(result.completed(), "k={k} completed");
            prop_assert_eq!(&result.outputs, outputs, "k={} outputs", k);
            prop_assert_eq!(result.cycles, *cycles, "k={} cycles", k);
            prop_assert_eq!(
                result.outputs[0].1,
                Workload::param_sum_expected(k),
                "k={} closed form", k
            );
        }

        let stats = pool.shutdown();
        prop_assert_eq!(stats.submitted, total as u64);
        prop_assert_eq!(stats.merged.completed, total);
        prop_assert_eq!(stats.merged.evicted, 0);
        prop_assert_eq!(stats.unclaimed, 0, "every handle claimed its result");
    }
}
