//! Property-based checks of the consistent-hash ring that partitions a
//! corpus across shards: the mapping must be a *function* of the live
//! shard set (one owner per key, deterministically), and shard
//! add/remove must remap only the expected ~1/N fraction of keys —
//! never keys the change didn't touch. These are the properties that
//! make mid-corpus shard loss cheap for the router: only the dead
//! shard's jobs move.

use proptest::prelude::*;
use rteaal_serve::HashRing;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn removing_one_shard_remaps_only_its_keys(
        shards in 2usize..6,
        replicas in prop::sample::select(vec![16usize, 64, 128]),
        victim_seed in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 80..200),
    ) {
        let mut ring = HashRing::new(replicas);
        for s in 0..shards {
            ring.add(s);
        }
        // Single ownership: the mapping is a deterministic function of
        // the live set, and always lands on a live shard.
        let before: Vec<(u64, usize)> = keys
            .iter()
            .map(|&k| (k, ring.shard_for(k).expect("non-empty ring")))
            .collect();
        for &(k, owner) in &before {
            prop_assert_eq!(ring.shard_for(k), Some(owner), "mapping must be stable");
            prop_assert!(ring.live().contains(&owner), "owner must be live");
        }

        let victim = (victim_seed % shards as u64) as usize;
        ring.remove(victim);
        prop_assert_eq!(ring.len(), shards - 1);
        let mut moved = 0usize;
        for &(k, owner) in &before {
            let now = ring.shard_for(k).expect("survivors remain");
            prop_assert!(ring.live().contains(&now));
            if owner == victim {
                moved += 1;
            } else {
                // The stability property: keys the victim never owned
                // must not move.
                prop_assert_eq!(now, owner, "key {} moved without cause", k);
            }
        }
        // Only the victim's ~1/N share may move (loose upper bound to
        // allow hash variance at few replicas).
        prop_assert!(
            moved <= keys.len() * 3 / shards,
            "{moved}/{} keys moved on a {shards}-shard ring",
            keys.len()
        );

        // Re-adding the victim restores the original partition exactly
        // (ring points are a pure function of the shard slot).
        ring.add(victim);
        for &(k, owner) in &before {
            prop_assert_eq!(ring.shard_for(k), Some(owner));
        }
    }

    #[test]
    fn adding_a_shard_steals_keys_only_for_itself(
        shards in 1usize..5,
        replicas in prop::sample::select(vec![16usize, 64, 128]),
        keys in prop::collection::vec(any::<u64>(), 80..200),
    ) {
        let mut ring = HashRing::new(replicas);
        for s in 0..shards {
            ring.add(s);
        }
        let before: Vec<(u64, usize)> = keys
            .iter()
            .map(|&k| (k, ring.shard_for(k).expect("non-empty ring")))
            .collect();
        let newcomer = shards;
        ring.add(newcomer);
        let mut stolen = 0usize;
        for &(k, owner) in &before {
            let now = ring.shard_for(k).expect("non-empty ring");
            if now != owner {
                // A key may only move *to* the newcomer, never between
                // incumbents.
                prop_assert_eq!(now, newcomer, "key {} hopped between incumbents", k);
                stolen += 1;
            }
        }
        // The newcomer takes roughly its 1/(N+1) share, never wildly
        // more.
        prop_assert!(
            stolen <= keys.len() * 3 / (shards + 1),
            "newcomer stole {stolen}/{} keys from a {shards}-shard ring",
            keys.len()
        );
    }
}
