//! Property test of the elastic-fleet rejoin path: a 3-shard loopback
//! fleet where one shard is killed mid-run and later revived — behind
//! a *fresh, empty* server (the rebooted-host case). The properties:
//!
//! 1. **Ring-math-bounded movement.** While the shard is down, only
//!    the keys the ring assigned to it move, and they move exactly
//!    where a client-side ring without that shard says they should;
//!    every other key keeps its owner.
//! 2. **Restored partition.** After the rejoin, placements match the
//!    original 3-shard ring exactly — the deterministic ring points
//!    give the shard back its old keys and nothing else.
//! 3. **Registry replay.** A design registered through the router
//!    before the outage runs on the rejoined shard even though the
//!    revived host never saw the registration — the probe loop must
//!    have replayed it before routing jobs.
//! 4. **Exactly-once bit-exactness.** Every job in every wave
//!    completes exactly once, bit-identical to a scalar
//!    [`Simulation`] run, throughout the kill/revive cycle.

use proptest::prelude::*;
use rteaal_core::{Compiled, Compiler, DebugModule, Simulation};
use rteaal_designs::Workload;
use rteaal_kernels::{KernelConfig, KernelKind};
use rteaal_sched::Job;
use rteaal_serve::{
    ChaosPlan, ChaosShard, HashRing, Routed, ServeConfig, ServerPool, ShardConfig, ShardPhase,
    ShardRouter, SocketServer,
};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const PROBES: [&str; 2] = ["a0", "pc_out"];

fn compiled() -> &'static Compiled {
    static COMPILED: OnceLock<Compiled> = OnceLock::new();
    COMPILED.get_or_init(|| {
        Compiler::new(KernelConfig::new(KernelKind::Psu))
            .compile(&Workload::param_sum_circuit())
            .expect("rv32i compiles")
    })
}

fn spawn_server() -> SocketAddr {
    let mut cfg = ServeConfig::with_workers(2);
    cfg.lanes = 4;
    cfg.chunk_cycles = 16;
    let pool = ServerPool::new(compiled(), cfg, "halt").expect("halt resolves");
    SocketServer::bind(pool, "127.0.0.1:0")
        .expect("binds loopback")
        .spawn()
        .expect("accept loop spawns")
}

fn job_for(k: u64) -> Job {
    let mut job = Job::new(format!("sum-{k}"), Workload::param_sum_budget(k));
    job.state_pokes = vec![("x15".to_string(), k)];
    job.probes = PROBES.iter().map(|p| (*p).to_string()).collect();
    job
}

/// Per-`k` scalar reference: probed outputs + completion cycle.
type Reference = (Vec<(String, u64)>, u64);

fn scalar_reference(k: u64) -> Reference {
    let mut sim = Simulation::new(compiled().clone());
    DebugModule::new(&mut sim)
        .poke_reg("x15", k)
        .expect("x15 probed");
    while sim.peek("halt") != Some(1) {
        sim.step();
    }
    let outputs = PROBES
        .iter()
        .map(|p| ((*p).to_string(), sim.peek(p).expect("probed")))
        .collect();
    (outputs, sim.cycle())
}

/// Asserts one wave's results are exactly-once and bit-exact, caching
/// scalar references by `k`.
fn check_wave(
    results: &[Routed],
    id_to_k: &HashMap<u64, u64>,
    reference: &mut HashMap<u64, Reference>,
) {
    let mut seen = std::collections::HashSet::new();
    for routed in results {
        assert!(seen.insert(routed.id), "job {} delivered twice", routed.id);
        let k = id_to_k[&routed.id];
        let (outputs, cycles) = reference.entry(k).or_insert_with(|| scalar_reference(k));
        assert!(routed.result.completed(), "k={k} completed");
        for (name, value) in outputs.iter() {
            assert_eq!(routed.result.output(name), Some(*value), "k={k} {name}");
        }
        assert_eq!(routed.result.cycles, *cycles, "k={k} cycles");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    #[test]
    fn kill_revive_moves_only_ring_bounded_keys_and_replays_the_registry(
        wave in 6usize..10,
        corpus_seed in any::<u64>(),
    ) {
        // Shards 0 and 1 are plain servers; shard 2 sits behind a
        // chaos proxy so it can die and come back.
        let chaos = ChaosShard::spawn(spawn_server(), ChaosPlan::default())
            .expect("chaos proxy spawns");
        let addrs = vec![spawn_server(), spawn_server(), chaos.addr()];
        let config = ShardConfig {
            read_timeout: Duration::from_secs(20),
            // Hedging off: every `Routed.shard` is then exactly the
            // ring placement, which is what the movement property
            // inspects.
            hedge: false,
            // Probe fast so the rejoin happens within the test.
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(25),
            ..ShardConfig::default()
        };
        let mut router = ShardRouter::connect(&addrs, config).expect("fleet connects");

        // Client-side oracles: the same deterministic ring math the
        // router uses, with and without shard 2.
        let mut full_ring = HashRing::new(config.replicas);
        let mut degraded_ring = HashRing::new(config.replicas);
        for s in 0..3 {
            full_ring.add(s);
        }
        for s in 0..2 {
            degraded_ring.add(s);
        }

        // Register a second design through the router *before* the
        // outage; the revived host must receive it by replay.
        let twin_src = rteaal_firrtl::parser::emit(&Workload::param_sum_circuit());
        router
            .register("twin", &twin_src, "halt")
            .expect("fan-out registers");

        let ks = Workload::corpus_params(3 * wave, corpus_seed);
        let mut id_to_k: HashMap<u64, u64> = HashMap::new();
        let mut reference: HashMap<u64, Reference> = HashMap::new();

        // ---- Wave 1: healthy fleet. Placements follow the full ring.
        for &k in &ks[..wave] {
            let id = router.submit(job_for(k)).expect("fleet takes the job");
            id_to_k.insert(id, k);
        }
        let wave1 = router.drain().expect("healthy drain");
        check_wave(&wave1, &id_to_k, &mut reference);
        for routed in &wave1 {
            prop_assert_eq!(
                Some(routed.shard),
                full_ring.shard_for(routed.id),
                "healthy placement must follow the ring"
            );
        }

        // ---- Wave 2: shard 2 is down. Only its keys move, and they
        // move exactly where the degraded ring says.
        chaos.kill();
        for &k in &ks[wave..2 * wave] {
            let id = router.submit(job_for(k)).expect("degraded fleet takes the job");
            id_to_k.insert(id, k);
        }
        let wave2 = router.drain().expect("degraded drain");
        check_wave(&wave2, &id_to_k, &mut reference);
        for routed in &wave2 {
            prop_assert_eq!(
                Some(routed.shard),
                degraded_ring.shard_for(routed.id),
                "degraded placement must follow the 2-shard ring"
            );
            // Keys the dead shard never owned must not move at all.
            if full_ring.shard_for(routed.id) != Some(2) {
                prop_assert_eq!(
                    full_ring.shard_for(routed.id),
                    Some(routed.shard),
                    "key moved without cause"
                );
            } else {
                prop_assert_ne!(routed.shard, 2, "key routed to a dead shard");
            }
        }
        let mid = router.fleet_stats();
        prop_assert!(mid.shard_deaths >= 1, "the outage must register");
        prop_assert!(
            matches!(mid.per_shard[2].phase, ShardPhase::Open { .. } | ShardPhase::Dead { .. }),
            "shard 2 must be out of the ring: {:?}",
            mid.per_shard[2].phase
        );

        // ---- Revive behind a *fresh* pool: the host rebooted with an
        // empty registry. The probe loop must replay `twin` before the
        // ring takes the shard back.
        chaos.retarget(spawn_server());
        chaos.revive();
        let deadline = Instant::now() + Duration::from_secs(30);
        while router.fleet_stats().rejoins < 1 {
            prop_assert!(Instant::now() < deadline, "shard 2 never rejoined");
            router.poll_once().expect("idle pump");
            std::thread::sleep(Duration::from_millis(2));
        }

        // ---- Wave 3: full fleet again. The original partition is
        // restored exactly, and the replayed design runs on shard 2.
        for &k in &ks[2 * wave..] {
            let id = router
                .submit_on(Some("twin"), job_for(k))
                .expect("restored fleet takes the job");
            id_to_k.insert(id, k);
        }
        let wave3 = router.drain().expect("restored drain");
        check_wave(&wave3, &id_to_k, &mut reference);
        let mut on_rejoined = 0usize;
        for routed in &wave3 {
            prop_assert_eq!(
                Some(routed.shard),
                full_ring.shard_for(routed.id),
                "rejoin must restore the original partition"
            );
            if routed.shard == 2 {
                on_rejoined += 1;
            }
        }
        // The replay property needs at least one `twin` job to land on
        // the rejoined shard. Ids are sequential, so if the wave's keys
        // all hashed elsewhere, keep submitting until one is *ring-
        // guaranteed* to hit shard 2.
        let mut extra = 0usize;
        while on_rejoined == 0 {
            prop_assert!(extra < 64, "no key ever hashes to shard 2");
            let k = ks[extra % ks.len()];
            let id = router
                .submit_on(Some("twin"), job_for(k))
                .expect("restored fleet takes the job");
            id_to_k.insert(id, k);
            extra += 1;
            let tail = router.drain().expect("restored drain");
            check_wave(&tail, &id_to_k, &mut reference);
            for routed in &tail {
                prop_assert_eq!(Some(routed.shard), full_ring.shard_for(routed.id));
                if routed.shard == 2 {
                    on_rejoined += 1;
                }
            }
        }

        let end = router.fleet_stats();
        prop_assert_eq!(end.delivered, (3 * wave + extra) as u64);
        prop_assert!(end.rejoins >= 1);
        prop_assert_eq!(end.per_shard[2].phase, ShardPhase::Live);
        prop_assert!(end.per_shard.iter().all(|s| s.in_flight == 0));
        prop_assert_eq!(router.pending(), 0);
    }
}
