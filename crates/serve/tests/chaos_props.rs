//! Fault-injection property test of the shard router: a 3-shard
//! loopback fleet where one shard is flaky (randomized response delays
//! and connection drops behind a [`ChaosShard`] proxy) and one is
//! doomed (killed mid-corpus, by plan or by an explicit mid-drain
//! `kill()`, dying mid-line when it goes). The property: **every
//! submitted job completes exactly once and bit-identical to a scalar
//! [`Simulation`] run** despite the chaos, with no job stranded on a
//! dead shard — the router's reconnect/resubmission machinery must be
//! invisible in the merged result stream.

use proptest::prelude::*;
use rteaal_core::{Compiled, Compiler, DebugModule, Simulation};
use rteaal_designs::Workload;
use rteaal_kernels::{KernelConfig, KernelKind};
use rteaal_sched::Job;
use rteaal_serve::{
    ChaosPlan, ChaosShard, RouterError, ServeConfig, ServerPool, ShardConfig, ShardRouter,
    SocketServer,
};
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::OnceLock;
use std::time::Duration;

const PROBES: [&str; 2] = ["a0", "pc_out"];

/// The one corpus circuit, compiled once for the whole test binary.
fn compiled() -> &'static Compiled {
    static COMPILED: OnceLock<Compiled> = OnceLock::new();
    COMPILED.get_or_init(|| {
        Compiler::new(KernelConfig::new(KernelKind::Psu))
            .compile(&Workload::param_sum_circuit())
            .expect("rv32i compiles")
    })
}

/// Boots one real socket server over the corpus design and returns its
/// loopback address.
fn spawn_server() -> SocketAddr {
    let mut cfg = ServeConfig::with_workers(2);
    cfg.lanes = 4;
    cfg.chunk_cycles = 16;
    let pool = ServerPool::new(compiled(), cfg, "halt").expect("halt resolves");
    SocketServer::bind(pool, "127.0.0.1:0")
        .expect("binds loopback")
        .spawn()
        .expect("accept loop spawns")
}

/// A param-sum job for loop bound `k`.
fn job_for(k: u64) -> Job {
    let mut job = Job::new(format!("sum-{k}"), Workload::param_sum_budget(k));
    job.state_pokes = vec![("x15".to_string(), k)];
    job.probes = PROBES.iter().map(|p| (*p).to_string()).collect();
    job
}

/// Scalar reference for loop bound `k`: probe values at halt plus the
/// completion cycle.
fn scalar_reference(k: u64) -> (Vec<(String, u64)>, u64) {
    let mut sim = Simulation::new(compiled().clone());
    DebugModule::new(&mut sim)
        .poke_reg("x15", k)
        .expect("x15 probed");
    while sim.peek("halt") != Some(1) {
        sim.step();
    }
    let outputs = PROBES
        .iter()
        .map(|p| ((*p).to_string(), sim.peek(p).expect("probed")))
        .collect();
    (outputs, sim.cycle())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn every_job_completes_exactly_once_and_bit_exact_despite_chaos(
        jobs in 9usize..16,
        corpus_seed in any::<u64>(),
        delay_us in prop::sample::select(vec![0u64, 300, 1500]),
        drop_every in prop::sample::select(vec![2u64, 3, 5]),
        kill_margin in 1u64..8,
    ) {
        // Shard 0 is healthy and immortal; shard 1 is flaky; shard 2 is
        // doomed to die mid-corpus (and dies *mid-line*).
        let healthy = spawn_server();
        let flaky = ChaosShard::spawn(
            spawn_server(),
            ChaosPlan {
                response_delay: Duration::from_micros(delay_us),
                drop_every: Some(drop_every),
                ..ChaosPlan::default()
            },
        )
        .expect("flaky proxy spawns");
        let doomed = ChaosShard::spawn(
            spawn_server(),
            ChaosPlan {
                kill_after: Some(jobs as u64 / 2 + kill_margin),
                truncate_on_kill: true,
                ..ChaosPlan::default()
            },
        )
        .expect("doomed proxy spawns");

        let addrs = vec![healthy, flaky.addr(), doomed.addr()];
        let config = ShardConfig {
            read_timeout: Duration::from_secs(20),
            reconnects: 3,
            ..ShardConfig::default()
        };
        let mut router = ShardRouter::connect(&addrs, config).expect("fleet connects");

        let ks = Workload::corpus_params(jobs, corpus_seed);
        let mut id_to_k: HashMap<u64, u64> = HashMap::new();
        for &k in &ks {
            let id = router.submit(job_for(k)).expect("fleet takes the job");
            id_to_k.insert(id, k);
        }

        // Drain a third of the corpus, then force the doomed shard down
        // if its plan hasn't already tripped — the kill must land *mid*
        // corpus either way.
        let mut results = Vec::new();
        for _ in 0..jobs / 3 {
            results.push(router.next_result().expect("stream survives chaos"));
            // The accounting identity must close at *every* snapshot,
            // not just at shutdown — mid-chaos included.
            prop_assert!(
                router.accounting_balanced(),
                "router accounting leaked mid-drain"
            );
        }
        doomed.kill();
        results.extend(router.drain().expect("drain survives chaos"));
        prop_assert!(router.accounting_balanced());

        // Exactly once: every submitted id appears exactly one time.
        prop_assert_eq!(results.len(), jobs);
        let mut seen: HashSet<u64> = HashSet::new();
        for routed in &results {
            prop_assert!(seen.insert(routed.id), "job {} delivered twice", routed.id);
            prop_assert!(id_to_k.contains_key(&routed.id), "unknown id {}", routed.id);
        }

        // Bit-exact: outputs and completion cycle match a dedicated
        // scalar run of the same testbench.
        let mut reference: HashMap<u64, (Vec<(String, u64)>, u64)> = HashMap::new();
        for routed in &results {
            let k = id_to_k[&routed.id];
            let (outputs, cycles) =
                reference.entry(k).or_insert_with(|| scalar_reference(k));
            prop_assert!(routed.result.completed(), "k={k} completed");
            for (name, value) in outputs.iter() {
                prop_assert_eq!(
                    routed.result.output(name),
                    Some(*value),
                    "k={} signal {}", k, name
                );
            }
            prop_assert_eq!(routed.result.cycles, *cycles, "k={} cycles", k);
        }

        // Accounting closes: nothing in flight, nothing stranded, and
        // the doomed shard's loss shows up as death + resubmission.
        let stats = router.stats();
        prop_assert_eq!(stats.delivered, jobs as u64);
        prop_assert_eq!(router.pending(), 0);
        prop_assert!(
            stats.per_shard.iter().all(|s| s.in_flight == 0),
            "{:?}", stats.per_shard
        );
        prop_assert!(doomed.is_killed());
        prop_assert!(stats.shard_deaths >= 1, "the doomed shard must register as dead");
        prop_assert!(
            stats.per_shard.iter().any(|s| !s.alive),
            "{:?}", stats.per_shard
        );

        // The stats structs are views over the metrics registry: the
        // registry snapshot must agree counter for counter.
        let snap = router.metrics().snapshot();
        let fleet = router.fleet_stats();
        prop_assert_eq!(snap.counter("router.submitted"), fleet.submitted);
        prop_assert_eq!(snap.counter("router.delivered"), fleet.delivered);
        prop_assert_eq!(snap.counter("router.resubmitted"), fleet.resubmitted);
        prop_assert_eq!(snap.counter("router.shard_deaths"), fleet.shard_deaths);
        prop_assert_eq!(snap.counter("router.rejoins"), fleet.rejoins);
        prop_assert_eq!(snap.counter("router.hedges"), fleet.hedges);
        prop_assert_eq!(
            snap.histogram("router.delivery_latency_us")
                .map_or(0, |h| h.hist.count),
            fleet.delivered,
            "every delivery was timed"
        );
        // Router-side timelines: each delivered job has a Submitted and
        // a Delivered breadcrumb (the ring retains this corpus whole).
        for routed in &results {
            let timeline = router.metrics().timeline(routed.id);
            let stages: Vec<_> = timeline.iter().map(|e| e.stage).collect();
            prop_assert_eq!(
                stages,
                vec![
                    rteaal_telemetry::JobStage::Submitted,
                    rteaal_telemetry::JobStage::Delivered
                ],
                "job {}", routed.id
            );
            prop_assert_eq!(
                timeline[1].shard,
                Some(routed.shard as u64),
                "delivery attributes its shard"
            );
        }
    }
}

#[test]
fn exhausted_fleet_reports_no_live_shards_instead_of_hanging() {
    // Regression: with jobs pending and every shard dead, next_result
    // used to sleep-spin forever (the empty ring made each sweep a
    // no-op). It must report NoLiveShards — on the call that kills the
    // last shard *and* on every call after it.
    let chaos =
        ChaosShard::spawn(spawn_server(), ChaosPlan::default()).expect("chaos proxy spawns");
    let config = ShardConfig {
        reconnects: 0,
        read_timeout: Duration::from_secs(2),
        ..ShardConfig::default()
    };
    let mut router = ShardRouter::connect(&[chaos.addr()], config).expect("fleet connects");
    router.submit(job_for(30)).expect("fleet takes the job");
    chaos.kill();
    match router.next_result() {
        Err(RouterError::NoLiveShards { stranded }) => assert_eq!(stranded, 1),
        other => panic!("expected NoLiveShards, got {other:?}"),
    }
    // The stranded job stays on the books and the condition keeps being
    // reported immediately.
    assert_eq!(router.pending(), 1);
    assert_eq!(router.live_shards(), 0);
    match router.next_result() {
        Err(RouterError::NoLiveShards { stranded }) => assert_eq!(stranded, 1),
        other => panic!("expected NoLiveShards again, got {other:?}"),
    }
}

#[test]
fn a_job_that_exhausts_its_placements_is_abandoned_not_stranded() {
    // Regression: a job hitting max_attempts used to stay in `pending`
    // while belonging to no shard's in-flight list, so drain() (and
    // every next_result) waited on a ghost forever. It must be removed
    // from the books when JobLost is reported.
    let chaos =
        ChaosShard::spawn(spawn_server(), ChaosPlan::default()).expect("chaos proxy spawns");
    let config = ShardConfig {
        // Reconnects always "succeed" (the killed proxy still accepts,
        // then slams the connection), so the shard never leaves the
        // ring — every placement burns an attempt instead.
        reconnects: 16,
        max_attempts: 3,
        read_timeout: Duration::from_secs(2),
        ..ShardConfig::default()
    };
    let mut router = ShardRouter::connect(&[chaos.addr()], config).expect("fleet connects");
    chaos.kill();
    match router.submit(job_for(5)) {
        Err(RouterError::JobLost { attempts, .. }) => assert_eq!(attempts, 4),
        other => panic!("expected JobLost, got {other:?}"),
    }
    assert_eq!(router.pending(), 0, "the abandoned job left the books");
    match router.next_result() {
        Err(RouterError::Idle) => {}
        other => panic!("expected Idle, got {other:?}"),
    }
}
