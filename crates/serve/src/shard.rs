//! Cross-host shard routing over the serve protocol.
//!
//! [`ShardRouter`] is the client-side supervisor of a fleet of server
//! processes: it holds one [`ServeClient`] connection per shard,
//! partitions submitted jobs with **consistent hashing** keyed by the
//! router-global job id ([`HashRing`], stable under shard add/remove),
//! dispatches with per-shard in-flight accounting, merges every shard's
//! results into a single completion-ordered stream, and tracks
//! per-host health — a connection that errors, times out, or dies
//! mid-line gets a bounded reconnect budget, after which the shard is
//! declared dead, removed from the ring, and its lost jobs are
//! automatically resubmitted to the survivors.
//!
//! Delivery is **exactly once** even under at-least-once execution: a
//! result can only be claimed over the connection that submitted its
//! job (the serve protocol's per-connection handle scope), so a job
//! rerun after a shard death can never surface twice — the dead
//! connection's copy is unreachable by construction, and the server
//! discards it.
//!
//! The router is deliberately synchronous and single-threaded: one
//! poll sweep across the fleet per [`next_result`](ShardRouter::next_result)
//! iteration. The concurrency that matters lives server-side (worker
//! pools and lanes); the router only moves envelopes, which keeps its
//! failure handling — the hard part — sequentially testable under the
//! [`chaos`](crate::chaos) harness.

use crate::net::ServeClient;
use crate::protocol::{ProtocolError, WireResult, WireStats};
use rteaal_sched::Job;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;

/// Finalizes `splitmix64`: a deterministic, well-mixed 64-bit hash.
/// Used for both ring points and key placement so the partition is
/// reproducible across processes and runs (no `RandomState`).
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A consistent-hash ring over shard slots, with virtual nodes.
///
/// Each shard contributes `replicas` points (hashes of `(shard,
/// replica)`); a key maps to the shard owning the first point at or
/// after the key's hash, wrapping. Removing a shard removes only its
/// points, so every key it did *not* own keeps its owner — the
/// stability property that makes mid-corpus shard loss cheap: only the
/// dead shard's jobs move.
#[derive(Debug, Clone)]
pub struct HashRing {
    replicas: usize,
    /// `(point hash, shard)`, sorted; ties broken by shard index so the
    /// mapping is deterministic.
    points: Vec<(u64, usize)>,
    /// Sorted live shard slots.
    live: Vec<usize>,
}

impl HashRing {
    /// An empty ring with `replicas` virtual nodes per shard.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(replicas: usize) -> Self {
        assert!(replicas > 0, "a shard needs at least one ring point");
        HashRing {
            replicas,
            points: Vec::new(),
            live: Vec::new(),
        }
    }

    /// Adds a shard slot (no-op if already present).
    pub fn add(&mut self, shard: usize) {
        if self.live.contains(&shard) {
            return;
        }
        for replica in 0..self.replicas {
            let point = mix64(mix64(shard as u64 + 1) ^ replica as u64);
            self.points.push((point, shard));
        }
        self.points.sort_unstable();
        self.live.push(shard);
        self.live.sort_unstable();
    }

    /// Removes a shard slot and every point it owns.
    pub fn remove(&mut self, shard: usize) {
        self.points.retain(|&(_, s)| s != shard);
        self.live.retain(|&s| s != shard);
    }

    /// The shard owning `key`, or `None` on an empty ring.
    pub fn shard_for(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hash = mix64(key);
        let idx = self.points.partition_point(|&(p, _)| p < hash);
        Some(self.points[idx % self.points.len()].1)
    }

    /// The live shard slots, sorted.
    pub fn live(&self) -> &[usize] {
        &self.live
    }

    /// Live shard count.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no shard is live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

/// Router sizing, pacing, and failure-tolerance knobs.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Virtual ring points per shard (more points = smoother balance).
    pub replicas: usize,
    /// How long any single exchange may wait for a shard's response
    /// before the host counts as hung (a fatal fault).
    pub read_timeout: Duration,
    /// Fresh connections a shard is granted after transport faults
    /// before it is declared dead. A reconnect orphans the old
    /// connection's in-flight jobs (handles are per-connection), so
    /// each one resubmits them — on the same shard if it recovers.
    pub reconnects: usize,
    /// Sleep between poll sweeps that found nothing finished.
    pub poll_interval: Duration,
    /// Times one job may be (re)placed before the router gives up on
    /// it — a backstop against a corpus whose every host rejects the
    /// connection.
    pub max_attempts: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            replicas: 64,
            read_timeout: Duration::from_secs(5),
            reconnects: 2,
            poll_interval: Duration::from_micros(200),
            max_attempts: 16,
        }
    }
}

/// One shard's connection and accounting.
#[derive(Debug)]
struct ShardState {
    addr: SocketAddr,
    /// `None` once the shard is declared dead.
    client: Option<ServeClient>,
    /// Remaining reconnect budget.
    reconnects_left: usize,
    /// Router ids currently awaiting results on this shard.
    inflight: Vec<u64>,
    /// Jobs ever dispatched here (including resubmissions).
    dispatched: u64,
    /// Results this shard delivered.
    delivered: u64,
}

/// One job awaiting its result.
#[derive(Debug)]
struct PendingJob {
    /// Kept for resubmission after a shard death.
    job: Job,
    /// The id the owning shard's pool assigned.
    remote_id: u64,
    /// The shard currently running it.
    shard: usize,
    /// Placements so far.
    attempts: usize,
}

/// A result delivered by the router's merged stream.
#[derive(Debug, Clone)]
pub struct Routed {
    /// Router-global job id (what [`ShardRouter::submit`] returned).
    pub id: u64,
    /// The shard that produced the result.
    pub shard: usize,
    /// The wire result (its `id` field is the *shard-local* pool id).
    pub result: WireResult,
}

/// Why the router could not make progress.
#[derive(Debug)]
pub enum RouterError {
    /// Every shard is dead; `stranded` jobs can no longer be placed.
    /// The jobs stay pending, and every later router call reports this
    /// error again for them.
    NoLiveShards {
        /// Jobs that were pending when the last shard died.
        stranded: usize,
    },
    /// One job exhausted [`ShardConfig::max_attempts`] placements and
    /// was removed from the router's books — the rest of the corpus
    /// keeps flowing.
    JobLost {
        /// The router-global id of the abandoned job.
        id: u64,
        /// How many placements it burned.
        attempts: usize,
    },
    /// [`next_result`](ShardRouter::next_result) with nothing pending.
    Idle,
    /// A shard answered a request about this router's own job with a
    /// server-side refusal — a protocol violation, not a transport
    /// fault (those are handled by resubmission).
    Shard {
        /// The offending shard slot.
        shard: usize,
        /// What it said.
        error: ProtocolError,
    },
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::NoLiveShards { stranded } => {
                write!(f, "every shard is dead ({stranded} jobs stranded)")
            }
            RouterError::JobLost { id, attempts } => {
                write!(f, "job {id} abandoned after {attempts} placements")
            }
            RouterError::Idle => write!(f, "no jobs outstanding"),
            RouterError::Shard { shard, error } => {
                write!(f, "shard {shard} protocol violation: {error}")
            }
        }
    }
}

impl std::error::Error for RouterError {}

/// Aggregate router counters.
#[derive(Debug, Clone)]
pub struct RouterStats {
    /// Jobs accepted by [`ShardRouter::submit`].
    pub submitted: u64,
    /// Results delivered through the merged stream.
    pub delivered: u64,
    /// Job placements repeated because their shard's connection was
    /// lost (each orphaned job counts once per loss).
    pub resubmitted: u64,
    /// Shards declared dead.
    pub shard_deaths: u64,
    /// Per-shard accounting, by slot.
    pub per_shard: Vec<ShardLoad>,
}

/// One shard's routing accounting.
#[derive(Debug, Clone)]
pub struct ShardLoad {
    /// The shard's address.
    pub addr: SocketAddr,
    /// Whether the shard is still in the ring.
    pub alive: bool,
    /// Jobs ever dispatched to it (including resubmissions).
    pub dispatched: u64,
    /// Results it delivered.
    pub delivered: u64,
    /// Jobs currently awaiting results on it.
    pub in_flight: usize,
}

/// The cross-host supervisor: consistent-hash job placement over a
/// fleet of serve processes, with health tracking and automatic
/// resubmission. See the [module docs](self) for the design.
///
/// ```no_run
/// use rteaal_sched::Job;
/// use rteaal_serve::{ShardConfig, ShardRouter};
///
/// let addrs: Vec<std::net::SocketAddr> =
///     vec!["10.0.0.1:7700".parse()?, "10.0.0.2:7700".parse()?];
/// let mut router = ShardRouter::connect(&addrs, ShardConfig::default())?;
/// for k in 1u64..=24 {
///     router.submit(Job::new(format!("sum-{k}"), 3 * k + 12).with_probe("a0"))?;
/// }
/// for routed in router.drain()? {
///     println!("job {} on shard {}: {:?}", routed.id, routed.shard, routed.result.outputs);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ShardRouter {
    config: ShardConfig,
    shards: Vec<ShardState>,
    ring: HashRing,
    /// Router id -> its pending job, across all shards.
    pending: HashMap<u64, PendingJob>,
    next_id: u64,
    delivered: u64,
    resubmitted: u64,
    shard_deaths: u64,
}

impl ShardRouter {
    /// Connects one client per shard address. All shards must accept
    /// the initial connection — a fleet that starts degraded is a
    /// deployment error, not a runtime fault.
    ///
    /// # Errors
    ///
    /// [`RouterError::Shard`] naming the first address that refused.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    pub fn connect(addrs: &[SocketAddr], config: ShardConfig) -> Result<Self, RouterError> {
        assert!(!addrs.is_empty(), "a fleet needs at least one shard");
        let mut shards = Vec::with_capacity(addrs.len());
        let mut ring = HashRing::new(config.replicas);
        for (slot, &addr) in addrs.iter().enumerate() {
            let client = Self::open(addr, config.read_timeout)
                .map_err(|error| RouterError::Shard { shard: slot, error })?;
            ring.add(slot);
            shards.push(ShardState {
                addr,
                client: Some(client),
                reconnects_left: config.reconnects,
                inflight: Vec::new(),
                dispatched: 0,
                delivered: 0,
            });
        }
        Ok(ShardRouter {
            config,
            shards,
            ring,
            pending: HashMap::new(),
            next_id: 0,
            delivered: 0,
            resubmitted: 0,
            shard_deaths: 0,
        })
    }

    /// Connects to one shard with the router's read deadline applied.
    fn open(addr: SocketAddr, timeout: Duration) -> Result<ServeClient, ProtocolError> {
        let client = ServeClient::connect(addr)?;
        client.set_read_timeout(Some(timeout))?;
        Ok(client)
    }

    /// Submits a job: assigns a router-global id, places it on the
    /// shard the ring maps that id to, and returns the id. Placement
    /// failures cascade through the failure path (reconnect, then
    /// rehash to survivors) before this returns.
    ///
    /// # Errors
    ///
    /// [`RouterError::NoLiveShards`] / [`RouterError::JobLost`] when
    /// the fleet cannot take the job at all.
    pub fn submit(&mut self, job: Job) -> Result<u64, RouterError> {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.insert(
            id,
            PendingJob {
                job,
                remote_id: 0,
                shard: usize::MAX,
                attempts: 0,
            },
        );
        self.dispatch(vec![id])?;
        Ok(id)
    }

    /// Places every job in `work` on the shard its id hashes to,
    /// walking the failure path (reconnect, rehash) as shards fall
    /// over.
    ///
    /// A job that fails *individually* — placement budget exhausted, or
    /// a protocol violation on submit — is removed from the router's
    /// books entirely, and the rest of the worklist is still placed
    /// before its error is returned: one abandoned job must never
    /// strand the others in a pending-but-nowhere limbo that
    /// [`drain`](Self::drain) would wait on forever. Only a fleet-wide
    /// failure (empty ring) aborts immediately; the jobs it leaves
    /// pending are the `stranded` count, and every later call keeps
    /// reporting [`RouterError::NoLiveShards`] for them.
    fn dispatch(&mut self, mut work: Vec<u64>) -> Result<(), RouterError> {
        let mut first_failure: Option<RouterError> = None;
        while let Some(id) = work.pop() {
            loop {
                if self.ring.is_empty() {
                    return Err(RouterError::NoLiveShards {
                        stranded: self.pending.len(),
                    });
                }
                let shard = self.ring.shard_for(id).expect("ring is non-empty");
                let attempts = {
                    let p = self.pending.get_mut(&id).expect("dispatching a known job");
                    p.attempts += 1;
                    p.attempts
                };
                if attempts > self.config.max_attempts {
                    self.pending.remove(&id);
                    first_failure.get_or_insert(RouterError::JobLost { id, attempts });
                    break;
                }
                let outcome = {
                    let job = &self.pending[&id].job;
                    self.shards[shard]
                        .client
                        .as_mut()
                        .expect("ring only maps live shards")
                        .submit(job)
                };
                match outcome {
                    Ok(remote_id) => {
                        let p = self.pending.get_mut(&id).expect("dispatching a known job");
                        p.remote_id = remote_id;
                        p.shard = shard;
                        let st = &mut self.shards[shard];
                        st.dispatched += 1;
                        st.inflight.push(id);
                        break;
                    }
                    Err(error) if error.is_fatal() => {
                        // The shard's orphans (and this job) go back on
                        // the worklist; the ring may or may not still
                        // contain the shard depending on its reconnect
                        // budget.
                        work.extend(self.shard_failed(shard));
                        continue;
                    }
                    Err(error) => {
                        self.pending.remove(&id);
                        first_failure.get_or_insert(RouterError::Shard { shard, error });
                        break;
                    }
                }
            }
        }
        match first_failure {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }

    /// Handles a fatal transport fault on one shard: burn a reconnect
    /// if any remain (the shard stays in the ring with a fresh
    /// connection), otherwise declare it dead and remove it. Either
    /// way the shard's in-flight jobs are orphaned — their handles
    /// lived on the broken connection — and are returned for
    /// redispatch.
    fn shard_failed(&mut self, shard: usize) -> Vec<u64> {
        let st = &mut self.shards[shard];
        st.client = None;
        while st.reconnects_left > 0 {
            st.reconnects_left -= 1;
            if let Ok(client) = Self::open(st.addr, self.config.read_timeout) {
                st.client = Some(client);
                break;
            }
        }
        if st.client.is_none() {
            self.ring.remove(shard);
            self.shard_deaths += 1;
        }
        let orphans = std::mem::take(&mut self.shards[shard].inflight);
        self.resubmitted += orphans.len() as u64;
        for &id in &orphans {
            let p = self.pending.get_mut(&id).expect("orphans are pending");
            p.shard = usize::MAX;
            p.remote_id = 0;
        }
        orphans
    }

    /// Blocks until the next job — from any shard — finishes, and
    /// returns it: the fleet's single completion-ordered stream.
    /// Shards that fail mid-wait are handled inline (their jobs
    /// resubmitted) without disturbing the stream.
    ///
    /// # Errors
    ///
    /// [`RouterError::Idle`] with nothing pending;
    /// [`RouterError::NoLiveShards`] / [`RouterError::JobLost`] when a
    /// failure cascade exhausts the fleet.
    pub fn next_result(&mut self) -> Result<Routed, RouterError> {
        loop {
            if self.pending.is_empty() {
                return Err(RouterError::Idle);
            }
            // Pending jobs with no fleet left can never complete: report
            // that instead of sleeping on a ring nobody will rejoin.
            if self.ring.is_empty() {
                return Err(RouterError::NoLiveShards {
                    stranded: self.pending.len(),
                });
            }
            for shard in self.ring.live().to_vec() {
                // Re-check against the *current* ring: an earlier
                // failure in this sweep can cascade (via resubmission)
                // into the death of a shard later in the snapshot.
                if !self.ring.live().contains(&shard) {
                    continue;
                }
                // Snapshot: the sweep mutates inflight on delivery.
                let ids = self.shards[shard].inflight.clone();
                for id in ids {
                    let remote_id = self.pending[&id].remote_id;
                    let polled = self.shards[shard]
                        .client
                        .as_mut()
                        .expect("ring only maps live shards")
                        .poll(remote_id);
                    match polled {
                        Ok(Some(result)) => {
                            self.pending.remove(&id);
                            let st = &mut self.shards[shard];
                            st.inflight.retain(|&i| i != id);
                            st.delivered += 1;
                            self.delivered += 1;
                            return Ok(Routed { id, shard, result });
                        }
                        Ok(None) => {}
                        Err(error) if error.is_fatal() => {
                            let orphans = self.shard_failed(shard);
                            self.dispatch(orphans)?;
                            break; // this shard's snapshot is stale
                        }
                        Err(error) => return Err(RouterError::Shard { shard, error }),
                    }
                }
            }
            std::thread::sleep(self.config.poll_interval);
        }
    }

    /// Drains every outstanding job, in completion order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`next_result`](Self::next_result) failure.
    pub fn drain(&mut self) -> Result<Vec<Routed>, RouterError> {
        let mut out = Vec::new();
        while !self.pending.is_empty() {
            out.push(self.next_result()?);
        }
        Ok(out)
    }

    /// Jobs awaiting results, fleet-wide.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Live shard count.
    pub fn live_shards(&self) -> usize {
        self.ring.len()
    }

    /// A snapshot of the router's counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            submitted: self.next_id,
            delivered: self.delivered,
            resubmitted: self.resubmitted,
            shard_deaths: self.shard_deaths,
            per_shard: self
                .shards
                .iter()
                .enumerate()
                .map(|(slot, st)| ShardLoad {
                    addr: st.addr,
                    alive: self.ring.live().contains(&slot),
                    dispatched: st.dispatched,
                    delivered: st.delivered,
                    in_flight: st.inflight.len(),
                })
                .collect(),
        }
    }

    /// Polls every live shard's `stats` verb: the health probe. A
    /// shard that fails the probe takes the usual failure path
    /// (reconnect, then death + resubmission) and reports `None`, as
    /// do shards already dead.
    ///
    /// # Errors
    ///
    /// [`RouterError::NoLiveShards`] / [`RouterError::JobLost`] if a
    /// probe-triggered failure cascade exhausts the fleet.
    pub fn poll_health(&mut self) -> Result<Vec<Option<WireStats>>, RouterError> {
        let mut out = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            if !self.ring.live().contains(&shard) {
                out.push(None);
                continue;
            }
            let polled = self.shards[shard]
                .client
                .as_mut()
                .expect("ring only maps live shards")
                .stats();
            match polled {
                Ok(stats) => out.push(Some(stats)),
                Err(error) if error.is_fatal() => {
                    let orphans = self.shard_failed(shard);
                    self.dispatch(orphans)?;
                    out.push(None);
                }
                Err(error) => return Err(RouterError::Shard { shard, error }),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_all_live_shards() {
        let mut ring = HashRing::new(64);
        for s in 0..4 {
            ring.add(s);
        }
        let owners: Vec<usize> = (0..256)
            .map(|k| ring.shard_for(k).expect("non-empty ring"))
            .collect();
        // Deterministic: a second pass agrees.
        for (k, &owner) in owners.iter().enumerate() {
            assert_eq!(ring.shard_for(k as u64), Some(owner));
            assert!(ring.live().contains(&owner));
        }
        // Every shard owns a reasonable share of 256 keys.
        for s in 0..4 {
            let share = owners.iter().filter(|&&o| o == s).count();
            assert!(share > 16, "shard {s} owns only {share}/256 keys");
        }
    }

    #[test]
    fn removing_a_shard_moves_only_its_keys() {
        let mut ring = HashRing::new(64);
        for s in 0..3 {
            ring.add(s);
        }
        let before: Vec<usize> = (0..200).map(|k| ring.shard_for(k).unwrap()).collect();
        ring.remove(1);
        for (k, &owner) in before.iter().enumerate() {
            let now = ring.shard_for(k as u64).unwrap();
            if owner == 1 {
                assert_ne!(now, 1, "key {k} still maps to the removed shard");
            } else {
                assert_eq!(now, owner, "key {k} moved without cause");
            }
        }
        // Adding it back restores the original partition exactly.
        ring.add(1);
        for (k, &owner) in before.iter().enumerate() {
            assert_eq!(ring.shard_for(k as u64), Some(owner));
        }
    }

    #[test]
    fn empty_and_single_shard_rings() {
        let mut ring = HashRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.shard_for(7), None);
        ring.add(5);
        assert_eq!(ring.len(), 1);
        for k in 0..32 {
            assert_eq!(ring.shard_for(k), Some(5));
        }
        ring.remove(5);
        assert_eq!(ring.shard_for(7), None);
    }
}
