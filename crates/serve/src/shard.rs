//! Cross-host shard routing over the serve protocol.
//!
//! [`ShardRouter`] is the client-side supervisor of a fleet of server
//! processes: it holds one [`ServeClient`] connection per shard,
//! partitions submitted jobs with **consistent hashing** keyed by the
//! router-global job id ([`HashRing`], stable under shard add/remove),
//! dispatches with per-shard in-flight accounting, merges every shard's
//! results into a single completion-ordered stream, and runs the
//! elastic-fleet loop:
//!
//! - **Circuit breaker per shard.** A connection that errors, times
//!   out, or dies mid-line gets one immediate reconnect (the cheap
//!   retry for a transient blip); if that fails, the breaker *opens*:
//!   the shard leaves the ring and is probed on a capped exponential
//!   backoff with deterministic jitter instead of being hammered. A
//!   shard whose consecutive failures exceed
//!   [`ShardConfig::reconnects`] is reported dead — but probing never
//!   stops, because hosts come back.
//! - **Rejoin.** The half-open probe is the `ping` verb; when it
//!   answers, the router replays its design registry to the host
//!   (registration fan-out — see [`register`](ShardRouter::register))
//!   and only then re-adds the shard to the ring. The ring's points
//!   are deterministic, so a rejoiner gets back *exactly* its old
//!   partition: only the keys the ring math assigns it move, and only
//!   for placements made after the rejoin — jobs in flight elsewhere
//!   stay put.
//! - **Replica hedging.** A pending job whose age passes a latency
//!   quantile of recent deliveries (times a multiplier, floored) is
//!   resubmitted to the next distinct shard on the ring. First result
//!   wins; the loser's copy is drained and discarded through the
//!   protocol's exactly-once delivery path, which makes the duplicate
//!   unobservable by construction.
//!
//! Delivery is **exactly once** even under at-least-once execution: a
//! result can only be claimed over the connection that submitted its
//! job (the serve protocol's per-connection handle scope), so a job
//! rerun after a shard death — or raced by a hedge — can never surface
//! twice: the losing copy is either unreachable (its connection died)
//! or explicitly claimed-and-dropped by the router.
//!
//! The router is deliberately synchronous and single-threaded: one
//! poll sweep across the fleet per [`poll_once`](ShardRouter::poll_once)
//! call. The concurrency that matters lives server-side (worker pools
//! and lanes); the router only moves envelopes, which keeps its
//! failure handling — the hard part — sequentially testable under the
//! [`chaos`](crate::chaos) harness.

use crate::net::ServeClient;
use crate::protocol::{ProtocolError, WireResult, WireStats};
use rteaal_sched::Job;
use rteaal_telemetry::{Counter, JobStage, MetricsRegistry};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Finalizes `splitmix64`: a deterministic, well-mixed 64-bit hash.
/// Used for ring points, key placement, and backoff jitter so the
/// partition is reproducible across processes and runs (no
/// `RandomState`).
pub(crate) fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A consistent-hash ring over shard slots, with virtual nodes.
///
/// Each shard contributes `replicas` points (hashes of `(shard,
/// replica)`); a key maps to the shard owning the first point at or
/// after the key's hash, wrapping. Removing a shard removes only its
/// points, so every key it did *not* own keeps its owner — the
/// stability property that makes mid-corpus shard loss cheap: only the
/// dead shard's jobs move. Because the points are pure hashes of the
/// slot, re-adding a shard restores its old partition *exactly* — the
/// rejoin path's bounded-movement guarantee.
#[derive(Debug, Clone)]
pub struct HashRing {
    replicas: usize,
    /// `(point hash, shard)`, sorted; ties broken by shard index so the
    /// mapping is deterministic.
    points: Vec<(u64, usize)>,
    /// Sorted live shard slots.
    live: Vec<usize>,
}

impl HashRing {
    /// An empty ring with `replicas` virtual nodes per shard.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(replicas: usize) -> Self {
        assert!(replicas > 0, "a shard needs at least one ring point");
        HashRing {
            replicas,
            points: Vec::new(),
            live: Vec::new(),
        }
    }

    /// Adds a shard slot (no-op if already present).
    pub fn add(&mut self, shard: usize) {
        if self.live.contains(&shard) {
            return;
        }
        for replica in 0..self.replicas {
            let point = mix64(mix64(shard as u64 + 1) ^ replica as u64);
            self.points.push((point, shard));
        }
        self.points.sort_unstable();
        self.live.push(shard);
        self.live.sort_unstable();
    }

    /// Removes a shard slot and every point it owns.
    pub fn remove(&mut self, shard: usize) {
        self.points.retain(|&(_, s)| s != shard);
        self.live.retain(|&s| s != shard);
    }

    /// The shard owning `key`, or `None` on an empty ring.
    pub fn shard_for(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hash = mix64(key);
        let idx = self.points.partition_point(|&(p, _)| p < hash);
        Some(self.points[idx % self.points.len()].1)
    }

    /// The first shard at or after `key`'s hash that is *not*
    /// `exclude`: where the key would live if `exclude` were removed.
    /// This is the hedge target — the replica the consistent-hash
    /// topology itself nominates — and `None` when `exclude` is the
    /// only live shard.
    pub fn shard_for_excluding(&self, key: u64, exclude: usize) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hash = mix64(key);
        let start = self.points.partition_point(|&(p, _)| p < hash);
        let n = self.points.len();
        (0..n)
            .map(|i| self.points[(start + i) % n].1)
            .find(|&s| s != exclude)
    }

    /// The live shard slots, sorted.
    pub fn live(&self) -> &[usize] {
        &self.live
    }

    /// Live shard count.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no shard is live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

/// Router sizing, pacing, and failure-tolerance knobs.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Virtual ring points per shard (more points = smoother balance).
    pub replicas: usize,
    /// How long any single exchange may wait for a shard's response
    /// before the host counts as hung (a fatal fault).
    pub read_timeout: Duration,
    /// Consecutive failures (transport faults and failed probes) a
    /// shard is allowed before it is *reported* dead. Delivering a
    /// result resets the count — a host must prove it can finish work,
    /// not merely accept connections — and probing continues past
    /// death: a dead shard that answers a probe rejoins.
    pub reconnects: usize,
    /// Sleep between poll sweeps that found nothing finished.
    pub poll_interval: Duration,
    /// *Consecutive failed* placements one job may burn before the
    /// router gives up on it — a backstop against a job no host will
    /// take. A successful placement resets the count, so honest
    /// resubmission churn under flapping shards never exhausts a job.
    pub max_attempts: usize,
    /// First open-breaker probe delay; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Ceiling on the probe delay, whatever the failure count.
    pub backoff_cap: Duration,
    /// Master switch for replica hedging.
    pub hedge: bool,
    /// The delivery-latency quantile (0..=1) that defines a straggler.
    pub hedge_quantile: f64,
    /// Straggler threshold = quantile latency × this multiplier.
    pub hedge_multiplier: f64,
    /// Deliveries observed before hedging activates (the quantile
    /// needs a sample).
    pub hedge_min_samples: usize,
    /// Minimum straggler threshold — keeps a fast fleet from hedging
    /// its entire corpus on microsecond noise.
    pub hedge_floor: Duration,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            replicas: 64,
            read_timeout: Duration::from_secs(5),
            reconnects: 2,
            poll_interval: Duration::from_micros(200),
            max_attempts: 16,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            hedge: true,
            hedge_quantile: 0.9,
            hedge_multiplier: 2.0,
            hedge_min_samples: 16,
            hedge_floor: Duration::from_millis(10),
        }
    }
}

/// The longest latency history the hedging quantile is computed over.
const LATENCY_WINDOW: usize = 4096;

/// One shard's connection, breaker, and accounting.
#[derive(Debug)]
struct ShardState {
    addr: SocketAddr,
    /// `Some` iff the shard is in the ring (breaker closed).
    client: Option<ServeClient>,
    /// Consecutive failures since the last successful exchange.
    failures: u32,
    /// Whether `failures` has crossed the death threshold (reported in
    /// stats; probing continues regardless).
    dead: bool,
    /// When the breaker next half-opens for a probe (down shards only).
    retry_at: Option<Instant>,
    /// Router ids currently awaiting results on this shard (as primary
    /// or as hedge).
    inflight: Vec<u64>,
    /// Remote ids of hedge losers still to be claimed-and-discarded on
    /// this connection — the exactly-once cleanup of the duplicate.
    zombies: Vec<u64>,
    /// Jobs ever dispatched here (including resubmissions and hedges).
    dispatched: u64,
    /// Results this shard delivered.
    delivered: u64,
    /// Times this shard re-entered the ring after being down.
    rejoins: u64,
}

impl ShardState {
    fn live(&self) -> bool {
        self.client.is_some()
    }
}

/// One job awaiting its result.
#[derive(Debug)]
struct PendingJob {
    /// Kept for resubmission after a shard death.
    job: Job,
    /// Registered design the job targets (`None` = each shard's
    /// default).
    design: Option<String>,
    /// The id the owning shard's pool assigned.
    remote_id: u64,
    /// The shard currently running it (`usize::MAX` while unplaced).
    shard: usize,
    /// Placements so far.
    attempts: usize,
    /// When the router first accepted the job — the latency origin for
    /// hedging decisions and delivery accounting, preserved across
    /// resubmissions.
    submitted_at: Instant,
    /// An outstanding hedge copy, as `(shard, remote id)`.
    hedge: Option<(usize, u64)>,
    /// Whether this job *is* a surviving hedge copy (its primary's
    /// shard died and the hedge was promoted in place).
    promoted: bool,
}

/// A result delivered by the router's merged stream.
#[derive(Debug, Clone)]
pub struct Routed {
    /// Router-global job id (what [`ShardRouter::submit`] returned).
    pub id: u64,
    /// The shard that produced the result.
    pub shard: usize,
    /// The wire result (its `id` field is the *shard-local* pool id).
    pub result: WireResult,
}

/// Why the router could not make progress.
#[derive(Debug)]
pub enum RouterError {
    /// Every shard is down; `stranded` jobs cannot currently be
    /// placed. The jobs stay pending, and every later router call
    /// reports this error again for them — but probing continues, so
    /// a host that comes back can still unblock the fleet.
    NoLiveShards {
        /// Jobs that were pending when the last shard went down.
        stranded: usize,
    },
    /// One job exhausted [`ShardConfig::max_attempts`] placements and
    /// was removed from the router's books — the rest of the corpus
    /// keeps flowing.
    JobLost {
        /// The router-global id of the abandoned job.
        id: u64,
        /// How many placements it burned.
        attempts: usize,
    },
    /// [`next_result`](ShardRouter::next_result) with nothing pending.
    Idle,
    /// A shard answered a request about this router's own job with a
    /// server-side refusal — a protocol violation, not a transport
    /// fault (those are handled by resubmission).
    Shard {
        /// The offending shard slot.
        shard: usize,
        /// What it said.
        error: ProtocolError,
    },
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::NoLiveShards { stranded } => {
                write!(f, "every shard is down ({stranded} jobs stranded)")
            }
            RouterError::JobLost { id, attempts } => {
                write!(f, "job {id} abandoned after {attempts} placements")
            }
            RouterError::Idle => write!(f, "no jobs outstanding"),
            RouterError::Shard { shard, error } => {
                write!(f, "shard {shard} protocol violation: {error}")
            }
        }
    }
}

impl std::error::Error for RouterError {}

/// Aggregate router counters.
#[derive(Debug, Clone)]
pub struct RouterStats {
    /// Jobs accepted by [`ShardRouter::submit`].
    pub submitted: u64,
    /// Results delivered through the merged stream.
    pub delivered: u64,
    /// Job placements repeated because their shard's connection was
    /// lost (each orphaned job counts once per loss).
    pub resubmitted: u64,
    /// Down episodes: times a shard's breaker opened and it left the
    /// ring (a later rejoin starts a fresh episode).
    pub shard_deaths: u64,
    /// Per-shard accounting, by slot.
    pub per_shard: Vec<ShardLoad>,
}

/// One shard's routing accounting.
#[derive(Debug, Clone)]
pub struct ShardLoad {
    /// The shard's address.
    pub addr: SocketAddr,
    /// Whether the shard is in the ring.
    pub alive: bool,
    /// Jobs ever dispatched to it (including resubmissions).
    pub dispatched: u64,
    /// Results it delivered.
    pub delivered: u64,
    /// Jobs currently awaiting results on it.
    pub in_flight: usize,
}

/// Where one shard's circuit breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPhase {
    /// Breaker closed: connected and in the ring.
    Live,
    /// Breaker open: out of the ring, awaiting its next half-open
    /// probe.
    Open {
        /// Consecutive failures so far.
        failures: u32,
    },
    /// Failures crossed [`ShardConfig::reconnects`]; still probed (a
    /// dead host that answers rejoins), but reported as dead.
    Dead {
        /// Consecutive failures so far.
        failures: u32,
    },
}

/// One shard's slice of a [`FleetStats`] snapshot.
#[derive(Debug, Clone)]
pub struct FleetShard {
    /// The shard's address.
    pub addr: SocketAddr,
    /// Breaker phase.
    pub phase: ShardPhase,
    /// Jobs currently awaiting results on it (primary or hedge).
    pub in_flight: usize,
    /// Jobs ever dispatched to it (including resubmissions and
    /// hedges).
    pub dispatched: u64,
    /// Results it delivered.
    pub delivered: u64,
    /// Times it re-entered the ring after being down.
    pub rejoins: u64,
}

/// The elastic-fleet snapshot: everything [`RouterStats`] counts, plus
/// breaker phases, rejoins, and the hedging ledger.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// Jobs accepted by [`ShardRouter::submit`].
    pub submitted: u64,
    /// Results delivered through the merged stream.
    pub delivered: u64,
    /// Job placements repeated because their shard's connection was
    /// lost.
    pub resubmitted: u64,
    /// Down episodes: times a shard's breaker opened and it left the
    /// ring.
    pub shard_deaths: u64,
    /// Shards that re-entered the ring after being down, fleet-wide.
    pub rejoins: u64,
    /// Hedge copies submitted.
    pub hedges: u64,
    /// Jobs whose hedge copy delivered the result (including promoted
    /// hedges that outlived their primary's shard).
    pub hedges_won: u64,
    /// Hedge copies that lost the race to their primary and were
    /// discarded.
    pub hedges_lost: u64,
    /// Per-shard accounting, by slot.
    pub per_shard: Vec<FleetShard>,
}

/// The cross-host supervisor: consistent-hash job placement over a
/// fleet of serve processes, with circuit-breaker health tracking,
/// shard rejoin, registration fan-out, replica hedging, and automatic
/// resubmission. See the [module docs](self) for the design.
///
/// ```no_run
/// use rteaal_sched::Job;
/// use rteaal_serve::{ShardConfig, ShardRouter};
///
/// let addrs: Vec<std::net::SocketAddr> =
///     vec!["10.0.0.1:7700".parse()?, "10.0.0.2:7700".parse()?];
/// let mut router = ShardRouter::connect(&addrs, ShardConfig::default())?;
/// for k in 1u64..=24 {
///     router.submit(Job::new(format!("sum-{k}"), 3 * k + 12).with_probe("a0"))?;
/// }
/// for routed in router.drain()? {
///     println!("job {} on shard {}: {:?}", routed.id, routed.shard, routed.result.outputs);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ShardRouter {
    config: ShardConfig,
    shards: Vec<ShardState>,
    ring: HashRing,
    /// Router id -> its pending job, across all shards.
    pending: HashMap<u64, PendingJob>,
    /// Designs registered through the router, in order — replayed to
    /// every rejoiner before it re-enters the ring.
    registry: Vec<(String, String, String)>,
    /// Recent delivery latencies (ring buffer of `LATENCY_WINDOW`), the
    /// hedging quantile's sample.
    latencies: Vec<Duration>,
    latency_cursor: usize,
    next_id: u64,
    telemetry: RouterTelemetry,
}

/// The router's slice of the metrics registry: every fleet-level
/// counter lives in the registry (so [`FleetStats`] and
/// [`RouterStats`] are *views* over it, and the `tables` experiments
/// read one coherent snapshot), with the hot-path handles interned
/// once here.
#[derive(Debug)]
struct RouterTelemetry {
    registry: Arc<MetricsRegistry>,
    /// Jobs accepted by `submit` / `submit_on`.
    submitted: Arc<Counter>,
    /// Results delivered through the merged stream.
    delivered: Arc<Counter>,
    /// Jobs abandoned (placement budget exhausted, or a protocol
    /// violation on submit) — the third leg of the accounting identity
    /// `submitted == delivered + pending + lost`.
    lost: Arc<Counter>,
    /// Placements repeated after a shard's connection was lost.
    resubmitted: Arc<Counter>,
    /// Breaker closed→open edges (shard left the ring).
    shard_deaths: Arc<Counter>,
    /// Breaker open→closed edges (probe answered; registry replayed).
    rejoins: Arc<Counter>,
    /// Half-open probe attempts, answered or not.
    probes: Arc<Counter>,
    /// Hedge copies submitted.
    hedges: Arc<Counter>,
    /// Races the hedge copy won (including promoted hedges).
    hedges_won: Arc<Counter>,
    /// Hedge copies that lost to their primary and were discarded.
    hedges_lost: Arc<Counter>,
}

impl RouterTelemetry {
    fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        RouterTelemetry {
            submitted: registry.counter("router.submitted"),
            delivered: registry.counter("router.delivered"),
            lost: registry.counter("router.jobs_lost"),
            resubmitted: registry.counter("router.resubmitted"),
            shard_deaths: registry.counter("router.shard_deaths"),
            rejoins: registry.counter("router.rejoins"),
            probes: registry.counter("router.probe_attempts"),
            hedges: registry.counter("router.hedges"),
            hedges_won: registry.counter("router.hedges_won"),
            hedges_lost: registry.counter("router.hedges_lost"),
            registry,
        }
    }
}

impl ShardRouter {
    /// Connects one client per shard address. All shards must accept
    /// the initial connection — a fleet that starts degraded is a
    /// deployment error, not a runtime fault.
    ///
    /// # Errors
    ///
    /// [`RouterError::Shard`] naming the first address that refused.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    pub fn connect(addrs: &[SocketAddr], config: ShardConfig) -> Result<Self, RouterError> {
        assert!(!addrs.is_empty(), "a fleet needs at least one shard");
        let mut shards = Vec::with_capacity(addrs.len());
        let mut ring = HashRing::new(config.replicas);
        for (slot, &addr) in addrs.iter().enumerate() {
            let client = Self::open(addr, config.read_timeout)
                .map_err(|error| RouterError::Shard { shard: slot, error })?;
            ring.add(slot);
            shards.push(ShardState {
                addr,
                client: Some(client),
                failures: 0,
                dead: false,
                retry_at: None,
                inflight: Vec::new(),
                zombies: Vec::new(),
                dispatched: 0,
                delivered: 0,
                rejoins: 0,
            });
        }
        Ok(ShardRouter {
            config,
            shards,
            ring,
            pending: HashMap::new(),
            registry: Vec::new(),
            latencies: Vec::new(),
            latency_cursor: 0,
            next_id: 0,
            telemetry: RouterTelemetry::new(),
        })
    }

    /// The router's metrics registry: fleet counters, the delivery
    /// latency histogram, and router-side job events (submitted /
    /// delivered, with shard attribution).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.telemetry.registry
    }

    /// The accounting identity every snapshot must satisfy: each
    /// accepted job is delivered, still pending, or counted lost —
    /// never silently dropped.
    pub fn accounting_balanced(&self) -> bool {
        self.next_id
            == self.telemetry.delivered.get()
                + self.pending.len() as u64
                + self.telemetry.lost.get()
    }

    /// Connects to one shard with the router's read deadline applied.
    fn open(addr: SocketAddr, timeout: Duration) -> Result<ServeClient, ProtocolError> {
        let client = ServeClient::connect(addr)?;
        client.set_read_timeout(Some(timeout))?;
        Ok(client)
    }

    /// The backoff before failure number `failures`' next probe:
    /// exponential in the failure count, capped, with deterministic
    /// jitter in `[0.5, 1.0)` of the nominal delay so a fleet of
    /// routers probing the same revived host decorrelate.
    fn backoff_for(config: &ShardConfig, shard: usize, failures: u32) -> Duration {
        let exp = failures.saturating_sub(1).min(12);
        let mut delay = config.backoff_base.saturating_mul(1u32 << exp);
        if delay > config.backoff_cap {
            delay = config.backoff_cap;
        }
        let jitter = mix64(((shard as u64) << 32) ^ u64::from(failures)) as f64 / u64::MAX as f64;
        delay.mul_f64(0.5 + 0.5 * jitter)
    }

    /// Submits a job to every shard's default design: assigns a
    /// router-global id, places it on the shard the ring maps that id
    /// to, and returns the id. Placement failures cascade through the
    /// failure path (reconnect, then rehash to survivors) before this
    /// returns.
    ///
    /// # Errors
    ///
    /// [`RouterError::NoLiveShards`] / [`RouterError::JobLost`] when
    /// the fleet cannot take the job at all.
    pub fn submit(&mut self, job: Job) -> Result<u64, RouterError> {
        self.submit_on(None, job)
    }

    /// Submits a job to a named registered design (`None` = each
    /// shard's default design). The design should have been registered
    /// through [`register`](Self::register) so every shard — including
    /// future rejoiners — can run it.
    ///
    /// # Errors
    ///
    /// [`RouterError::NoLiveShards`] / [`RouterError::JobLost`] when
    /// the fleet cannot take the job at all.
    pub fn submit_on(&mut self, design: Option<&str>, job: Job) -> Result<u64, RouterError> {
        let id = self.next_id;
        self.next_id += 1;
        self.telemetry.submitted.inc();
        self.telemetry
            .registry
            .record_event(id, JobStage::Submitted, None, None, None);
        self.pending.insert(
            id,
            PendingJob {
                job,
                design: design.map(str::to_string),
                remote_id: 0,
                shard: usize::MAX,
                attempts: 0,
                submitted_at: Instant::now(),
                hedge: None,
                promoted: false,
            },
        );
        self.dispatch(vec![id])?;
        Ok(id)
    }

    /// Registers a design fleet-wide: records it in the router's
    /// registry (replayed to every future rejoiner before it takes
    /// jobs) and broadcasts it to every live shard. A shard whose
    /// connection fails mid-broadcast takes the usual failure path and
    /// will receive the design when it rejoins.
    ///
    /// # Errors
    ///
    /// [`RouterError::Shard`] on the first server-side refusal (compile
    /// failure, duplicate name) — the design is then dropped from the
    /// registry, since replaying a design no server accepts would wedge
    /// every rejoin. Fleet-exhaustion errors propagate from the failure
    /// path.
    pub fn register(&mut self, design: &str, source: &str, halt: &str) -> Result<(), RouterError> {
        self.registry
            .push((design.to_string(), source.to_string(), halt.to_string()));
        for shard in 0..self.shards.len() {
            if !self.shards[shard].live() {
                continue;
            }
            let outcome = self.shards[shard]
                .client
                .as_mut()
                .expect("live shards have clients")
                .register(design, source, halt);
            match outcome {
                Ok(()) => {}
                Err(error) if error.is_fatal() => {
                    let orphans = self.shard_failed(shard);
                    self.dispatch(orphans)?;
                }
                Err(error) => {
                    self.registry.pop();
                    return Err(RouterError::Shard { shard, error });
                }
            }
        }
        Ok(())
    }

    /// Places every job in `work` on the shard its id hashes to,
    /// walking the failure path (reconnect, rehash) as shards fall
    /// over.
    ///
    /// A job that fails *individually* — placement budget exhausted, or
    /// a protocol violation on submit — is removed from the router's
    /// books entirely, and the rest of the worklist is still placed
    /// before its error is returned: one abandoned job must never
    /// strand the others in a pending-but-nowhere limbo that
    /// [`drain`](Self::drain) would wait on forever. Only a fleet-wide
    /// failure (empty ring) aborts immediately; the jobs it leaves
    /// pending are the `stranded` count, and every later call keeps
    /// reporting [`RouterError::NoLiveShards`] for them.
    fn dispatch(&mut self, mut work: Vec<u64>) -> Result<(), RouterError> {
        let mut first_failure: Option<RouterError> = None;
        while let Some(id) = work.pop() {
            loop {
                if self.ring.is_empty() {
                    // Give due probes one chance to revive the fleet
                    // before declaring it exhausted.
                    self.run_probes();
                }
                if self.ring.is_empty() {
                    return Err(RouterError::NoLiveShards {
                        stranded: self.pending.len(),
                    });
                }
                let shard = self.ring.shard_for(id).expect("ring is non-empty");
                let attempts = {
                    let p = self.pending.get_mut(&id).expect("dispatching a known job");
                    p.attempts += 1;
                    p.attempts
                };
                if attempts > self.config.max_attempts {
                    self.pending.remove(&id);
                    self.telemetry.lost.inc();
                    first_failure.get_or_insert(RouterError::JobLost { id, attempts });
                    break;
                }
                let outcome = {
                    let p = &self.pending[&id];
                    let client = self.shards[shard]
                        .client
                        .as_mut()
                        .expect("ring only maps live shards");
                    match &p.design {
                        Some(d) => client.submit_to(d, &p.job),
                        None => client.submit(&p.job),
                    }
                };
                match outcome {
                    Ok(remote_id) => {
                        let p = self.pending.get_mut(&id).expect("dispatching a known job");
                        p.remote_id = remote_id;
                        p.shard = shard;
                        // A successful placement clears the job's
                        // failure streak: `max_attempts` guards against
                        // a job no host will *take*, not against honest
                        // resubmission churn when shards flap.
                        p.attempts = 0;
                        let st = &mut self.shards[shard];
                        st.dispatched += 1;
                        st.inflight.push(id);
                        break;
                    }
                    Err(error) if error.is_fatal() => {
                        // The shard's orphans (and this job) go back on
                        // the worklist; the ring may or may not still
                        // contain the shard depending on whether the
                        // immediate reconnect lands.
                        work.extend(self.shard_failed(shard));
                        continue;
                    }
                    Err(error) => {
                        self.pending.remove(&id);
                        self.telemetry.lost.inc();
                        first_failure.get_or_insert(RouterError::Shard { shard, error });
                        break;
                    }
                }
            }
        }
        match first_failure {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }

    /// Handles a fatal transport fault on one shard: the breaker's
    /// closed→open edge. The shard gets one immediate reconnect (if
    /// its consecutive-failure count is still within budget); if that
    /// fails it leaves the ring (one counted down episode) and is
    /// probed on capped exponential backoff with jitter by
    /// [`run_probes`](Self::run_probes). Crossing the failure budget
    /// additionally reports it dead — probing continues regardless.
    ///
    /// Either way the shard's in-flight jobs are orphaned — their
    /// handles lived on the broken connection. A job whose *hedge*
    /// lives on a healthy shard is rescued in place (the hedge is
    /// promoted to primary, no resubmission); jobs that were only
    /// hedged *here* simply lose the hedge; the rest are returned for
    /// redispatch.
    fn shard_failed(&mut self, shard: usize) -> Vec<u64> {
        let st = &mut self.shards[shard];
        st.client = None;
        // Zombie claims die with the connection; the server's tombstone
        // path discards their results.
        st.zombies.clear();
        st.failures += 1;
        let failures = st.failures;
        let was_inflight = std::mem::take(&mut st.inflight);
        if failures <= self.config.reconnects as u32 {
            if let Ok(client) = Self::open(st.addr, self.config.read_timeout) {
                st.client = Some(client);
            }
        }
        if self.shards[shard].client.is_none() {
            self.ring.remove(shard);
            // One down episode = one death, counted at the moment the
            // shard leaves the ring (probe failures while it stays out
            // are the same episode).
            self.telemetry.shard_deaths.inc();
            let retry_at = Instant::now() + Self::backoff_for(&self.config, shard, failures);
            let st = &mut self.shards[shard];
            st.retry_at = Some(retry_at);
            if failures > self.config.reconnects as u32 {
                st.dead = true;
            }
        }
        let mut orphans = Vec::new();
        for id in was_inflight {
            let Some(p) = self.pending.get_mut(&id) else {
                continue;
            };
            if p.shard == shard {
                match p.hedge.take() {
                    Some((h, rid)) if h != shard && self.shards[h].live() => {
                        // The hedge copy survives: promote it instead of
                        // replaying the job. It is already in shard h's
                        // inflight list.
                        p.shard = h;
                        p.remote_id = rid;
                        p.promoted = true;
                    }
                    _ => {
                        p.shard = usize::MAX;
                        p.remote_id = 0;
                        orphans.push(id);
                        self.telemetry.resubmitted.inc();
                    }
                }
            } else if p.hedge.is_some_and(|(h, _)| h == shard) {
                // Only the hedge copy lived here; the primary is fine.
                p.hedge = None;
            }
        }
        orphans
    }

    /// Half-open probes for every down shard whose backoff has lapsed:
    /// connect, `ping`, replay the design registry, and only then
    /// re-add the shard to the ring (the rejoin). A failed probe
    /// doubles the backoff; crossing the failure budget marks the
    /// shard dead, but probing never stops.
    fn run_probes(&mut self) {
        let now = Instant::now();
        for shard in 0..self.shards.len() {
            if self.shards[shard].live() {
                continue;
            }
            if self.shards[shard].retry_at.is_some_and(|t| t > now) {
                continue;
            }
            let addr = self.shards[shard].addr;
            self.telemetry.probes.inc();
            let probe = Self::open(addr, self.config.read_timeout).and_then(|mut client| {
                client.ping()?;
                for (design, source, halt) in &self.registry {
                    match client.register(design, source, halt) {
                        Ok(()) => {}
                        // Non-fatal refusal: the host kept its registry
                        // through the outage (duplicate design).
                        Err(error) if !error.is_fatal() => {}
                        Err(error) => return Err(error),
                    }
                }
                Ok(client)
            });
            match probe {
                Ok(client) => {
                    let st = &mut self.shards[shard];
                    st.client = Some(client);
                    st.failures = 0;
                    st.dead = false;
                    st.retry_at = None;
                    st.rejoins += 1;
                    self.telemetry.rejoins.inc();
                    self.ring.add(shard);
                }
                Err(_) => {
                    let st = &mut self.shards[shard];
                    st.failures += 1;
                    let failures = st.failures;
                    st.retry_at = Some(now + Self::backoff_for(&self.config, shard, failures));
                    if failures > self.config.reconnects as u32 {
                        self.shards[shard].dead = true;
                    }
                }
            }
        }
    }

    /// The current straggler threshold.
    ///
    /// While the delivery-latency window is empty or below
    /// `hedge_min_samples`, the configured `hedge_floor` stands in:
    /// returning `None` there would disable hedging until the window
    /// warms (a cold router never rescues a straggler), and returning
    /// zero would make *every* dispatch a straggler (a hedge storm).
    /// The quantile is clamped to `[0, 1]` and the index it produces is
    /// re-clamped into the sample, so `hedge_quantile` 0.0 / 1.0 (and
    /// NaN, which casts to index 0) select the min / max sample instead
    /// of indexing out of bounds — and whatever they select is floored
    /// too, so a degenerate quantile over a microsecond-fast window
    /// still can't drive the threshold to zero.
    fn hedge_threshold(&self) -> Duration {
        if self.latencies.len() < self.config.hedge_min_samples.max(1) {
            return self.config.hedge_floor;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let q = self.config.hedge_quantile.clamp(0.0, 1.0);
        let idx = (((sorted.len() - 1) as f64 * q) as usize).min(sorted.len() - 1);
        sorted[idx]
            .mul_f64(self.config.hedge_multiplier.max(1.0))
            .max(self.config.hedge_floor)
    }

    /// Hedges every straggler: a pending job older than the quantile
    /// threshold is resubmitted to the next distinct shard on the ring
    /// (first result will win; the loser is discarded through the
    /// exactly-once path).
    fn maybe_hedge(&mut self) -> Result<(), RouterError> {
        if !self.config.hedge || self.ring.len() < 2 {
            return Ok(());
        }
        let threshold = self.hedge_threshold();
        let ids: Vec<u64> = self.pending.keys().copied().collect();
        for id in ids {
            let primary = {
                let Some(p) = self.pending.get(&id) else {
                    continue;
                };
                if p.hedge.is_some()
                    || p.promoted
                    || p.shard == usize::MAX
                    || p.submitted_at.elapsed() < threshold
                {
                    continue;
                }
                p.shard
            };
            let Some(target) = self.ring.shard_for_excluding(id, primary) else {
                continue;
            };
            if target == primary || !self.shards[target].live() {
                continue;
            }
            let outcome = {
                let p = &self.pending[&id];
                let client = self.shards[target]
                    .client
                    .as_mut()
                    .expect("hedge targets are live");
                match &p.design {
                    Some(d) => client.submit_to(d, &p.job),
                    None => client.submit(&p.job),
                }
            };
            match outcome {
                Ok(remote_id) => {
                    let st = &mut self.shards[target];
                    st.dispatched += 1;
                    st.inflight.push(id);
                    if let Some(p) = self.pending.get_mut(&id) {
                        p.hedge = Some((target, remote_id));
                    }
                    self.telemetry.hedges.inc();
                }
                Err(error) if error.is_fatal() => {
                    let orphans = self.shard_failed(target);
                    self.dispatch(orphans)?;
                }
                // A server-side refusal of the duplicate is harmless:
                // the primary carries on alone.
                Err(_) => {}
            }
        }
        Ok(())
    }

    /// Records one delivery and settles the hedge race for `id`.
    fn deliver(&mut self, id: u64, shard: usize, result: WireResult) -> Routed {
        let p = self.pending.remove(&id).expect("delivering a pending job");
        {
            let st = &mut self.shards[shard];
            st.inflight.retain(|&i| i != id);
            st.delivered += 1;
            st.failures = 0;
        }
        self.telemetry.delivered.inc();
        self.telemetry.registry.record_event(
            id,
            JobStage::Delivered,
            None,
            None,
            Some(shard as u64),
        );
        if p.shard == shard {
            if let Some((h, rid)) = p.hedge {
                // Primary won the race: the hedge copy becomes a zombie
                // claim, drained and discarded on its own connection.
                self.telemetry.hedges_lost.inc();
                let hs = &mut self.shards[h];
                hs.inflight.retain(|&i| i != id);
                if hs.live() {
                    hs.zombies.push(rid);
                }
            } else if p.promoted {
                self.telemetry.hedges_won.inc();
            }
        } else {
            // The hedge copy won: retire the primary's claim.
            self.telemetry.hedges_won.inc();
            let ps = &mut self.shards[p.shard];
            ps.inflight.retain(|&i| i != id);
            if ps.live() {
                ps.zombies.push(p.remote_id);
            }
        }
        let latency = p.submitted_at.elapsed();
        self.telemetry
            .registry
            .histogram("router.delivery_latency_us")
            .record(latency.as_micros() as u64);
        if self.latencies.len() < LATENCY_WINDOW {
            self.latencies.push(latency);
        } else {
            self.latencies[self.latency_cursor % LATENCY_WINDOW] = latency;
            self.latency_cursor = self.latency_cursor.wrapping_add(1);
        }
        Routed { id, shard, result }
    }

    /// One non-blocking pass over the fleet: run due probes (rejoins
    /// happen here), hedge stragglers, drain zombie claims, and poll
    /// every in-flight job once. Returns the first finished job found,
    /// `Ok(None)` if nothing finished — including when nothing is
    /// pending, which makes this the idle-safe pump for open-loop
    /// drivers that interleave submission with collection.
    ///
    /// # Errors
    ///
    /// [`RouterError::NoLiveShards`] / [`RouterError::JobLost`] when a
    /// failure cascade exhausts the fleet;
    /// [`RouterError::Shard`] on a protocol violation.
    pub fn poll_once(&mut self) -> Result<Option<Routed>, RouterError> {
        self.run_probes();
        self.maybe_hedge()?;
        for shard in self.ring.live().to_vec() {
            // Re-check against the *current* ring: an earlier failure
            // in this sweep can cascade (via resubmission) into the
            // death of a shard later in the snapshot.
            if !self.shards[shard].live() {
                continue;
            }
            // Drain zombie claims first: hedge losers whose results
            // must be claimed-and-discarded to stay exactly-once.
            let zombies = std::mem::take(&mut self.shards[shard].zombies);
            let mut kept = Vec::new();
            let mut shard_ok = true;
            for rid in zombies {
                let polled = self.shards[shard]
                    .client
                    .as_mut()
                    .expect("live shards have clients")
                    .poll(rid);
                match polled {
                    Ok(Some(_)) => {} // claimed and dropped
                    Ok(None) => kept.push(rid),
                    Err(error) if error.is_fatal() => {
                        let orphans = self.shard_failed(shard);
                        self.dispatch(orphans)?;
                        shard_ok = false;
                        break;
                    }
                    // The claim outlived its connection's scope; the
                    // server already tombstoned it.
                    Err(_) => {}
                }
            }
            if !shard_ok {
                continue;
            }
            self.shards[shard].zombies = kept;
            // Snapshot: the sweep mutates inflight on delivery.
            let ids = self.shards[shard].inflight.clone();
            for id in ids {
                let remote_id = match self.pending.get(&id) {
                    Some(p) if p.shard == shard => p.remote_id,
                    Some(p) if p.hedge.is_some_and(|(h, _)| h == shard) => {
                        p.hedge.expect("just matched").1
                    }
                    // Stale entry: delivered via the other copy, or
                    // rehashed away.
                    _ => {
                        self.shards[shard].inflight.retain(|&i| i != id);
                        continue;
                    }
                };
                let polled = self.shards[shard]
                    .client
                    .as_mut()
                    .expect("live shards have clients")
                    .poll(remote_id);
                match polled {
                    Ok(Some(result)) => return Ok(Some(self.deliver(id, shard, result))),
                    Ok(None) => {}
                    Err(error) if error.is_fatal() => {
                        let orphans = self.shard_failed(shard);
                        self.dispatch(orphans)?;
                        break; // this shard's snapshot is stale
                    }
                    Err(error) => return Err(RouterError::Shard { shard, error }),
                }
            }
        }
        Ok(None)
    }

    /// Blocks until the next job — from any shard — finishes, and
    /// returns it: the fleet's single completion-ordered stream.
    /// Shards that fail mid-wait are handled inline (their jobs
    /// resubmitted) without disturbing the stream.
    ///
    /// # Errors
    ///
    /// [`RouterError::Idle`] with nothing pending;
    /// [`RouterError::NoLiveShards`] / [`RouterError::JobLost`] when a
    /// failure cascade exhausts the fleet.
    pub fn next_result(&mut self) -> Result<Routed, RouterError> {
        loop {
            if self.pending.is_empty() {
                return Err(RouterError::Idle);
            }
            // Pending jobs with no fleet left can never complete *now*:
            // report that instead of sleeping (probes still got their
            // chance through the dispatch/poll paths).
            if self.ring.is_empty() {
                self.run_probes();
            }
            if self.ring.is_empty() {
                return Err(RouterError::NoLiveShards {
                    stranded: self.pending.len(),
                });
            }
            if let Some(routed) = self.poll_once()? {
                return Ok(routed);
            }
            std::thread::sleep(self.config.poll_interval);
        }
    }

    /// Drains every outstanding job, in completion order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`next_result`](Self::next_result) failure.
    pub fn drain(&mut self) -> Result<Vec<Routed>, RouterError> {
        let mut out = Vec::new();
        while !self.pending.is_empty() {
            out.push(self.next_result()?);
        }
        Ok(out)
    }

    /// Jobs awaiting results, fleet-wide.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Live shard count.
    pub fn live_shards(&self) -> usize {
        self.ring.len()
    }

    /// A snapshot of the router's counters — a view over the metrics
    /// registry.
    pub fn stats(&self) -> RouterStats {
        debug_assert!(
            self.accounting_balanced(),
            "router accounting leak: submitted {} != delivered {} + pending {} + lost {}",
            self.next_id,
            self.telemetry.delivered.get(),
            self.pending.len(),
            self.telemetry.lost.get(),
        );
        RouterStats {
            submitted: self.next_id,
            delivered: self.telemetry.delivered.get(),
            resubmitted: self.telemetry.resubmitted.get(),
            shard_deaths: self.telemetry.shard_deaths.get(),
            per_shard: self
                .shards
                .iter()
                .map(|st| ShardLoad {
                    addr: st.addr,
                    alive: st.live(),
                    dispatched: st.dispatched,
                    delivered: st.delivered,
                    in_flight: st.inflight.len(),
                })
                .collect(),
        }
    }

    /// The elastic-fleet snapshot: breaker phases, rejoins, and the
    /// hedging ledger, on top of everything [`stats`](Self::stats)
    /// counts.
    pub fn fleet_stats(&self) -> FleetStats {
        debug_assert!(self.accounting_balanced(), "router accounting leak");
        FleetStats {
            submitted: self.next_id,
            delivered: self.telemetry.delivered.get(),
            resubmitted: self.telemetry.resubmitted.get(),
            shard_deaths: self.telemetry.shard_deaths.get(),
            rejoins: self.telemetry.rejoins.get(),
            hedges: self.telemetry.hedges.get(),
            hedges_won: self.telemetry.hedges_won.get(),
            hedges_lost: self.telemetry.hedges_lost.get(),
            per_shard: self
                .shards
                .iter()
                .map(|st| FleetShard {
                    addr: st.addr,
                    phase: if st.live() {
                        ShardPhase::Live
                    } else if st.dead {
                        ShardPhase::Dead {
                            failures: st.failures,
                        }
                    } else {
                        ShardPhase::Open {
                            failures: st.failures,
                        }
                    },
                    in_flight: st.inflight.len(),
                    dispatched: st.dispatched,
                    delivered: st.delivered,
                    rejoins: st.rejoins,
                })
                .collect(),
        }
    }

    /// Polls every live shard's `stats` verb: the load probe. A shard
    /// that fails the probe takes the usual failure path (breaker
    /// opens, jobs resubmitted) and reports `None`, as do shards
    /// currently down.
    ///
    /// # Errors
    ///
    /// [`RouterError::NoLiveShards`] / [`RouterError::JobLost`] if a
    /// probe-triggered failure cascade exhausts the fleet.
    pub fn poll_health(&mut self) -> Result<Vec<Option<WireStats>>, RouterError> {
        let mut out = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            if !self.shards[shard].live() {
                out.push(None);
                continue;
            }
            let polled = self.shards[shard]
                .client
                .as_mut()
                .expect("live shards have clients")
                .stats();
            match polled {
                Ok(stats) => out.push(Some(stats)),
                Err(error) if error.is_fatal() => {
                    let orphans = self.shard_failed(shard);
                    self.dispatch(orphans)?;
                    out.push(None);
                }
                Err(error) => return Err(RouterError::Shard { shard, error }),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A router with no connections — enough structure to exercise the
    /// pure threshold math without a live fleet.
    fn bare_router(config: ShardConfig) -> ShardRouter {
        ShardRouter {
            config,
            shards: Vec::new(),
            ring: HashRing::new(config.replicas),
            pending: HashMap::new(),
            registry: Vec::new(),
            latencies: Vec::new(),
            latency_cursor: 0,
            next_id: 0,
            telemetry: RouterTelemetry::new(),
        }
    }

    #[test]
    fn hedge_threshold_falls_back_to_the_floor_on_a_cold_window() {
        // Boundary 1: an empty latency window. The threshold must be
        // the floor — not `None` (hedging would never activate on a
        // cold router) and not zero (every job would hedge).
        let config = ShardConfig::default();
        let floor = config.hedge_floor;
        let router = bare_router(config);
        assert!(router.latencies.is_empty());
        assert_eq!(router.hedge_threshold(), floor);
        assert!(router.hedge_threshold() > Duration::ZERO);
    }

    #[test]
    fn hedge_threshold_falls_back_to_the_floor_below_min_samples() {
        // Boundary 2: a warming window, one short of `hedge_min_samples`
        // — still the floor, untouched by the (tiny) samples, then the
        // quantile path takes over on the very next delivery.
        let config = ShardConfig {
            hedge_min_samples: 4,
            hedge_multiplier: 2.0,
            hedge_quantile: 1.0,
            ..ShardConfig::default()
        };
        let floor = config.hedge_floor;
        let mut router = bare_router(config);
        for _ in 0..3 {
            router.latencies.push(Duration::from_micros(5));
            assert_eq!(router.hedge_threshold(), floor);
        }
        router.latencies.push(Duration::from_secs(1));
        assert_eq!(router.hedge_threshold(), Duration::from_secs(2));
    }

    #[test]
    fn hedge_threshold_survives_degenerate_quantiles() {
        // Boundary 3: `hedge_quantile` 0.0 and 1.0 (and beyond) over a
        // full window. 0.0 selects the fastest sample — which over a
        // microsecond-fast fleet must still be floored, not turned into
        // a hedge storm; 1.0 selects the slowest sample without
        // indexing out of bounds; out-of-range values clamp.
        let config = ShardConfig {
            hedge_min_samples: 4,
            hedge_multiplier: 2.0,
            hedge_floor: Duration::from_millis(10),
            ..ShardConfig::default()
        };
        let mut router = bare_router(config);
        router.latencies = vec![
            Duration::from_micros(1),
            Duration::from_millis(3),
            Duration::from_millis(40),
            Duration::from_millis(100),
        ];
        router.config.hedge_quantile = 0.0;
        // 1 µs × 2 would be a 2 µs threshold — a hedge storm. Floored.
        assert_eq!(router.hedge_threshold(), Duration::from_millis(10));
        router.config.hedge_quantile = 1.0;
        assert_eq!(router.hedge_threshold(), Duration::from_millis(200));
        router.config.hedge_quantile = 7.5;
        assert_eq!(router.hedge_threshold(), Duration::from_millis(200));
        router.config.hedge_quantile = -1.0;
        assert_eq!(router.hedge_threshold(), Duration::from_millis(10));
    }

    #[test]
    fn ring_is_deterministic_and_covers_all_live_shards() {
        let mut ring = HashRing::new(64);
        for s in 0..4 {
            ring.add(s);
        }
        let owners: Vec<usize> = (0..256)
            .map(|k| ring.shard_for(k).expect("non-empty ring"))
            .collect();
        // Deterministic: a second pass agrees.
        for (k, &owner) in owners.iter().enumerate() {
            assert_eq!(ring.shard_for(k as u64), Some(owner));
            assert!(ring.live().contains(&owner));
        }
        // Every shard owns a reasonable share of 256 keys.
        for s in 0..4 {
            let share = owners.iter().filter(|&&o| o == s).count();
            assert!(share > 16, "shard {s} owns only {share}/256 keys");
        }
    }

    #[test]
    fn removing_a_shard_moves_only_its_keys() {
        let mut ring = HashRing::new(64);
        for s in 0..3 {
            ring.add(s);
        }
        let before: Vec<usize> = (0..200).map(|k| ring.shard_for(k).unwrap()).collect();
        ring.remove(1);
        for (k, &owner) in before.iter().enumerate() {
            let now = ring.shard_for(k as u64).unwrap();
            if owner == 1 {
                assert_ne!(now, 1, "key {k} still maps to the removed shard");
            } else {
                assert_eq!(now, owner, "key {k} moved without cause");
            }
        }
        // Adding it back restores the original partition exactly.
        ring.add(1);
        for (k, &owner) in before.iter().enumerate() {
            assert_eq!(ring.shard_for(k as u64), Some(owner));
        }
    }

    #[test]
    fn excluding_owner_matches_removal_without_mutating() {
        let mut ring = HashRing::new(64);
        for s in 0..3 {
            ring.add(s);
        }
        // The hedge target for a key is exactly where the key would go
        // if its owner were removed.
        for k in 0..200u64 {
            let owner = ring.shard_for(k).unwrap();
            let hedge = ring.shard_for_excluding(k, owner).unwrap();
            assert_ne!(hedge, owner);
            let mut without = ring.clone();
            without.remove(owner);
            assert_eq!(without.shard_for(k), Some(hedge), "key {k}");
        }
        // Excluding a non-owner changes nothing.
        for k in 0..50u64 {
            let owner = ring.shard_for(k).unwrap();
            let other = (0..3).find(|&s| s != owner).unwrap();
            assert_eq!(ring.shard_for_excluding(k, other), Some(owner));
        }
    }

    #[test]
    fn empty_and_single_shard_rings() {
        let mut ring = HashRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.shard_for(7), None);
        ring.add(5);
        assert_eq!(ring.len(), 1);
        for k in 0..32 {
            assert_eq!(ring.shard_for(k), Some(5));
        }
        // The only shard excluded: nowhere to hedge.
        assert_eq!(ring.shard_for_excluding(7, 5), None);
        ring.remove(5);
        assert_eq!(ring.shard_for(7), None);
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let config = ShardConfig::default();
        let mut prev = Duration::ZERO;
        for failures in 1..6 {
            let d = ShardRouter::backoff_for(&config, 0, failures);
            // Jitter keeps it within [0.5, 1.0) of the nominal delay.
            let nominal = config.backoff_base * (1 << (failures - 1));
            assert!(d >= nominal.mul_f64(0.5), "failure {failures}: {d:?}");
            assert!(d < nominal, "failure {failures}: {d:?} >= {nominal:?}");
            assert!(d > prev, "backoff must grow");
            prev = d;
        }
        // Capped however high the failure count climbs.
        let huge = ShardRouter::backoff_for(&config, 0, 1000);
        assert!(huge <= config.backoff_cap);
        // Deterministic per (shard, failures).
        assert_eq!(
            ShardRouter::backoff_for(&config, 3, 4),
            ShardRouter::backoff_for(&config, 3, 4)
        );
        // Different shards decorrelate.
        assert_ne!(
            ShardRouter::backoff_for(&config, 0, 4),
            ShardRouter::backoff_for(&config, 1, 4)
        );
    }
}
