//! The TCP front end: a listener that speaks the line-delimited-JSON
//! protocol of [`crate::protocol`] over one thread per connection, plus
//! the matching blocking client.
//!
//! The server is deliberately plain `std::net` — the build environment
//! vendors no async runtime, and the pool's workers are already the
//! concurrency that matters; connection threads only parse lines and
//! block on [`JobHandle`]s.

use crate::pool::{JobHandle, ServerPool};
use crate::protocol::{
    designs_digest, ProtocolError, Request, Response, Verb, WireAnalysis, WireDesign, WireJob,
    WirePong, WireResult, WireStats,
};
use rteaal_core::Compiler;
use rteaal_kernels::{KernelConfig, KernelKind};
use rteaal_telemetry::{JobEvent, MetricsSnapshot};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// A socket front end over a [`ServerPool`].
#[derive(Debug)]
pub struct SocketServer {
    pool: Arc<ServerPool>,
    listener: TcpListener,
}

impl SocketServer {
    /// Binds a listener (use port 0 to let the OS pick) over a pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(pool: ServerPool, addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(SocketServer {
            pool: Arc::new(pool),
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (tells clients the OS-picked port).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections forever, one handler thread per client.
    /// Accept errors on individual connections are skipped; the loop
    /// only ends (with an error) if the listener itself fails.
    pub fn serve_forever(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            let Ok(stream) = stream else { continue };
            let pool = Arc::clone(&self.pool);
            std::thread::spawn(move || {
                let _ = handle_client(&pool, stream);
            });
        }
        Ok(())
    }

    /// Detaches the accept loop onto a background thread and returns
    /// the bound address — the one-call server start for tests, smokes,
    /// and examples.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn spawn(self) -> io::Result<SocketAddr> {
        let addr = self.local_addr()?;
        std::thread::Builder::new()
            .name("rteaal-serve-accept".to_string())
            .spawn(move || {
                let _ = self.serve_forever();
            })?;
        Ok(addr)
    }
}

/// Serves one client connection: a request line in, a response line
/// out, until EOF. Malformed requests get `kind:"error"` responses and
/// the connection stays usable; only I/O failures end the session.
fn handle_client(pool: &ServerPool, stream: TcpStream) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    // This connection's submissions, by pool-global id. `poll`/`result`
    // resolve ids against these handles (one connection per client: a
    // client can only claim results it submitted).
    let mut handles: HashMap<u64, JobHandle> = HashMap::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(&line) {
            Ok(request) => respond(pool, &mut handles, request),
            Err(e) => Response::error(format!("bad request: {e}")),
        };
        let mut out = serde_json::to_string(&response).expect("responses always serialize");
        out.push('\n');
        writer.write_all(out.as_bytes())?;
    }
    Ok(())
}

/// Executes one request against the pool and this connection's handles.
fn respond(pool: &ServerPool, handles: &mut HashMap<u64, JobHandle>, request: Request) -> Response {
    match request.verb {
        Verb::Submit => {
            let Some(job) = request.job else {
                return Response::error("submit needs a `job`");
            };
            let design = job.design.clone();
            let handle = pool.submit_named(design.as_deref(), job.into());
            let id = handle.id();
            handles.insert(id, handle);
            Response::submitted(id)
        }
        Verb::Poll => {
            let Some(id) = request.id else {
                return Response::error("poll needs an `id`");
            };
            let Some(handle) = handles.get(&id) else {
                return Response::error(format!("unknown job id {id} on this connection"));
            };
            match handle.poll() {
                Some(result) => {
                    handles.remove(&id);
                    Response::result(WireResult::from(&result))
                }
                None => Response::pending(id),
            }
        }
        Verb::Result => match request.id {
            Some(id) => {
                let Some(handle) = handles.remove(&id) else {
                    return Response::error(format!("unknown job id {id} on this connection"));
                };
                Response::result(WireResult::from(&handle.wait()))
            }
            // No id: stream this connection's next completion.
            None => {
                let outstanding: Vec<JobHandle> = handles.drain().map(|(_, h)| h).collect();
                let Some((taken, result)) = JobHandle::wait_any(&outstanding) else {
                    return Response::error("no outstanding jobs on this connection");
                };
                for (i, h) in outstanding.into_iter().enumerate() {
                    if i != taken {
                        handles.insert(h.id(), h);
                    }
                }
                Response::result(WireResult::from(&result))
            }
        },
        Verb::Stats => Response::stats(WireStats::from(&pool.stats())),
        Verb::Register => {
            let (Some(design), Some(source), Some(halt)) =
                (request.design, request.source, request.halt)
            else {
                return Response::error("register needs `design`, `source`, and `halt`");
            };
            // Compiling in the connection thread keeps workers serving;
            // the design becomes routable the moment `register` returns.
            // The compiler's own failure modes (including the static
            // verifier's) are typed errors, but a malformed design that
            // trips an assert anywhere in the flow must also come back
            // as a structured refusal instead of tearing the session
            // down, so the whole stage is unwind-guarded.
            let compiled = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Compiler::new(KernelConfig::new(KernelKind::Psu)).compile_str(&source)
            })) {
                Ok(Ok(compiled)) => compiled,
                Ok(Err(e)) => {
                    return Response::error(format!("design `{design}` failed to compile: {e}"))
                }
                Err(panic) => {
                    let what = panic
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| panic.downcast_ref::<&str>().copied())
                        .unwrap_or("unknown panic");
                    return Response::error(format!(
                        "design `{design}` failed to compile: internal error: {what}"
                    ));
                }
            };
            match pool.register(&design, &compiled, &halt) {
                Ok(()) => Response::registered(design),
                Err(e) => Response::error(e.to_string()),
            }
        }
        Verb::Designs => Response::designs(
            pool.design_infos()
                .into_iter()
                .enumerate()
                .map(|(i, info)| WireDesign {
                    name: info.name,
                    default: i == 0,
                    analysis: WireAnalysis::from(&info.analysis),
                })
                .collect(),
        ),
        Verb::Ping => {
            let designs = pool.designs();
            Response::pong(WirePong {
                uptime_ms: pool.uptime().as_millis() as u64,
                designs: designs.len() as u64,
                digest: designs_digest(&designs),
            })
        }
        Verb::Metrics => {
            let snapshot = pool.metrics().snapshot();
            let exposition = snapshot.prometheus();
            Response::metrics(snapshot, exposition)
        }
        Verb::Timeline => {
            let Some(id) = request.id else {
                return Response::error("timeline needs an `id`");
            };
            Response::timeline(id, pool.timeline(id))
        }
    }
}

/// A blocking client for the socket protocol — submit jobs, poll or
/// wait for results, register designs, read server stats. One instance
/// per connection.
///
/// Every exchange returns a typed [`ProtocolError`] on failure: a
/// connection that dies mid-response surfaces as
/// [`ProtocolError::TruncatedLine`] carrying the partial line, a clean
/// close as [`ProtocolError::ConnectionClosed`], and a per-request
/// server-side refusal as [`ProtocolError::Server`] (the only
/// non-fatal kind — the connection stays usable after it).
#[derive(Debug)]
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    /// Connects to a running [`SocketServer`].
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Io`] on connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ProtocolError> {
        let stream = TcpStream::connect(addr)?;
        Ok(ServeClient {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// Bounds how long any single exchange may wait for the server's
    /// response line (`None` = wait forever). A lapsed deadline
    /// surfaces as a fatal [`ProtocolError::Io`] — the router's
    /// hung-host detector.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Io`] if the socket rejects the option.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ProtocolError> {
        // Reader and writer are clones of one socket, so setting the
        // option on either side covers both.
        self.writer.set_read_timeout(timeout)?;
        Ok(())
    }

    /// One request/response round trip.
    fn call(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        let mut line = serde_json::to_string(request).expect("requests always serialize");
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(ProtocolError::ConnectionClosed);
        }
        if !reply.ends_with('\n') {
            // EOF mid-line: the peer died between writing and
            // terminating its response.
            return Err(ProtocolError::TruncatedLine { partial: reply });
        }
        let trimmed = reply.trim_end();
        let response: Response =
            serde_json::from_str(trimmed).map_err(|e| ProtocolError::Malformed {
                line: trimmed.to_string(),
                reason: e.to_string(),
            })?;
        if !response.ok {
            return Err(ProtocolError::Server(
                response.error.unwrap_or_else(|| "server error".to_string()),
            ));
        }
        Ok(response)
    }

    /// Submits a job to the server's default design; returns its
    /// pool-global id.
    ///
    /// # Errors
    ///
    /// Transport faults and server-side errors, as [`ProtocolError`].
    pub fn submit(&mut self, job: &rteaal_sched::Job) -> Result<u64, ProtocolError> {
        self.submit_wire(WireJob::from(job))
    }

    /// Submits a job to a named registered design.
    ///
    /// # Errors
    ///
    /// Transport faults and server-side errors, as [`ProtocolError`].
    /// An unknown design name is *not* an error here — it comes back
    /// through the result as a rejected outcome.
    pub fn submit_to(
        &mut self,
        design: &str,
        job: &rteaal_sched::Job,
    ) -> Result<u64, ProtocolError> {
        self.submit_wire(WireJob::from(job).on_design(design))
    }

    fn submit_wire(&mut self, job: WireJob) -> Result<u64, ProtocolError> {
        let response = self.call(&Request::submit(job))?;
        response
            .id
            .ok_or(ProtocolError::MissingPayload { kind: "submitted" })
    }

    /// Non-blocking result check; `None` while the job is running.
    ///
    /// # Errors
    ///
    /// Transport faults and server-side errors (e.g. an id this
    /// connection never submitted), as [`ProtocolError`].
    pub fn poll(&mut self, id: u64) -> Result<Option<WireResult>, ProtocolError> {
        let response = self.call(&Request::poll(id))?;
        Ok(response.result)
    }

    /// Blocks until the job finishes and returns its result.
    ///
    /// # Errors
    ///
    /// Transport faults and server-side errors, as [`ProtocolError`].
    pub fn result(&mut self, id: u64) -> Result<WireResult, ProtocolError> {
        let response = self.call(&Request::result(Some(id)))?;
        response
            .result
            .ok_or(ProtocolError::MissingPayload { kind: "result" })
    }

    /// Blocks until *any* of this connection's outstanding jobs
    /// finishes and returns it — results stream back in completion
    /// order, not submission order.
    ///
    /// # Errors
    ///
    /// Transport faults, and a server-side error when nothing is
    /// outstanding, as [`ProtocolError`].
    pub fn next_result(&mut self) -> Result<WireResult, ProtocolError> {
        let response = self.call(&Request::result(None))?;
        response
            .result
            .ok_or(ProtocolError::MissingPayload { kind: "result" })
    }

    /// Fetches the pool's counters.
    ///
    /// # Errors
    ///
    /// Transport faults and server-side errors, as [`ProtocolError`].
    pub fn stats(&mut self) -> Result<WireStats, ProtocolError> {
        let response = self.call(&Request::stats())?;
        response
            .stats
            .ok_or(ProtocolError::MissingPayload { kind: "stats" })
    }

    /// Registers a design: the server compiles `source` (FIRRTL text)
    /// under `design`, watching `halt` for per-lane completion.
    ///
    /// # Errors
    ///
    /// Transport faults, compile failures, duplicate names, and unknown
    /// halt signals, as [`ProtocolError`].
    pub fn register(
        &mut self,
        design: &str,
        source: &str,
        halt: &str,
    ) -> Result<(), ProtocolError> {
        self.call(&Request::register(design, source, halt))?;
        Ok(())
    }

    /// Lists the server's registered designs.
    ///
    /// # Errors
    ///
    /// Transport faults and server-side errors, as [`ProtocolError`].
    pub fn designs(&mut self) -> Result<Vec<WireDesign>, ProtocolError> {
        let response = self.call(&Request::designs())?;
        response
            .designs
            .ok_or(ProtocolError::MissingPayload { kind: "designs" })
    }

    /// Liveness probe: the server's uptime and a digest of its design
    /// registry. The cheapest full round trip the protocol offers —
    /// what the [`ShardRouter`](crate::ShardRouter)'s health loop uses
    /// to decide a host is really back.
    ///
    /// # Errors
    ///
    /// Transport faults and server-side errors, as [`ProtocolError`].
    pub fn ping(&mut self) -> Result<WirePong, ProtocolError> {
        let response = self.call(&Request::ping())?;
        response
            .pong
            .ok_or(ProtocolError::MissingPayload { kind: "pong" })
    }

    /// Fetches the server's full metrics snapshot plus its
    /// Prometheus-style text exposition.
    ///
    /// # Errors
    ///
    /// Transport faults and server-side errors, as [`ProtocolError`].
    pub fn metrics(&mut self) -> Result<(MetricsSnapshot, String), ProtocolError> {
        let response = self.call(&Request::metrics())?;
        match (response.metrics, response.exposition) {
            (Some(snapshot), Some(exposition)) => Ok((snapshot, exposition)),
            _ => Err(ProtocolError::MissingPayload { kind: "metrics" }),
        }
    }

    /// Fetches one job's retained lifecycle events, oldest first. An
    /// empty vector means the server no longer retains (or never saw)
    /// events for that id.
    ///
    /// # Errors
    ///
    /// Transport faults and server-side errors, as [`ProtocolError`].
    pub fn timeline(&mut self, id: u64) -> Result<Vec<JobEvent>, ProtocolError> {
        let response = self.call(&Request::timeline(id))?;
        response
            .timeline
            .ok_or(ProtocolError::MissingPayload { kind: "timeline" })
    }
}
