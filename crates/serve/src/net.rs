//! The TCP front end: a listener that speaks the line-delimited-JSON
//! protocol of [`crate::protocol`] over one thread per connection, plus
//! the matching blocking client.
//!
//! The server is deliberately plain `std::net` — the build environment
//! vendors no async runtime, and the pool's workers are already the
//! concurrency that matters; connection threads only parse lines and
//! block on [`JobHandle`]s.

use crate::pool::{JobHandle, ServerPool};
use crate::protocol::{Request, Response, Verb, WireJob, WireResult, WireStats};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// A socket front end over a [`ServerPool`].
#[derive(Debug)]
pub struct SocketServer {
    pool: Arc<ServerPool>,
    listener: TcpListener,
}

impl SocketServer {
    /// Binds a listener (use port 0 to let the OS pick) over a pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(pool: ServerPool, addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(SocketServer {
            pool: Arc::new(pool),
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (tells clients the OS-picked port).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections forever, one handler thread per client.
    /// Accept errors on individual connections are skipped; the loop
    /// only ends (with an error) if the listener itself fails.
    pub fn serve_forever(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            let Ok(stream) = stream else { continue };
            let pool = Arc::clone(&self.pool);
            std::thread::spawn(move || {
                let _ = handle_client(&pool, stream);
            });
        }
        Ok(())
    }

    /// Detaches the accept loop onto a background thread and returns
    /// the bound address — the one-call server start for tests, smokes,
    /// and examples.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn spawn(self) -> io::Result<SocketAddr> {
        let addr = self.local_addr()?;
        std::thread::Builder::new()
            .name("rteaal-serve-accept".to_string())
            .spawn(move || {
                let _ = self.serve_forever();
            })?;
        Ok(addr)
    }
}

/// Serves one client connection: a request line in, a response line
/// out, until EOF. Malformed requests get `kind:"error"` responses and
/// the connection stays usable; only I/O failures end the session.
fn handle_client(pool: &ServerPool, stream: TcpStream) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    // This connection's submissions, by pool-global id. `poll`/`result`
    // resolve ids against these handles (one connection per client: a
    // client can only claim results it submitted).
    let mut handles: HashMap<u64, JobHandle> = HashMap::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(&line) {
            Ok(request) => respond(pool, &mut handles, request),
            Err(e) => Response::error(format!("bad request: {e}")),
        };
        let mut out = serde_json::to_string(&response).expect("responses always serialize");
        out.push('\n');
        writer.write_all(out.as_bytes())?;
    }
    Ok(())
}

/// Executes one request against the pool and this connection's handles.
fn respond(pool: &ServerPool, handles: &mut HashMap<u64, JobHandle>, request: Request) -> Response {
    match request.verb {
        Verb::Submit => {
            let Some(job) = request.job else {
                return Response::error("submit needs a `job`");
            };
            let handle = pool.submit(job.into());
            let id = handle.id();
            handles.insert(id, handle);
            Response::submitted(id)
        }
        Verb::Poll => {
            let Some(id) = request.id else {
                return Response::error("poll needs an `id`");
            };
            let Some(handle) = handles.get(&id) else {
                return Response::error(format!("unknown job id {id} on this connection"));
            };
            match handle.poll() {
                Some(result) => {
                    handles.remove(&id);
                    Response::result(WireResult::from(&result))
                }
                None => Response::pending(id),
            }
        }
        Verb::Result => match request.id {
            Some(id) => {
                let Some(handle) = handles.remove(&id) else {
                    return Response::error(format!("unknown job id {id} on this connection"));
                };
                Response::result(WireResult::from(&handle.wait()))
            }
            // No id: stream this connection's next completion.
            None => {
                let outstanding: Vec<JobHandle> = handles.drain().map(|(_, h)| h).collect();
                let Some((taken, result)) = JobHandle::wait_any(&outstanding) else {
                    return Response::error("no outstanding jobs on this connection");
                };
                for (i, h) in outstanding.into_iter().enumerate() {
                    if i != taken {
                        handles.insert(h.id(), h);
                    }
                }
                Response::result(WireResult::from(&result))
            }
        },
        Verb::Stats => Response::stats(WireStats::from(&pool.stats())),
    }
}

/// A blocking client for the socket protocol — submit jobs, poll or
/// wait for results, read server stats. One instance per connection.
#[derive(Debug)]
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    /// Connects to a running [`SocketServer`].
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(ServeClient {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// One request/response round trip.
    fn call(&mut self, request: &Request) -> io::Result<Response> {
        let mut line = serde_json::to_string(request)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let response: Response = serde_json::from_str(reply.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if !response.ok {
            return Err(io::Error::other(
                response.error.unwrap_or_else(|| "server error".to_string()),
            ));
        }
        Ok(response)
    }

    /// Submits a job; returns its pool-global id.
    ///
    /// # Errors
    ///
    /// I/O failures and server-side errors.
    pub fn submit(&mut self, job: &rteaal_sched::Job) -> io::Result<u64> {
        let response = self.call(&Request::submit(WireJob::from(job)))?;
        response
            .id
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "submitted without an id"))
    }

    /// Non-blocking result check; `None` while the job is running.
    ///
    /// # Errors
    ///
    /// I/O failures and server-side errors (e.g. an id this connection
    /// never submitted).
    pub fn poll(&mut self, id: u64) -> io::Result<Option<WireResult>> {
        let response = self.call(&Request::poll(id))?;
        Ok(response.result)
    }

    /// Blocks until the job finishes and returns its result.
    ///
    /// # Errors
    ///
    /// I/O failures and server-side errors.
    pub fn result(&mut self, id: u64) -> io::Result<WireResult> {
        let response = self.call(&Request::result(Some(id)))?;
        response
            .result
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "result without a payload"))
    }

    /// Blocks until *any* of this connection's outstanding jobs
    /// finishes and returns it — results stream back in completion
    /// order, not submission order.
    ///
    /// # Errors
    ///
    /// I/O failures, and a server-side error when nothing is
    /// outstanding.
    pub fn next_result(&mut self) -> io::Result<WireResult> {
        let response = self.call(&Request::result(None))?;
        response
            .result
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "result without a payload"))
    }

    /// Fetches the pool's counters.
    ///
    /// # Errors
    ///
    /// I/O failures and server-side errors.
    pub fn stats(&mut self) -> io::Result<WireStats> {
        let response = self.call(&Request::stats())?;
        response
            .stats
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "stats without a payload"))
    }
}
