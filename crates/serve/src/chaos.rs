//! Fault injection for the serve protocol: a line-level TCP proxy that
//! sits between a [`ShardRouter`](crate::ShardRouter) (or any
//! [`ServeClient`](crate::ServeClient)) and a real
//! [`SocketServer`](crate::SocketServer), and misbehaves on demand.
//!
//! [`ChaosShard`] understands just enough of the protocol to be cruel
//! at realistic boundaries: it forwards one request line upstream,
//! reads the one response line, and only *then* consults its
//! [`ChaosPlan`] — delaying the response, dropping the connection
//! after it, truncating it mid-line, or dying outright. Because every
//! fault lands at a request/response boundary (or mid-line, which is
//! the interesting EOF case), the chaos tests exercise exactly the
//! failure surface a flaky host or network presents, while the server
//! behind the proxy stays healthy and deterministic.
//!
//! Hosts also *recover*: [`revive`](ChaosShard::revive) brings a dead
//! proxy back (the router's rejoin path needs exactly this), a plan's
//! [`revive_after`](ChaosPlan::revive_after) models a bounded outage
//! window, and [`retarget`](ChaosShard::retarget) points the revived
//! address at a *fresh* upstream — a host that rebooted with empty
//! state, which is what makes registry-replay testable.
//!
//! This is a *test harness*, shipped in the library so the
//! fault-injection proptests, the `tables -- shard` / `tables -- fleet`
//! experiments, and downstream users hardening their own deployments
//! can all share it.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What misfortunes to inject, counted in forwarded responses.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosPlan {
    /// Added latency before each response is forwarded.
    pub response_delay: Duration,
    /// Close the client connection after every N forwarded responses
    /// (the "flaky network" fault: the peer must reconnect and
    /// resubmit).
    pub drop_every: Option<u64>,
    /// Die once N responses have been forwarded in total, across all
    /// connections (the "host crash" fault). Fires exactly once — a
    /// revived host does not re-crash on its next response.
    pub kill_after: Option<u64>,
    /// When dying, emit *half* of the final response line with no
    /// newline first — the mid-line EOF that must surface as
    /// [`ProtocolError::TruncatedLine`](crate::ProtocolError::TruncatedLine).
    pub truncate_on_kill: bool,
    /// The plan-driven down-window: how long after the plan's
    /// [`kill_after`](Self::kill_after) crash the host stays dead
    /// before reviving on its own. `None` = dead until someone calls
    /// [`revive`](ChaosShard::revive).
    pub revive_after: Option<Duration>,
}

/// A chaos proxy for one upstream server. Listens on its own loopback
/// port; point the router at [`addr`](Self::addr) instead of the real
/// server.
///
/// Once killed — by plan or by [`kill`](Self::kill) — the proxy severs
/// every active connection and answers new ones with an immediate
/// close, which is what a crashed host looks like to a client that
/// still resolves its address. [`revive`](Self::revive) flips it back:
/// the same address starts answering again, as a rebooted host would.
#[derive(Debug)]
pub struct ChaosShard {
    addr: SocketAddr,
    upstream: Arc<Mutex<SocketAddr>>,
    killed: Arc<AtomicBool>,
    responses: Arc<AtomicU64>,
}

impl ChaosShard {
    /// Spawns the proxy in front of `upstream`, on an OS-picked
    /// loopback port.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn spawn(upstream: SocketAddr, plan: ChaosPlan) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let upstream = Arc::new(Mutex::new(upstream));
        let killed = Arc::new(AtomicBool::new(false));
        let responses = Arc::new(AtomicU64::new(0));
        let (upstream_l, killed_l, responses_l) = (
            Arc::clone(&upstream),
            Arc::clone(&killed),
            Arc::clone(&responses),
        );
        std::thread::Builder::new()
            .name("rteaal-chaos-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { continue };
                    if killed_l.load(Ordering::Acquire) {
                        // A dead host: accept at the TCP level (the
                        // backlog does that anyway), then slam shut.
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    // Each connection pins the upstream it was accepted
                    // under; a retarget applies to connections made
                    // after it.
                    let target = *upstream_l.lock().expect("upstream lock");
                    let (killed, responses) = (Arc::clone(&killed_l), Arc::clone(&responses_l));
                    std::thread::Builder::new()
                        .name("rteaal-chaos-pump".to_string())
                        .spawn(move || {
                            let _ = pump(stream, target, plan, killed, &responses);
                        })
                        .expect("pump thread spawns");
                }
            })?;
        Ok(ChaosShard {
            addr,
            upstream,
            killed,
            responses,
        })
    }

    /// Where clients should connect (the proxy's own port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Kills the host *now*: every connection breaks at its next
    /// response, and new connections are slammed shut. The mid-corpus
    /// kill switch.
    pub fn kill(&self) {
        self.killed.store(true, Ordering::Release);
    }

    /// Revives a killed host: new connections flow to the upstream
    /// again, from the same address a rebooted host would keep.
    /// Connections severed by the kill stay severed — recovery does
    /// not resurrect sockets.
    pub fn revive(&self) {
        self.killed.store(false, Ordering::Release);
    }

    /// Kills the host now and revives it after `down` — the manual
    /// down-window, for experiments that script an outage mid-corpus
    /// without blocking their own thread.
    pub fn kill_for(&self, down: Duration) {
        self.kill();
        let killed = Arc::clone(&self.killed);
        std::thread::Builder::new()
            .name("rteaal-chaos-revive".to_string())
            .spawn(move || {
                std::thread::sleep(down);
                killed.store(false, Ordering::Release);
            })
            .expect("revive timer spawns");
    }

    /// Points future connections at a different upstream. Combined
    /// with [`revive`](Self::revive), this models the harshest rejoin:
    /// the host came back with a *fresh, empty* server behind it, so
    /// anything the client assumed it remembered (registered designs)
    /// must be replayed.
    pub fn retarget(&self, upstream: SocketAddr) {
        *self.upstream.lock().expect("upstream lock") = upstream;
    }

    /// Whether the host is dead (by plan or by [`kill`](Self::kill)).
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::Acquire)
    }

    /// Responses forwarded so far, across all connections.
    pub fn responses(&self) -> u64 {
        self.responses.load(Ordering::Acquire)
    }
}

/// Forwards request/response lines for one client connection, applying
/// the plan at each response boundary. Returning closes both sockets.
fn pump(
    client: TcpStream,
    upstream: SocketAddr,
    plan: ChaosPlan,
    killed: Arc<AtomicBool>,
    responses: &AtomicU64,
) -> io::Result<()> {
    let up = TcpStream::connect(upstream)?;
    let mut up_writer = up.try_clone()?;
    let mut up_reader = BufReader::new(up);
    let mut client_writer = client.try_clone()?;
    let mut client_reader = BufReader::new(client);
    let mut conn_responses = 0u64;
    loop {
        let mut request = String::new();
        if client_reader.read_line(&mut request)? == 0 {
            return Ok(()); // client went away
        }
        if killed.load(Ordering::Acquire) {
            return Ok(()); // died while idle: drop without answering
        }
        up_writer.write_all(request.as_bytes())?;
        let mut response = String::new();
        if up_reader.read_line(&mut response)? == 0 {
            return Ok(()); // upstream itself went away
        }
        if !plan.response_delay.is_zero() {
            std::thread::sleep(plan.response_delay);
        }
        let total = responses.fetch_add(1, Ordering::AcqRel) + 1;
        // `==` makes the plan kill fire exactly once: exactly one pump
        // observes the crossing count, and a revived host keeps
        // counting past it without re-crashing.
        let plan_kill = plan.kill_after.is_some_and(|after| total == after);
        let killing = killed.load(Ordering::Acquire) || plan_kill;
        if killing {
            killed.store(true, Ordering::Release);
            if plan_kill {
                if let Some(down) = plan.revive_after {
                    // The plan-driven down-window: dead for `down`,
                    // then back as if rebooted.
                    let killed = Arc::clone(&killed);
                    std::thread::Builder::new()
                        .name("rteaal-chaos-revive".to_string())
                        .spawn(move || {
                            std::thread::sleep(down);
                            killed.store(false, Ordering::Release);
                        })
                        .expect("revive timer spawns");
                }
            }
            if plan.truncate_on_kill {
                // Die mid-line: half the response, no newline, gone.
                let cut = response.trim_end().len() / 2;
                client_writer.write_all(&response.as_bytes()[..cut])?;
                client_writer.flush()?;
            }
            return Ok(());
        }
        client_writer.write_all(response.as_bytes())?;
        conn_responses += 1;
        if plan
            .drop_every
            .is_some_and(|every| conn_responses.is_multiple_of(every))
        {
            return Ok(()); // flaky network: clean close after the reply
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    /// A minimal line server: echoes each line back, uppercased.
    fn echo_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                std::thread::spawn(move || {
                    let mut writer = stream.try_clone().unwrap();
                    let reader = BufReader::new(stream);
                    for line in reader.lines() {
                        let Ok(line) = line else { return };
                        let _ = writer.write_all(line.to_uppercase().as_bytes());
                        let _ = writer.write_all(b"\n");
                    }
                });
            }
        });
        addr
    }

    fn call(stream: &mut TcpStream, line: &str) -> io::Result<String> {
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut reply = String::new();
        reader.read_line(&mut reply)?;
        Ok(reply)
    }

    #[test]
    fn healthy_proxy_is_transparent() {
        let chaos = ChaosShard::spawn(echo_server(), ChaosPlan::default()).unwrap();
        let mut conn = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut conn, "hello").unwrap(), "HELLO\n");
        assert_eq!(call(&mut conn, "again").unwrap(), "AGAIN\n");
        assert_eq!(chaos.responses(), 2);
        assert!(!chaos.is_killed());
    }

    #[test]
    fn drop_every_closes_the_connection_after_the_reply() {
        let plan = ChaosPlan {
            drop_every: Some(2),
            ..ChaosPlan::default()
        };
        let chaos = ChaosShard::spawn(echo_server(), plan).unwrap();
        let mut conn = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut conn, "one").unwrap(), "ONE\n");
        assert_eq!(call(&mut conn, "two").unwrap(), "TWO\n");
        // Third exchange: the proxy closed after the second reply (the
        // write may also fail outright with a broken pipe).
        assert_eq!(call(&mut conn, "three").unwrap_or_default(), "");
        // Reconnecting works: a drop is not a death.
        let mut fresh = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut fresh, "back").unwrap(), "BACK\n");
    }

    #[test]
    fn kill_after_truncates_mid_line_and_stays_dead() {
        let plan = ChaosPlan {
            kill_after: Some(2),
            truncate_on_kill: true,
            ..ChaosPlan::default()
        };
        let chaos = ChaosShard::spawn(echo_server(), plan).unwrap();
        let mut conn = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut conn, "first").unwrap(), "FIRST\n");
        // The killing response arrives cut in half, newline never seen.
        conn.write_all(b"seconds\n").unwrap();
        let mut tail = String::new();
        conn.read_to_string(&mut tail).unwrap();
        assert_eq!(tail, "SEC", "half of `SECONDS`, no newline");
        assert!(chaos.is_killed());
        // New connections are slammed shut: a dead host.
        let mut fresh = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut fresh, "ping").unwrap_or_default(), "");
    }

    #[test]
    fn manual_kill_breaks_idle_connections_at_their_next_exchange() {
        let chaos = ChaosShard::spawn(echo_server(), ChaosPlan::default()).unwrap();
        let mut conn = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut conn, "pre").unwrap(), "PRE\n");
        chaos.kill();
        assert_eq!(call(&mut conn, "post").unwrap_or_default(), "");
    }

    #[test]
    fn revive_brings_a_killed_host_back_without_recrashing() {
        let plan = ChaosPlan {
            kill_after: Some(1),
            ..ChaosPlan::default()
        };
        let chaos = ChaosShard::spawn(echo_server(), plan).unwrap();
        let mut conn = TcpStream::connect(chaos.addr()).unwrap();
        // First response trips the plan kill (no truncation: the reply
        // is simply never delivered).
        assert_eq!(call(&mut conn, "boom").unwrap_or_default(), "");
        assert!(chaos.is_killed());
        chaos.revive();
        assert!(!chaos.is_killed());
        // Back from the dead — and the once-fired plan kill does not
        // re-trigger even though the total is now past `kill_after`.
        let mut fresh = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut fresh, "alive").unwrap(), "ALIVE\n");
        assert_eq!(call(&mut fresh, "still").unwrap(), "STILL\n");
        assert!(!chaos.is_killed());
    }

    #[test]
    fn kill_for_revives_after_the_down_window() {
        let chaos = ChaosShard::spawn(echo_server(), ChaosPlan::default()).unwrap();
        let mut conn = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut conn, "pre").unwrap(), "PRE\n");
        chaos.kill_for(Duration::from_millis(50));
        assert!(chaos.is_killed());
        assert_eq!(call(&mut conn, "mid").unwrap_or_default(), "");
        // Wait out the window (generously, for slow CI).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while chaos.is_killed() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(!chaos.is_killed(), "down-window never ended");
        let mut fresh = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut fresh, "back").unwrap(), "BACK\n");
    }

    #[test]
    fn retarget_points_new_connections_at_a_fresh_upstream() {
        let chaos = ChaosShard::spawn(echo_server(), ChaosPlan::default()).unwrap();
        let mut conn = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut conn, "old").unwrap(), "OLD\n");
        // Reverse-echo upstream: proves the swap actually took.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let fresh_addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                std::thread::spawn(move || {
                    let mut writer = stream.try_clone().unwrap();
                    let reader = BufReader::new(stream);
                    for line in reader.lines() {
                        let Ok(line) = line else { return };
                        let rev: String = line.chars().rev().collect();
                        let _ = writer.write_all(rev.as_bytes());
                        let _ = writer.write_all(b"\n");
                    }
                });
            }
        });
        chaos.retarget(fresh_addr);
        // The old connection still pumps to the old upstream…
        assert_eq!(call(&mut conn, "still").unwrap(), "STILL\n");
        // …but new connections reach the fresh one.
        let mut fresh = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut fresh, "abc").unwrap(), "cba\n");
    }
}
