//! Fault injection for the serve protocol: a line-level TCP proxy that
//! sits between a [`ShardRouter`](crate::ShardRouter) (or any
//! [`ServeClient`](crate::ServeClient)) and a real
//! [`SocketServer`](crate::SocketServer), and misbehaves on demand.
//!
//! [`ChaosShard`] understands just enough of the protocol to be cruel
//! at realistic boundaries: it forwards one request line upstream,
//! reads the one response line, and only *then* consults its
//! [`ChaosPlan`] — delaying the response, dropping the connection
//! after it, truncating it mid-line, or dying outright. Because every
//! fault lands at a request/response boundary (or mid-line, which is
//! the interesting EOF case), the chaos tests exercise exactly the
//! failure surface a flaky host or network presents, while the server
//! behind the proxy stays healthy and deterministic.
//!
//! This is a *test harness*, shipped in the library so the
//! fault-injection proptests, the `tables -- shard` experiment, and
//! downstream users hardening their own deployments can all share it.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What misfortunes to inject, counted in forwarded responses.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosPlan {
    /// Added latency before each response is forwarded.
    pub response_delay: Duration,
    /// Close the client connection after every N forwarded responses
    /// (the "flaky network" fault: the peer must reconnect and
    /// resubmit).
    pub drop_every: Option<u64>,
    /// Die permanently once N responses have been forwarded in total,
    /// across all connections (the "host crash" fault).
    pub kill_after: Option<u64>,
    /// When dying, emit *half* of the final response line with no
    /// newline first — the mid-line EOF that must surface as
    /// [`ProtocolError::TruncatedLine`](crate::ProtocolError::TruncatedLine).
    pub truncate_on_kill: bool,
}

/// A chaos proxy for one upstream server. Listens on its own loopback
/// port; point the router at [`addr`](Self::addr) instead of the real
/// server.
///
/// Once killed — by plan or by [`kill`](Self::kill) — the proxy severs
/// every active connection and answers new ones with an immediate
/// close, which is what a crashed host looks like to a client that
/// still resolves its address.
#[derive(Debug)]
pub struct ChaosShard {
    addr: SocketAddr,
    killed: Arc<AtomicBool>,
    responses: Arc<AtomicU64>,
}

impl ChaosShard {
    /// Spawns the proxy in front of `upstream`, on an OS-picked
    /// loopback port.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn spawn(upstream: SocketAddr, plan: ChaosPlan) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let killed = Arc::new(AtomicBool::new(false));
        let responses = Arc::new(AtomicU64::new(0));
        let (killed_l, responses_l) = (Arc::clone(&killed), Arc::clone(&responses));
        std::thread::Builder::new()
            .name("rteaal-chaos-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { continue };
                    if killed_l.load(Ordering::Acquire) {
                        // A dead host: accept at the TCP level (the
                        // backlog does that anyway), then slam shut.
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    let (killed, responses) = (Arc::clone(&killed_l), Arc::clone(&responses_l));
                    std::thread::Builder::new()
                        .name("rteaal-chaos-pump".to_string())
                        .spawn(move || {
                            let _ = pump(stream, upstream, plan, &killed, &responses);
                        })
                        .expect("pump thread spawns");
                }
            })?;
        Ok(ChaosShard {
            addr,
            killed,
            responses,
        })
    }

    /// Where clients should connect (the proxy's own port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Kills the host *now*: every connection breaks at its next
    /// response, and new connections are slammed shut. The mid-corpus
    /// kill switch.
    pub fn kill(&self) {
        self.killed.store(true, Ordering::Release);
    }

    /// Whether the host is dead (by plan or by [`kill`](Self::kill)).
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::Acquire)
    }

    /// Responses forwarded so far, across all connections.
    pub fn responses(&self) -> u64 {
        self.responses.load(Ordering::Acquire)
    }
}

/// Forwards request/response lines for one client connection, applying
/// the plan at each response boundary. Returning closes both sockets.
fn pump(
    client: TcpStream,
    upstream: SocketAddr,
    plan: ChaosPlan,
    killed: &AtomicBool,
    responses: &AtomicU64,
) -> io::Result<()> {
    let up = TcpStream::connect(upstream)?;
    let mut up_writer = up.try_clone()?;
    let mut up_reader = BufReader::new(up);
    let mut client_writer = client.try_clone()?;
    let mut client_reader = BufReader::new(client);
    let mut conn_responses = 0u64;
    loop {
        let mut request = String::new();
        if client_reader.read_line(&mut request)? == 0 {
            return Ok(()); // client went away
        }
        if killed.load(Ordering::Acquire) {
            return Ok(()); // died while idle: drop without answering
        }
        up_writer.write_all(request.as_bytes())?;
        let mut response = String::new();
        if up_reader.read_line(&mut response)? == 0 {
            return Ok(()); // upstream itself went away
        }
        if !plan.response_delay.is_zero() {
            std::thread::sleep(plan.response_delay);
        }
        let total = responses.fetch_add(1, Ordering::AcqRel) + 1;
        let killing =
            killed.load(Ordering::Acquire) || plan.kill_after.is_some_and(|after| total >= after);
        if killing {
            killed.store(true, Ordering::Release);
            if plan.truncate_on_kill {
                // Die mid-line: half the response, no newline, gone.
                let cut = response.trim_end().len() / 2;
                client_writer.write_all(&response.as_bytes()[..cut])?;
                client_writer.flush()?;
            }
            return Ok(());
        }
        client_writer.write_all(response.as_bytes())?;
        conn_responses += 1;
        if plan
            .drop_every
            .is_some_and(|every| conn_responses.is_multiple_of(every))
        {
            return Ok(()); // flaky network: clean close after the reply
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    /// A minimal line server: echoes each line back, uppercased.
    fn echo_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                std::thread::spawn(move || {
                    let mut writer = stream.try_clone().unwrap();
                    let reader = BufReader::new(stream);
                    for line in reader.lines() {
                        let Ok(line) = line else { return };
                        let _ = writer.write_all(line.to_uppercase().as_bytes());
                        let _ = writer.write_all(b"\n");
                    }
                });
            }
        });
        addr
    }

    fn call(stream: &mut TcpStream, line: &str) -> io::Result<String> {
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut reply = String::new();
        reader.read_line(&mut reply)?;
        Ok(reply)
    }

    #[test]
    fn healthy_proxy_is_transparent() {
        let chaos = ChaosShard::spawn(echo_server(), ChaosPlan::default()).unwrap();
        let mut conn = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut conn, "hello").unwrap(), "HELLO\n");
        assert_eq!(call(&mut conn, "again").unwrap(), "AGAIN\n");
        assert_eq!(chaos.responses(), 2);
        assert!(!chaos.is_killed());
    }

    #[test]
    fn drop_every_closes_the_connection_after_the_reply() {
        let plan = ChaosPlan {
            drop_every: Some(2),
            ..ChaosPlan::default()
        };
        let chaos = ChaosShard::spawn(echo_server(), plan).unwrap();
        let mut conn = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut conn, "one").unwrap(), "ONE\n");
        assert_eq!(call(&mut conn, "two").unwrap(), "TWO\n");
        // Third exchange: the proxy closed after the second reply (the
        // write may also fail outright with a broken pipe).
        assert_eq!(call(&mut conn, "three").unwrap_or_default(), "");
        // Reconnecting works: a drop is not a death.
        let mut fresh = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut fresh, "back").unwrap(), "BACK\n");
    }

    #[test]
    fn kill_after_truncates_mid_line_and_stays_dead() {
        let plan = ChaosPlan {
            kill_after: Some(2),
            truncate_on_kill: true,
            ..ChaosPlan::default()
        };
        let chaos = ChaosShard::spawn(echo_server(), plan).unwrap();
        let mut conn = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut conn, "first").unwrap(), "FIRST\n");
        // The killing response arrives cut in half, newline never seen.
        conn.write_all(b"seconds\n").unwrap();
        let mut tail = String::new();
        conn.read_to_string(&mut tail).unwrap();
        assert_eq!(tail, "SEC", "half of `SECONDS`, no newline");
        assert!(chaos.is_killed());
        // New connections are slammed shut: a dead host.
        let mut fresh = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut fresh, "ping").unwrap_or_default(), "");
    }

    #[test]
    fn manual_kill_breaks_idle_connections_at_their_next_exchange() {
        let chaos = ChaosShard::spawn(echo_server(), ChaosPlan::default()).unwrap();
        let mut conn = TcpStream::connect(chaos.addr()).unwrap();
        assert_eq!(call(&mut conn, "pre").unwrap(), "PRE\n");
        chaos.kill();
        assert_eq!(call(&mut conn, "post").unwrap_or_default(), "");
    }
}
