//! The line-delimited-JSON wire protocol of the socket front end.
//!
//! One request per line, one response per line, one connection per
//! client. Nine verbs:
//!
//! | verb       | request fields | response |
//! |------------|----------------|----------|
//! | `submit`   | `job`          | `{"ok":true,"kind":"submitted","id":N}` |
//! | `poll`     | `id`           | `kind:"result"` if finished, else `kind:"pending"` |
//! | `result`   | `id` (optional)| blocks; with no `id`, the *next* of this connection's jobs to finish |
//! | `stats`    | —              | `kind:"stats"` with pool counters |
//! | `register` | `design`, `source`, `halt` | compiles the FIRRTL `source` server-side and adds it to the design registry |
//! | `designs`  | —              | `kind:"designs"` listing every registered design |
//! | `ping`     | —              | `kind:"pong"` with server uptime and a digest of the design registry — the health probe |
//! | `metrics`  | —              | `kind:"metrics"`: the full registry snapshot (counters, gauges, histograms) plus a Prometheus-style text exposition |
//! | `timeline` | `id`           | `kind:"timeline"`: one job's retained lifecycle events (submitted → ... → delivered) |
//!
//! A submitted job may name the design it runs on (`"job":{...,
//! "design":"sha3"}`); with no `design` field it runs on the server's
//! default design — the one the pool was constructed over.
//!
//! Example session (client lines prefixed `>`):
//!
//! ```text
//! > {"verb":"submit","job":{"name":"sum-5","budget":27,"state_pokes":[{"name":"x15","value":5}],"probes":["a0"]}}
//! {"ok":true,"kind":"submitted","id":0}
//! > {"verb":"result","id":0}
//! {"ok":true,"kind":"result","id":0,"result":{"id":0,"name":"sum-5","outcome":"completed",...,"outputs":[{"name":"a0","value":15}]}}
//! ```
//!
//! Envelope (de)serialization is hand-written against the vendored
//! serde's [`Content`] tree so optional fields may simply be omitted —
//! a hand-typed `{"verb":"stats"}` is a valid request; inner payload
//! structs use the derive.

use rteaal_sched::{Job, JobOutcome, JobResult};
use rteaal_telemetry::{JobEvent, MetricsSnapshot};
use serde::{Content, Deserialize, Serialize};

use crate::pool::ServeStats;

/// What a request asks the server to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Enqueue a job; responds immediately with its id.
    Submit,
    /// Non-blocking result check for an id.
    Poll,
    /// Blocking result fetch (by id, or the next to finish).
    Result,
    /// Pool counters.
    Stats,
    /// Compile a FIRRTL source and add it to the design registry.
    Register,
    /// List the registered designs.
    Designs,
    /// Liveness probe: uptime plus a digest of the design registry.
    Ping,
    /// Full metrics-registry snapshot plus Prometheus text exposition.
    Metrics,
    /// One job's retained lifecycle event timeline.
    Timeline,
}

impl Verb {
    fn as_str(self) -> &'static str {
        match self {
            Verb::Submit => "submit",
            Verb::Poll => "poll",
            Verb::Result => "result",
            Verb::Stats => "stats",
            Verb::Register => "register",
            Verb::Designs => "designs",
            Verb::Ping => "ping",
            Verb::Metrics => "metrics",
            Verb::Timeline => "timeline",
        }
    }
}

impl Serialize for Verb {
    fn to_content(&self) -> Content {
        Content::Str(self.as_str().to_string())
    }
}

impl Deserialize for Verb {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        match content {
            Content::Str(s) => match s.as_str() {
                "submit" => Ok(Verb::Submit),
                "poll" => Ok(Verb::Poll),
                "result" => Ok(Verb::Result),
                "stats" => Ok(Verb::Stats),
                "register" => Ok(Verb::Register),
                "designs" => Ok(Verb::Designs),
                "ping" => Ok(Verb::Ping),
                "metrics" => Ok(Verb::Metrics),
                "timeline" => Ok(Verb::Timeline),
                other => Err(serde::Error(format!("unknown verb `{other}`"))),
            },
            other => Err(serde::Error::expected("verb string", other)),
        }
    }
}

/// A named 64-bit value — input bindings, state pokes, and harvested
/// outputs all cross the wire in this shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireBinding {
    /// Signal name.
    pub name: String,
    /// Bound or harvested value.
    pub value: u64,
}

/// A job as submitted over the wire (mirrors [`Job`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct WireJob {
    /// Human-readable tag.
    pub name: String,
    /// Cycle budget (clamped by the server's `max_budget`).
    pub budget: u64,
    /// Held input bindings.
    pub inputs: Vec<WireBinding>,
    /// Admission-time architectural state pokes.
    pub state_pokes: Vec<WireBinding>,
    /// Signals to harvest at completion.
    pub probes: Vec<String>,
    /// Registered design to run on (`None` = the server's default).
    pub design: Option<String>,
}

// Hand-written so hand-typed submissions may omit the empty lists and
// the design name.
impl Deserialize for WireJob {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        let req = |field: &str| {
            content
                .field(field)
                .ok_or_else(|| serde::Error(format!("job is missing field `{field}`")))
        };
        let opt_list = |field: &str| match content.field(field) {
            Some(c) => Deserialize::from_content(c),
            None => Ok(Vec::new()),
        };
        Ok(WireJob {
            name: Deserialize::from_content(req("name")?)?,
            budget: Deserialize::from_content(req("budget")?)?,
            inputs: opt_list("inputs")?,
            state_pokes: opt_list("state_pokes")?,
            probes: match content.field("probes") {
                Some(c) => Deserialize::from_content(c)?,
                None => Vec::new(),
            },
            design: opt_field(content, "design")?,
        })
    }
}

fn bindings(pairs: &[(String, u64)]) -> Vec<WireBinding> {
    pairs
        .iter()
        .map(|(name, value)| WireBinding {
            name: name.clone(),
            value: *value,
        })
        .collect()
}

impl From<&Job> for WireJob {
    fn from(job: &Job) -> Self {
        WireJob {
            name: job.name.clone(),
            budget: job.budget,
            inputs: bindings(&job.inputs),
            state_pokes: bindings(&job.state_pokes),
            probes: job.probes.clone(),
            design: None,
        }
    }
}

impl WireJob {
    /// Targets a registered design by name (builder style).
    #[must_use]
    pub fn on_design(mut self, design: impl Into<String>) -> Self {
        self.design = Some(design.into());
        self
    }
}

impl From<WireJob> for Job {
    fn from(w: WireJob) -> Self {
        let mut job = Job::new(w.name, w.budget);
        job.inputs = w.inputs.into_iter().map(|b| (b.name, b.value)).collect();
        job.state_pokes = w
            .state_pokes
            .into_iter()
            .map(|b| (b.name, b.value))
            .collect();
        job.probes = w.probes;
        job
    }
}

/// A finished job as reported over the wire (mirrors [`JobResult`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireResult {
    /// Pool-global job id.
    pub id: u64,
    /// The job's tag.
    pub name: String,
    /// `"completed"`, `"evicted"`, or `"rejected"`.
    pub outcome: String,
    /// Rejection reason (`null` otherwise).
    pub error: Option<String>,
    /// Harvested outputs in probe order.
    pub outputs: Vec<WireBinding>,
    /// Local cycles from admission to halt/eviction.
    pub cycles: u64,
    /// Global engine cycle at admission.
    pub admitted_at: u64,
    /// Global engine cycle at halt/eviction/rejection.
    pub finished_at: u64,
}

impl WireResult {
    /// Whether the halt condition fired within budget.
    pub fn completed(&self) -> bool {
        self.outcome == "completed"
    }

    /// The harvested value of one probe, if present.
    pub fn output(&self, name: &str) -> Option<u64> {
        self.outputs
            .iter()
            .find(|b| b.name == name)
            .map(|b| b.value)
    }
}

impl From<&JobResult> for WireResult {
    fn from(r: &JobResult) -> Self {
        WireResult {
            id: r.id.0,
            name: r.name.clone(),
            outcome: match r.outcome {
                JobOutcome::Completed => "completed",
                JobOutcome::Evicted => "evicted",
                JobOutcome::Rejected => "rejected",
            }
            .to_string(),
            error: r.error.clone(),
            outputs: bindings(&r.outputs),
            cycles: r.cycles,
            admitted_at: r.admitted_at,
            finished_at: r.finished_at,
        }
    }
}

/// One registry entry as reported by the `designs` verb.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireDesign {
    /// Registered design name.
    pub name: String,
    /// Whether this is the server's default design (the one jobs with
    /// no `design` field run on).
    pub default: bool,
    /// The static plan verifier's statistics for the design.
    pub analysis: WireAnalysis,
}

/// The static verifier's per-design statistics as reported by the
/// `designs` verb (a flat wire projection of
/// [`rteaal_core::AnalysisStats`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WireAnalysis {
    /// Scheduled operations.
    pub ops: u64,
    /// Schedule layers.
    pub layers: u64,
    /// `LI` slots.
    pub slots: u64,
    /// Registers (commits).
    pub registers: u64,
    /// Ops whose result reaches no output, probe, or commit.
    pub dead_ops: u64,
    /// Ops constant-propagation proves never toggle.
    pub never_toggling: u64,
    /// Warn-level diagnostics the verifier reported at registration.
    pub warnings: u64,
    /// Fan-in-weighted static activity estimate, summed over layers.
    pub activity: f64,
}

impl From<&rteaal_core::AnalysisStats> for WireAnalysis {
    fn from(s: &rteaal_core::AnalysisStats) -> Self {
        WireAnalysis {
            ops: s.ops as u64,
            layers: s.layers as u64,
            slots: s.slots as u64,
            registers: s.registers as u64,
            dead_ops: s.dead_ops as u64,
            never_toggling: s.never_toggling as u64,
            warnings: s.warnings as u64,
            activity: s.total_activity,
        }
    }
}

/// Pool counters as reported by the `stats` verb.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireStats {
    /// Worker threads.
    pub workers: u64,
    /// Lanes per worker.
    pub lanes: u64,
    /// Registered designs.
    pub designs: u64,
    /// Jobs submitted through the pool.
    pub submitted: u64,
    /// Engine cycles stepped, all workers.
    pub cycles: u64,
    /// Occupied-lane cycles, all workers.
    pub busy_lane_cycles: u64,
    /// Jobs admitted into lanes.
    pub admitted: u64,
    /// Jobs completed within budget.
    pub completed: u64,
    /// Jobs evicted at budget.
    pub evicted: u64,
    /// Jobs rejected at validation.
    pub rejected: u64,
    /// Occupied-lane cycles over total lane cycles.
    pub utilization: f64,
    /// Milliseconds since the server's pool was constructed.
    pub uptime_ms: u64,
    /// Jobs sitting in scheduler queues, not yet admitted to a lane.
    pub queue_depth: u64,
}

impl From<&ServeStats> for WireStats {
    fn from(s: &ServeStats) -> Self {
        WireStats {
            workers: s.workers as u64,
            lanes: s.lanes as u64,
            designs: s.designs as u64,
            submitted: s.submitted,
            cycles: s.merged.cycles,
            busy_lane_cycles: s.merged.busy_lane_cycles,
            admitted: s.merged.admitted as u64,
            completed: s.merged.completed as u64,
            evicted: s.merged.evicted as u64,
            rejected: s.merged.rejected as u64,
            utilization: s.utilization(),
            uptime_ms: s.uptime_ms,
            queue_depth: s.queue_depth as u64,
        }
    }
}

/// The `ping` verb's payload: enough for a router's health probe to
/// decide whether a host that answers is *the fleet member it expects*
/// — a freshly restarted process shows a small `uptime_ms`, and a
/// registry digest mismatch tells the prober its designs still need to
/// be replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WirePong {
    /// Milliseconds since the server's pool was constructed.
    pub uptime_ms: u64,
    /// Registered design count.
    pub designs: u64,
    /// Order-sensitive digest of the registry names
    /// (see [`designs_digest`]).
    pub digest: u64,
}

/// Digests a design-name list into one order-sensitive `u64`: each name
/// is FNV-1a-hashed, then folded through the same `splitmix64`
/// finalizer the [`HashRing`](crate::HashRing) uses. Client and server
/// compute it identically, so a rejoining shard's registry can be
/// compared without shipping the full listing.
pub fn designs_digest(names: &[String]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for name in names {
        let mut h = 0x100_0000_01b3u64;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        acc = crate::shard::mix64(acc ^ h);
    }
    acc
}

/// One client request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// What to do.
    pub verb: Verb,
    /// The job to submit (`submit` only).
    pub job: Option<WireJob>,
    /// The job id to check (`poll`; optional for `result`).
    pub id: Option<u64>,
    /// The design name to register (`register` only).
    pub design: Option<String>,
    /// The FIRRTL source to compile (`register` only).
    pub source: Option<String>,
    /// The registered design's halt signal (`register` only).
    pub halt: Option<String>,
}

impl Request {
    fn base(verb: Verb) -> Self {
        Request {
            verb,
            job: None,
            id: None,
            design: None,
            source: None,
            halt: None,
        }
    }

    /// A `submit` request.
    pub fn submit(job: WireJob) -> Self {
        Request {
            job: Some(job),
            ..Self::base(Verb::Submit)
        }
    }

    /// A `poll` request.
    pub fn poll(id: u64) -> Self {
        Request {
            id: Some(id),
            ..Self::base(Verb::Poll)
        }
    }

    /// A blocking `result` request (`None` = next job to finish).
    pub fn result(id: Option<u64>) -> Self {
        Request {
            id,
            ..Self::base(Verb::Result)
        }
    }

    /// A `stats` request.
    pub fn stats() -> Self {
        Self::base(Verb::Stats)
    }

    /// A `register` request: compile `source` server-side under `design`,
    /// watching `halt` for per-lane completion.
    pub fn register(
        design: impl Into<String>,
        source: impl Into<String>,
        halt: impl Into<String>,
    ) -> Self {
        Request {
            design: Some(design.into()),
            source: Some(source.into()),
            halt: Some(halt.into()),
            ..Self::base(Verb::Register)
        }
    }

    /// A `designs` request.
    pub fn designs() -> Self {
        Self::base(Verb::Designs)
    }

    /// A `ping` request.
    pub fn ping() -> Self {
        Self::base(Verb::Ping)
    }

    /// A `metrics` request.
    pub fn metrics() -> Self {
        Self::base(Verb::Metrics)
    }

    /// A `timeline` request for one job's lifecycle events.
    pub fn timeline(id: u64) -> Self {
        Request {
            id: Some(id),
            ..Self::base(Verb::Timeline)
        }
    }
}

/// Appends `(key, value)` if the value is present.
fn push_opt<T: Serialize>(entries: &mut Vec<(String, Content)>, key: &str, value: &Option<T>) {
    if let Some(v) = value {
        entries.push((key.to_string(), v.to_content()));
    }
}

/// Reads an optional field: absent and explicit `null` both mean
/// `None` (the mirror of [`push_opt`], which omits absent fields).
fn opt_field<T: Deserialize>(content: &Content, field: &str) -> Result<Option<T>, serde::Error> {
    match content.field(field) {
        None | Some(Content::Null) => Ok(None),
        Some(c) => T::from_content(c).map(Some),
    }
}

impl Serialize for Request {
    fn to_content(&self) -> Content {
        let mut entries = vec![("verb".to_string(), self.verb.to_content())];
        push_opt(&mut entries, "job", &self.job);
        push_opt(&mut entries, "id", &self.id);
        push_opt(&mut entries, "design", &self.design);
        push_opt(&mut entries, "source", &self.source);
        push_opt(&mut entries, "halt", &self.halt);
        Content::Map(entries)
    }
}

impl Deserialize for Request {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        let verb = Verb::from_content(
            content
                .field("verb")
                .ok_or_else(|| serde::Error("request is missing `verb`".to_string()))?,
        )?;
        Ok(Request {
            verb,
            job: opt_field(content, "job")?,
            id: opt_field(content, "id")?,
            design: opt_field(content, "design")?,
            source: opt_field(content, "source")?,
            halt: opt_field(content, "halt")?,
        })
    }
}

/// One server response line.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// `false` only for `kind:"error"`.
    pub ok: bool,
    /// `submitted`, `pending`, `result`, `stats`, `registered`,
    /// `designs`, `pong`, `metrics`, `timeline`, or `error`.
    pub kind: String,
    /// The id the response refers to (submit/poll/result kinds).
    pub id: Option<u64>,
    /// The finished job (`kind:"result"`).
    pub result: Option<WireResult>,
    /// Pool counters (`kind:"stats"`).
    pub stats: Option<WireStats>,
    /// Liveness payload (`kind:"pong"`).
    pub pong: Option<WirePong>,
    /// The design a `register` added (`kind:"registered"`).
    pub design: Option<String>,
    /// The registry listing (`kind:"designs"`).
    pub designs: Option<Vec<WireDesign>>,
    /// The full metrics-registry snapshot (`kind:"metrics"`).
    pub metrics: Option<MetricsSnapshot>,
    /// Prometheus-style text exposition of the same snapshot
    /// (`kind:"metrics"`).
    pub exposition: Option<String>,
    /// One job's lifecycle events, oldest first (`kind:"timeline"`).
    pub timeline: Option<Vec<JobEvent>>,
    /// What went wrong (`kind:"error"`).
    pub error: Option<String>,
}

impl Response {
    fn base(ok: bool, kind: &str) -> Self {
        Response {
            ok,
            kind: kind.to_string(),
            id: None,
            result: None,
            stats: None,
            pong: None,
            design: None,
            designs: None,
            metrics: None,
            exposition: None,
            timeline: None,
            error: None,
        }
    }

    /// Acknowledges a submission.
    pub fn submitted(id: u64) -> Self {
        Response {
            id: Some(id),
            ..Self::base(true, "submitted")
        }
    }

    /// A poll on a still-running job.
    pub fn pending(id: u64) -> Self {
        Response {
            id: Some(id),
            ..Self::base(true, "pending")
        }
    }

    /// Delivers a finished job.
    pub fn result(r: WireResult) -> Self {
        Response {
            id: Some(r.id),
            result: Some(r),
            ..Self::base(true, "result")
        }
    }

    /// Delivers pool counters.
    pub fn stats(s: WireStats) -> Self {
        Response {
            stats: Some(s),
            ..Self::base(true, "stats")
        }
    }

    /// Acknowledges a design registration.
    pub fn registered(design: impl Into<String>) -> Self {
        Response {
            design: Some(design.into()),
            ..Self::base(true, "registered")
        }
    }

    /// Delivers the design registry listing.
    pub fn designs(designs: Vec<WireDesign>) -> Self {
        Response {
            designs: Some(designs),
            ..Self::base(true, "designs")
        }
    }

    /// Answers a liveness probe.
    pub fn pong(pong: WirePong) -> Self {
        Response {
            pong: Some(pong),
            ..Self::base(true, "pong")
        }
    }

    /// Delivers a metrics snapshot plus its Prometheus rendering.
    pub fn metrics(snapshot: MetricsSnapshot, exposition: impl Into<String>) -> Self {
        Response {
            metrics: Some(snapshot),
            exposition: Some(exposition.into()),
            ..Self::base(true, "metrics")
        }
    }

    /// Delivers one job's retained lifecycle events.
    pub fn timeline(id: u64, events: Vec<JobEvent>) -> Self {
        Response {
            id: Some(id),
            timeline: Some(events),
            ..Self::base(true, "timeline")
        }
    }

    /// Reports a per-request failure (the connection stays usable).
    pub fn error(message: impl Into<String>) -> Self {
        Response {
            error: Some(message.into()),
            ..Self::base(false, "error")
        }
    }
}

impl Serialize for Response {
    fn to_content(&self) -> Content {
        let mut entries = vec![
            ("ok".to_string(), self.ok.to_content()),
            ("kind".to_string(), self.kind.to_content()),
        ];
        push_opt(&mut entries, "id", &self.id);
        push_opt(&mut entries, "result", &self.result);
        push_opt(&mut entries, "stats", &self.stats);
        push_opt(&mut entries, "pong", &self.pong);
        push_opt(&mut entries, "design", &self.design);
        push_opt(&mut entries, "designs", &self.designs);
        push_opt(&mut entries, "metrics", &self.metrics);
        push_opt(&mut entries, "exposition", &self.exposition);
        push_opt(&mut entries, "timeline", &self.timeline);
        push_opt(&mut entries, "error", &self.error);
        Content::Map(entries)
    }
}

impl Deserialize for Response {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        let req = |field: &str| {
            content
                .field(field)
                .ok_or_else(|| serde::Error(format!("response is missing `{field}`")))
        };
        Ok(Response {
            ok: Deserialize::from_content(req("ok")?)?,
            kind: Deserialize::from_content(req("kind")?)?,
            id: opt_field(content, "id")?,
            result: opt_field(content, "result")?,
            stats: opt_field(content, "stats")?,
            pong: opt_field(content, "pong")?,
            design: opt_field(content, "design")?,
            designs: opt_field(content, "designs")?,
            metrics: opt_field(content, "metrics")?,
            exposition: opt_field(content, "exposition")?,
            timeline: opt_field(content, "timeline")?,
            error: opt_field(content, "error")?,
        })
    }
}

/// What can go wrong on one client-side protocol exchange.
///
/// Every failure mode a [`ServeClient`](crate::ServeClient) call can hit
/// is distinguished here, so callers routing across many servers (the
/// [`ShardRouter`](crate::ShardRouter)) can tell a transport fault —
/// which condemns the whole connection — from a per-request server-side
/// verdict, which leaves the connection healthy.
#[derive(Debug)]
pub enum ProtocolError {
    /// Transport-level failure (connect, write, or read).
    Io(std::io::Error),
    /// The peer closed the connection cleanly at a line boundary.
    ConnectionClosed,
    /// The peer died *mid-line*: EOF arrived before the terminating
    /// newline. The partial line is preserved for diagnosis — it shows
    /// exactly how far the peer got before the cut.
    TruncatedLine {
        /// The bytes received before EOF, newline never seen.
        partial: String,
    },
    /// A complete line arrived but is not a valid protocol envelope.
    Malformed {
        /// The offending line (trimmed).
        line: String,
        /// Why it failed to parse.
        reason: String,
    },
    /// The server answered `ok:false`: a per-request failure. The
    /// connection stays usable.
    Server(String),
    /// A well-formed `ok:true` response was missing the payload its
    /// kind promises (a server bug, not a transport fault).
    MissingPayload {
        /// The response kind that arrived without its payload.
        kind: &'static str,
    },
}

impl ProtocolError {
    /// Whether this error condemns the connection: everything except a
    /// per-request [`Server`](Self::Server) verdict means the transport
    /// or the peer can no longer be trusted, and a router should treat
    /// the host as failed.
    pub fn is_fatal(&self) -> bool {
        !matches!(self, ProtocolError::Server(_))
    }

    /// The partial line of a [`TruncatedLine`](Self::TruncatedLine),
    /// if that is what this is.
    pub fn truncated_partial(&self) -> Option<&str> {
        match self {
            ProtocolError::TruncatedLine { partial } => Some(partial),
            _ => None,
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o failure: {e}"),
            ProtocolError::ConnectionClosed => {
                write!(f, "server closed the connection")
            }
            ProtocolError::TruncatedLine { partial } => write!(
                f,
                "connection died mid-line after {} bytes: {partial:?}",
                partial.len()
            ),
            ProtocolError::Malformed { line, reason } => {
                write!(f, "malformed response line {line:?}: {reason}")
            }
            ProtocolError::Server(message) => write!(f, "server error: {message}"),
            ProtocolError::MissingPayload { kind } => {
                write!(f, "`{kind}` response arrived without its payload")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_and_tolerate_omitted_fields() {
        let job = WireJob {
            name: "sum-5".to_string(),
            budget: 27,
            inputs: vec![],
            state_pokes: vec![WireBinding {
                name: "x15".to_string(),
                value: 5,
            }],
            probes: vec!["a0".to_string()],
            design: None,
        };
        for req in [
            Request::submit(job.clone()),
            Request::submit(job.clone().on_design("sha3")),
            Request::poll(3),
            Request::result(None),
            Request::result(Some(7)),
            Request::stats(),
            Request::register("sha3", "circuit S :\n  ...", "done"),
            Request::designs(),
            Request::ping(),
            Request::metrics(),
            Request::timeline(12),
        ] {
            let line = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, req, "{line}");
        }
        // A minimal hand-typed submission parses: empty lists omitted.
        let hand = r#"{"verb":"submit","job":{"name":"j","budget":9}}"#;
        let req: Request = serde_json::from_str(hand).unwrap();
        assert_eq!(req.verb, Verb::Submit);
        let j = req.job.unwrap();
        assert_eq!((j.name.as_str(), j.budget), ("j", 9));
        assert!(j.inputs.is_empty() && j.state_pokes.is_empty() && j.probes.is_empty());
        // Unknown verbs fail loudly.
        assert!(serde_json::from_str::<Request>(r#"{"verb":"zap"}"#).is_err());
        assert!(serde_json::from_str::<Request>(r#"{"id":3}"#).is_err());
    }

    #[test]
    fn responses_round_trip_and_omit_absent_fields() {
        let r = WireResult {
            id: 4,
            name: "sum-5".to_string(),
            outcome: "completed".to_string(),
            error: None,
            outputs: vec![WireBinding {
                name: "a0".to_string(),
                value: 15,
            }],
            cycles: 20,
            admitted_at: 2,
            finished_at: 22,
        };
        assert!(r.completed());
        assert_eq!(r.output("a0"), Some(15));
        assert_eq!(r.output("a1"), None);
        for resp in [
            Response::submitted(4),
            Response::pending(4),
            Response::result(r),
            Response::registered("sha3"),
            Response::designs(vec![
                WireDesign {
                    name: "default".to_string(),
                    default: true,
                    analysis: WireAnalysis {
                        ops: 12,
                        layers: 3,
                        slots: 20,
                        registers: 2,
                        dead_ops: 0,
                        never_toggling: 1,
                        warnings: 0,
                        activity: 31.0,
                    },
                },
                WireDesign {
                    name: "sha3".to_string(),
                    default: false,
                    analysis: WireAnalysis::default(),
                },
            ]),
            Response::pong(WirePong {
                uptime_ms: 1234,
                designs: 2,
                digest: designs_digest(&["default".to_string(), "sha3".to_string()]),
            }),
            {
                let reg = rteaal_telemetry::MetricsRegistry::new();
                reg.counter("sched.admitted").add(3);
                reg.gauge("sched.queue_depth.w0").set(2);
                reg.histogram("serve.dispatch_latency_us").record(17);
                let snap = reg.snapshot();
                let text = snap.prometheus();
                Response::metrics(snap, text)
            },
            Response::timeline(
                9,
                vec![
                    JobEvent {
                        job: 9,
                        stage: rteaal_telemetry::JobStage::Submitted,
                        at_us: 10,
                        worker: Some(0),
                        lane: None,
                        shard: None,
                    },
                    JobEvent {
                        job: 9,
                        stage: rteaal_telemetry::JobStage::Delivered,
                        at_us: 80,
                        worker: None,
                        lane: None,
                        shard: Some(1),
                    },
                ],
            ),
            Response::error("unknown id"),
        ] {
            let line = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, resp, "{line}");
        }
        // Compactness: absent options leave no key behind.
        let line = serde_json::to_string(&Response::submitted(4)).unwrap();
        assert_eq!(line, r#"{"ok":true,"kind":"submitted","id":4}"#);
    }

    #[test]
    fn designs_digest_is_order_sensitive_and_deterministic() {
        let a = vec!["default".to_string(), "sha3".to_string()];
        let b = vec!["sha3".to_string(), "default".to_string()];
        assert_eq!(designs_digest(&a), designs_digest(&a));
        assert_ne!(designs_digest(&a), designs_digest(&b));
        assert_ne!(designs_digest(&a), designs_digest(&a[..1]));
    }

    #[test]
    fn wire_job_converts_to_and_from_sched_jobs() {
        let job: Job = Job::new("j", 64)
            .with_input("limit", 5)
            .with_state_poke("x15", 7)
            .with_probe("a0");
        let wire = WireJob::from(&job);
        let back: Job = wire.into();
        assert_eq!(back.name, job.name);
        assert_eq!(back.budget, job.budget);
        assert_eq!(back.inputs, job.inputs);
        assert_eq!(back.state_pokes, job.state_pokes);
        assert_eq!(back.probes, job.probes);
    }
}
