//! # rteaal-serve
//!
//! The concurrent serving front end over the `rteaal-sched`
//! continuous-batching scheduler: many clients, many jobs, one (or a
//! few) compiled designs, results streamed back the cycle each job's
//! halt probe fires.
//!
//! Five layers:
//!
//! - [`ServerPool`] — N worker threads, each running one
//!   [`Scheduler`](rteaal_sched::Scheduler) per registered design, fed
//!   from mpsc submission queues with least-loaded dispatch. Submission
//!   returns a [`JobHandle`] that can [`poll`](JobHandle::poll) or
//!   [`wait`](JobHandle::wait) (or [`JobHandle::wait_any`] across
//!   handles) for the job's [`JobResult`](rteaal_sched::JobResult).
//!   [`register`](ServerPool::register) grows the design registry at
//!   runtime; jobs route by design name.
//! - [`protocol`] — the line-delimited-JSON wire format:
//!   `submit` / `poll` / `result` / `stats` / `register` / `designs` /
//!   `ping` / `metrics` / `timeline` verbs, and the typed
//!   [`ProtocolError`] every client exchange can surface. The last two
//!   expose the pool's `rteaal-telemetry` registry: a full counters /
//!   gauges / histograms snapshot (JSON plus Prometheus text), and one
//!   job's six-stage lifecycle timeline.
//! - [`SocketServer`] / [`ServeClient`] — a `std::net::TcpListener`
//!   front end speaking that protocol, one connection per client, and
//!   its blocking client.
//! - [`ShardRouter`] — the cross-host supervisor: consistent-hash job
//!   placement ([`HashRing`]) over a fleet of server processes, with
//!   per-shard circuit breakers (exponential backoff, half-open `ping`
//!   probes, shard rejoin with registry replay), replica hedging of
//!   stragglers, automatic resubmission of jobs lost to dead shards,
//!   and a [`FleetStats`] snapshot; results merge into one
//!   completion-ordered stream.
//! - [`chaos`] — the fault-injection harness ([`ChaosShard`]): a
//!   line-level TCP proxy that delays, drops, truncates, kills — and
//!   revives — so the router's failure *and recovery* paths are
//!   testable against real sockets.
//!
//! The scheduler hardening that makes this safe to put behind a socket
//! lives in `rteaal-sched`: a job that fails validation becomes a
//! `Rejected` result (never a wedged queue), budget-0 and
//! already-halted admissions finish at zero cycles, and eviction
//! records its own cycle.
//!
//! ## Example
//!
//! ```
//! use rteaal_core::Compiler;
//! use rteaal_kernels::{KernelConfig, KernelKind};
//! use rteaal_sched::Job;
//! use rteaal_serve::{ServeClient, ServeConfig, ServerPool, SocketServer};
//!
//! let src = "\
//! circuit H :
//!   module H :
//!     input clock : Clock
//!     input limit : UInt<8>
//!     output cnt : UInt<8>
//!     output done : UInt<1>
//!     reg acc : UInt<8>, clock
//!     acc <= tail(add(acc, UInt<8>(1)), 1)
//!     cnt <= acc
//!     done <= geq(acc, limit)
//! ";
//! let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu)).compile_str(src)?;
//! let pool = ServerPool::new(&compiled, ServeConfig::with_workers(2), "done")?;
//! let addr = SocketServer::bind(pool, "127.0.0.1:0")?.spawn()?;
//!
//! let mut client = ServeClient::connect(addr)?;
//! for k in [3u64, 9, 5] {
//!     client.submit(
//!         &Job::new(format!("count-{k}"), k + 8)
//!             .with_input("limit", k)
//!             .with_probe("cnt"),
//!     )?;
//! }
//! for _ in 0..3 {
//!     let r = client.next_result()?; // completion order, not submission order
//!     assert!(r.completed());
//! }
//! assert_eq!(client.stats()?.completed, 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod chaos;
pub mod net;
pub mod pool;
pub mod protocol;
pub mod shard;

pub use chaos::{ChaosPlan, ChaosShard};
pub use net::{ServeClient, SocketServer};
pub use pool::{
    DesignInfo, JobHandle, RegisterError, ServeConfig, ServeStats, ServerPool, DEFAULT_DESIGN,
};
pub use protocol::{
    designs_digest, ProtocolError, Request, Response, Verb, WireAnalysis, WireBinding, WireDesign,
    WireJob, WirePong, WireResult, WireStats,
};
pub use shard::{
    FleetShard, FleetStats, HashRing, Routed, RouterError, RouterStats, ShardConfig, ShardLoad,
    ShardPhase, ShardRouter,
};
