//! The multi-worker serving pool: N threads, each running one
//! [`Scheduler`] per registered design, fed from mpsc submission
//! queues with least-loaded dispatch.
//!
//! [`ServerPool`] is the in-process front door of the serving layer.
//! Submission returns immediately with a [`JobHandle`]; each worker
//! drives its schedulers in small [`Scheduler::run_for`] chunks,
//! interleaving mid-run admissions from its queue with harvests, and
//! publishes every finished job's [`JobResult`] — keyed by a
//! pool-global id — the moment the lane's halt probe fires. Clients
//! [`poll`](JobHandle::poll) or [`wait`](JobHandle::wait) on their
//! handles; nothing blocks the workers.
//!
//! Sharding is one `Scheduler` (and one `BatchSimulation`) per worker
//! thread: the slot-major lane matrix splits on the lane axis, so W
//! workers × L lanes behave like one W·L-lane engine whose lanes drain
//! and refill independently — the multi-worker shape the ROADMAP pairs
//! with the async front end.
//!
//! A pool starts with one design (the *default*, the compile it was
//! constructed over) and grows by [`register`](ServerPool::register):
//! every worker gains a scheduler for the new design, and jobs route by
//! design name through [`submit_named`](ServerPool::submit_named) (or
//! the wire protocol's `"design"` job field). One server process can
//! therefore hold a whole registry of compiled circuits — the
//! multi-design shape a cross-host [`ShardRouter`](crate::ShardRouter)
//! fleet is built from.

use rteaal_core::{
    analyze_design, analyze_partitioned, AnalysisReport, AnalysisStats, Compiled, PartitionedPlan,
    Partitioning, Specialization, UnknownSignal,
};
use rteaal_sched::{Job, JobId, JobOutcome, JobResult, SchedStats, Scheduler};
use rteaal_telemetry::{Gauge, JobStage, MetricsRegistry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, recovering from poison instead of propagating it.
///
/// Every critical section in this module leaves its table in a
/// consistent state at any panic point (inserts/removes on std
/// collections are atomic operations), so data behind a poisoned lock
/// is still serviceable. Refusing to serve results because one worker
/// panicked would turn a single lost worker into a wedged pool — every
/// blocked `wait` would panic instead of draining.
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The name of the design every pool starts with (the compile passed to
/// [`ServerPool::new`]); jobs that name no design run on it.
pub const DEFAULT_DESIGN: &str = "default";

/// Worker-pool sizing and pacing knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads, one `Scheduler` each.
    pub workers: usize,
    /// Stimulus lanes per worker.
    pub lanes: usize,
    /// Engine cycles per `run_for` chunk — the latency granularity at
    /// which workers check their submission queues and publish results.
    pub chunk_cycles: u64,
    /// Per-job cycle cap: a submitted job's budget is clamped to this
    /// (guards a server against unhaltable testbenches with huge
    /// budgets).
    pub max_budget: u64,
    /// RepCut partition count for partition-parallel designs (1 = the
    /// mode is off). When > 1, each registered design is *individually*
    /// assessed: if its replication factor at this partition count stays
    /// within [`max_replication`](Self::max_replication), the design's
    /// jobs run on worker 0 with each cycle's ops spread across
    /// `partitions` engine threads — one big job's cycle spans several
    /// cores instead of one design per worker. Designs that replicate
    /// too heavily keep the classic one-scheduler-per-worker execution.
    pub partitions: usize,
    /// Replication-factor ceiling above which a design opts out of
    /// partition-parallel execution (replicated fan-in cones would cost
    /// more than the parallelism wins).
    pub max_replication: f64,
    /// Whole-design specialization tier for every worker's engine:
    /// `Off` runs plans as compiled, `Auto` folds/dedups/fuses them and
    /// bit-packs 1-bit slots when the lane count pays for it. Results
    /// are bit-identical either way — the specialized plan is
    /// re-verified against the same analyzer the compiler runs.
    pub specialization: Specialization,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            lanes: 8,
            chunk_cycles: 64,
            max_budget: 1 << 20,
            partitions: 1,
            max_replication: 1.5,
            specialization: Specialization::Off,
        }
    }
}

impl ServeConfig {
    /// A config with a given worker count (other knobs default).
    pub fn with_workers(workers: usize) -> Self {
        ServeConfig {
            workers,
            ..ServeConfig::default()
        }
    }
}

/// State shared between workers, handles, and the pool front end.
/// The published-results table: finished jobs awaiting their handle,
/// plus tombstones for jobs whose handle was dropped unclaimed (so the
/// eventual publication is discarded instead of leaking — a
/// long-running server's clients may disconnect mid-job).
#[derive(Debug, Default)]
struct ResultsTable {
    /// Finished jobs by pool-global id, removed when claimed.
    ready: HashMap<u64, JobResult>,
    /// Ids abandoned before publication; consumed at publish time.
    abandoned: std::collections::HashSet<u64>,
}

#[derive(Debug)]
struct Shared {
    results: Mutex<ResultsTable>,
    /// Signalled whenever new results land.
    done: Condvar,
    /// Per-worker scheduler counters, refreshed after every chunk.
    ///
    /// This mutex doubles as the pool's *ledger lock*: id assignment +
    /// load increments (submission) and stats refresh + load decrements
    /// (publication) each happen inside one critical section on it, so
    /// any reader holding it sees every job in exactly one ledger state
    /// — the accounting-closure invariant `stats()` asserts.
    stats: Mutex<Vec<SchedStats>>,
    /// Dispatched-but-unfinished jobs by pool-global id: which worker
    /// owns each and the job's name. Maintained inside ledger sections
    /// (insert at submission, remove at publication) so a dying
    /// worker's unwind guard can fail exactly the jobs that will never
    /// publish — the "handles must not wedge" invariant.
    assigned: Mutex<HashMap<u64, (usize, String)>>,
    /// Jobs rejected pool-side without a worker scheduler ever counting
    /// them (unknown design, dead worker, stranded by a worker panic) —
    /// folded into the merged `rejected` counter so
    /// `submitted == completed + evicted + rejected + in_flight`
    /// always closes.
    unrouted: AtomicU64,
    /// Per-worker death flags: set when a worker thread panics (by its
    /// unwind guard) or its queue is found disconnected. Dead workers
    /// are excluded from dispatch.
    dead: Vec<AtomicBool>,
    /// The pool-wide metrics registry and per-job event ring.
    telemetry: Arc<MetricsRegistry>,
    /// Per-worker occupancy gauges (`serve.worker_inflight.w{n}`),
    /// mirroring `loads` into the registry.
    occupancy: Vec<Arc<Gauge>>,
}

/// Aggregate pool statistics (the `stats` verb's payload).
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Worker threads.
    pub workers: usize,
    /// Lanes per worker.
    pub lanes: usize,
    /// Registered designs (including the default).
    pub designs: usize,
    /// Jobs submitted through the pool so far.
    pub submitted: u64,
    /// Results finished but not yet claimed by a handle.
    pub unclaimed: usize,
    /// Jobs dispatched to workers but not yet finished.
    pub in_flight: usize,
    /// Jobs sitting in worker queues, not yet admitted into lanes.
    pub queue_depth: usize,
    /// Milliseconds since the pool was constructed.
    pub uptime_ms: u64,
    /// All workers' counters merged.
    pub merged: SchedStats,
    /// Each worker's own counters.
    pub per_worker: Vec<SchedStats>,
}

impl ServeStats {
    /// Occupied-lane cycles over total lane cycles stepped, across all
    /// workers (`merged.cycles` already sums every worker's cycles, so
    /// the lane width here is per-worker).
    pub fn utilization(&self) -> f64 {
        self.merged.utilization_of(self.lanes)
    }

    /// The pool ledger identity: every submitted job is exactly one of
    /// finished (completed / evicted / rejected) or still in flight.
    /// Because `stats()` samples every term inside one ledger critical
    /// section, this closes at *every* snapshot, not just at shutdown.
    pub fn accounting_balanced(&self) -> bool {
        self.submitted as usize
            == self.merged.completed + self.merged.evicted + self.merged.rejected + self.in_flight
    }
}

/// Why a design registration was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum RegisterError {
    /// The halt signal names neither a probe nor an output port of the
    /// design being registered.
    UnknownHalt(UnknownSignal),
    /// The name is already taken. Replacing a design in place would
    /// strand its in-flight jobs, so re-registration is refused.
    DuplicateDesign(String),
    /// The static plan verifier found Error-level diagnostics — the
    /// design's plan or kernel table violates a structural invariant and
    /// must never reach a worker's engine.
    Rejected(AnalysisReport),
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::UnknownHalt(UnknownSignal(name)) => {
                write!(f, "unknown halt signal `{name}`")
            }
            RegisterError::DuplicateDesign(name) => {
                write!(f, "design `{name}` is already registered")
            }
            RegisterError::Rejected(report) => {
                write!(f, "design failed verification: {report}")
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// A claim on one submitted job's eventual [`JobResult`].
///
/// The result is delivered exactly once: the first successful
/// [`poll`](Self::poll) or [`wait`](Self::wait) takes it. Handles are
/// independent of the pool's lifetime — results published before a
/// [`ServerPool::shutdown`] stay claimable afterwards. Dropping a
/// handle *unclaimed* releases its result slot (the result is
/// discarded when it lands, rather than parked forever).
#[derive(Debug)]
pub struct JobHandle {
    id: u64,
    shared: Arc<Shared>,
    claimed: std::sync::atomic::AtomicBool,
}

impl JobHandle {
    /// The pool-global job id (also [`JobResult::id`] in the delivered
    /// result).
    pub fn id(&self) -> u64 {
        self.id
    }

    fn mark_claimed(&self) {
        self.claimed.store(true, Ordering::Release);
    }

    /// Takes the result if the job has finished, without blocking.
    pub fn poll(&self) -> Option<JobResult> {
        let r = lock_or_recover(&self.shared.results).ready.remove(&self.id);
        if r.is_some() {
            self.mark_claimed();
            self.record_delivered();
        }
        r
    }

    /// Blocks until the job finishes and takes its result. Never wedges
    /// on a dead worker: a panicking worker's unwind guard publishes
    /// [`JobOutcome::Rejected`] results for every job it strands.
    pub fn wait(&self) -> JobResult {
        let mut table = lock_or_recover(&self.shared.results);
        loop {
            if let Some(r) = table.ready.remove(&self.id) {
                self.mark_claimed();
                drop(table);
                self.record_delivered();
                return r;
            }
            table = self
                .shared
                .done
                .wait(table)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn record_delivered(&self) {
        self.shared
            .telemetry
            .record_event(self.id, JobStage::Delivered, None, None, None);
    }

    /// Blocks until *any* of the given handles' jobs finishes and takes
    /// that result, returning it with the index of the handle it
    /// belongs to — the "stream results as they complete" primitive.
    /// Returns `None` if `handles` is empty. All handles must come from
    /// the same pool.
    pub fn wait_any(handles: &[JobHandle]) -> Option<(usize, JobResult)> {
        let shared = &handles.first()?.shared;
        debug_assert!(
            handles.iter().all(|h| Arc::ptr_eq(&h.shared, shared)),
            "wait_any handles must share one pool"
        );
        let mut table = lock_or_recover(&shared.results);
        loop {
            for (i, h) in handles.iter().enumerate() {
                if let Some(r) = table.ready.remove(&h.id) {
                    h.mark_claimed();
                    drop(table);
                    h.record_delivered();
                    return Some((i, r));
                }
            }
            table = shared
                .done
                .wait(table)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        if self.claimed.load(Ordering::Acquire) {
            return;
        }
        // Abandoned before claiming: free the result slot now if the
        // job already finished, or leave a tombstone so the publisher
        // discards it on arrival (consumed there — neither side grows).
        let mut table = lock_or_recover(&self.shared.results);
        if table.ready.remove(&self.id).is_none() {
            table.abandoned.insert(self.id);
        }
    }
}

/// A pool of scheduler workers serving one compiled design.
///
/// # Examples
///
/// ```
/// use rteaal_core::Compiler;
/// use rteaal_kernels::{KernelConfig, KernelKind};
/// use rteaal_sched::Job;
/// use rteaal_serve::{ServeConfig, ServerPool};
///
/// let src = "\
/// circuit H :
///   module H :
///     input clock : Clock
///     input limit : UInt<8>
///     output cnt : UInt<8>
///     output done : UInt<1>
///     reg acc : UInt<8>, clock
///     acc <= tail(add(acc, UInt<8>(1)), 1)
///     cnt <= acc
///     done <= geq(acc, limit)
/// ";
/// let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu)).compile_str(src)?;
/// let pool = ServerPool::new(&compiled, ServeConfig::with_workers(2), "done")?;
/// let handles: Vec<_> = (1u64..=6)
///     .map(|k| {
///         pool.submit(
///             Job::new(format!("count-{k}"), k + 8)
///                 .with_input("limit", k)
///                 .with_probe("cnt"),
///         )
///     })
///     .collect();
/// for (k, h) in (1u64..=6).zip(&handles) {
///     let r = h.wait();
///     assert!(r.completed());
///     assert_eq!(r.outputs[0].1, k + 1);
/// }
/// pool.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ServerPool {
    shared: Arc<Shared>,
    /// Design names and per-worker submission queues, under one lock:
    /// holding it across channel sends guarantees a design's `Register`
    /// message reaches every worker queue before any job naming it —
    /// and dropping the senders signals shutdown.
    routing: Mutex<Routing>,
    /// Jobs dispatched to but not yet finished by each worker.
    loads: Arc<Vec<AtomicUsize>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    config: ServeConfig,
    /// When the pool was constructed — the `ping` verb's uptime origin,
    /// which lets a health prober distinguish a host that recovered
    /// from one that restarted (and so lost its design registry).
    started: Instant,
}

/// One registered design's registry entry: routing mode plus the static
/// verifier's per-design statistics (what the `designs` verb reports).
#[derive(Debug, Clone)]
pub struct DesignInfo {
    /// Registry name.
    pub name: String,
    /// Whether worker 0 runs this design partition-parallel.
    pub partition_parallel: bool,
    /// The verifier's dataflow statistics for the design (activity,
    /// dead ops, never-toggling signals, shape counts).
    pub analysis: AnalysisStats,
}

/// The registry + submission queues (see [`ServerPool::routing`]).
#[derive(Debug)]
struct Routing {
    /// Registered designs in registration order (`[0]` is
    /// [`DEFAULT_DESIGN`]).
    designs: Vec<DesignInfo>,
    /// Per-worker submission queues (cleared to signal shutdown).
    senders: Vec<Sender<WorkerMsg>>,
}

/// What the pool front end sends a worker.
enum WorkerMsg {
    /// Run a job on a registered design.
    Job {
        /// Pool-global id.
        id: u64,
        /// Registry name (always validated by the front end first).
        design: String,
        /// The job itself.
        job: Job,
        /// Registry timestamp at submission, for the dispatch-latency
        /// histogram (time from front-end submit to worker pickup).
        submitted_at_us: u64,
    },
    /// Add a design: build a scheduler for it.
    Register {
        /// Registry name.
        design: String,
        /// The compile every worker shares.
        compiled: Arc<Compiled>,
        /// Per-lane completion probe.
        halt: String,
        /// Whether worker 0 runs this design partition-parallel.
        partition_parallel: bool,
    },
    /// Test-only: panic the worker thread while it holds the ledger
    /// lock — the worst-case stand-in for an engine bug killing a
    /// worker mid-corpus (poisons the lock *and* strands every job the
    /// worker owns).
    #[cfg(test)]
    Die,
}

/// Decides whether a design runs partition-parallel under a config: the
/// mode must be on (`partitions > 1`), the design's RepCut replication
/// factor at that partition count must stay within the configured
/// ceiling, and the decomposition must pass the static verifier — a
/// rejected decomposition silently opts the design back into
/// single-schedule execution rather than letting an engine panic on it.
fn partition_parallel_mode(config: &ServeConfig, compiled: &Compiled) -> bool {
    if config.partitions <= 1 {
        return false;
    }
    let pp = PartitionedPlan::new(&compiled.plan, config.partitions);
    pp.replication_factor() <= config.max_replication
        && analyze_partitioned(&compiled.plan, &pp).is_clean()
}

impl ServerPool {
    /// Spawns `config.workers` scheduler threads over a shared compile,
    /// each watching `halt_signal` for per-lane completion.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSignal`] if `halt_signal` names neither a probe
    /// nor an output port of the design.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers`, `config.lanes`, or
    /// `config.chunk_cycles` is zero.
    pub fn new(
        compiled: &Compiled,
        config: ServeConfig,
        halt_signal: &str,
    ) -> Result<Self, UnknownSignal> {
        assert!(config.workers > 0, "pool needs at least one worker");
        assert!(config.lanes > 0, "pool needs at least one lane per worker");
        assert!(
            config.chunk_cycles > 0,
            "zero-cycle chunks would never step a job"
        );
        // Validate the halt probe before spawning anything, through the
        // same resolver `BatchSimulation::watch_halt` uses.
        if compiled.plan.signal_slot(halt_signal).is_none() {
            return Err(UnknownSignal(halt_signal.to_string()));
        }
        let telemetry = Arc::new(MetricsRegistry::new());
        let occupancy = (0..config.workers)
            .map(|w| telemetry.gauge(&format!("serve.worker_inflight.w{w}")))
            .collect();
        let shared = Arc::new(Shared {
            results: Mutex::new(ResultsTable::default()),
            done: Condvar::new(),
            stats: Mutex::new(vec![SchedStats::default(); config.workers]),
            assigned: Mutex::new(HashMap::new()),
            unrouted: AtomicU64::new(0),
            dead: (0..config.workers)
                .map(|_| AtomicBool::new(false))
                .collect(),
            telemetry,
            occupancy,
        });
        let loads: Arc<Vec<AtomicUsize>> =
            Arc::new((0..config.workers).map(|_| AtomicUsize::new(0)).collect());
        let default_parallel = partition_parallel_mode(&config, compiled);
        let compiled = Arc::new(compiled.clone());
        let halt = halt_signal.to_string();
        let mut senders = Vec::with_capacity(config.workers);
        let mut workers = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            let (compiled, halt) = (Arc::clone(&compiled), halt.clone());
            let (shared, loads) = (Arc::clone(&shared), Arc::clone(&loads));
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rteaal-serve-{w}"))
                    .spawn(move || {
                        worker_loop(
                            &compiled,
                            &halt,
                            default_parallel,
                            config,
                            rx,
                            &shared,
                            &loads,
                            w,
                        )
                    })
                    .expect("worker thread spawns"),
            );
        }
        Ok(ServerPool {
            shared,
            routing: Mutex::new(Routing {
                designs: vec![DesignInfo {
                    name: DEFAULT_DESIGN.to_string(),
                    partition_parallel: default_parallel,
                    analysis: compiled.analysis.stats.clone(),
                }],
                senders,
            }),
            loads,
            workers,
            next_id: AtomicU64::new(0),
            config,
            started: Instant::now(),
        })
    }

    /// The pool's sizing knobs.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Time since the pool was constructed.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Adds a design to the registry: every worker gains a scheduler
    /// for it, and jobs reach it through
    /// [`submit_named`](Self::submit_named) (or the wire protocol's
    /// `"design"` job field).
    ///
    /// # Errors
    ///
    /// [`RegisterError::UnknownHalt`] if `halt_signal` resolves on
    /// neither a probe nor an output port of `compiled`;
    /// [`RegisterError::DuplicateDesign`] if the name is taken;
    /// [`RegisterError::Rejected`] if the static plan verifier finds
    /// Error-level diagnostics (the plan never reaches a worker engine).
    pub fn register(
        &self,
        name: &str,
        compiled: &Compiled,
        halt_signal: &str,
    ) -> Result<(), RegisterError> {
        if compiled.plan.signal_slot(halt_signal).is_none() {
            return Err(RegisterError::UnknownHalt(UnknownSignal(
                halt_signal.to_string(),
            )));
        }
        // Re-verify at the trust boundary: `Compiled` values from the
        // compiler are clean by construction, but `register` accepts any
        // caller-built plan and workers would otherwise panic on a
        // corrupt one mid-run.
        let report = analyze_design(&compiled.plan);
        if !report.is_clean() {
            return Err(RegisterError::Rejected(report));
        }
        let partition_parallel = partition_parallel_mode(&self.config, compiled);
        let mut routing = lock_or_recover(&self.routing);
        if routing.designs.iter().any(|d| d.name == name) {
            return Err(RegisterError::DuplicateDesign(name.to_string()));
        }
        routing.designs.push(DesignInfo {
            name: name.to_string(),
            partition_parallel,
            analysis: report.stats,
        });
        // Broadcast under the lock: no job naming this design can be
        // sent until we release it, so every worker sees the
        // registration first.
        let compiled = Arc::new(compiled.clone());
        for (w, tx) in routing.senders.iter().enumerate() {
            // A dead worker's receiver is gone; the design still
            // registers on every survivor, and jobs that would have
            // landed on the dead worker are rejected at dispatch.
            if tx
                .send(WorkerMsg::Register {
                    design: name.to_string(),
                    compiled: Arc::clone(&compiled),
                    halt: halt_signal.to_string(),
                    partition_parallel,
                })
                .is_err()
            {
                self.shared.dead[w].store(true, Ordering::Release);
            }
        }
        Ok(())
    }

    /// The registered design names, in registration order (`[0]` is the
    /// default).
    pub fn designs(&self) -> Vec<String> {
        lock_or_recover(&self.routing)
            .designs
            .iter()
            .map(|d| d.name.clone())
            .collect()
    }

    /// The full registry entries — name, routing mode, and the static
    /// verifier's per-design statistics — in registration order.
    pub fn design_infos(&self) -> Vec<DesignInfo> {
        lock_or_recover(&self.routing).designs.clone()
    }

    /// The static verifier's statistics for a registered design, or
    /// `None` for an unregistered name.
    pub fn analysis_stats(&self, name: &str) -> Option<AnalysisStats> {
        lock_or_recover(&self.routing)
            .designs
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.analysis.clone())
    }

    /// Whether a registered design runs partition-parallel (its jobs'
    /// cycles span `config.partitions` engine threads on worker 0), or
    /// `None` for an unregistered name.
    pub fn partition_parallel(&self, name: &str) -> Option<bool> {
        lock_or_recover(&self.routing)
            .designs
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.partition_parallel)
    }

    /// Enqueues a job onto the least-loaded worker and returns a handle
    /// to its eventual result. Never blocks on the simulation.
    pub fn submit(&self, job: Job) -> JobHandle {
        self.submit_named(None, job)
    }

    /// Enqueues a job for a registered design (`None` = the default).
    /// A job naming an unregistered design comes back through its
    /// handle as a [`JobOutcome::Rejected`] result — submission itself
    /// never fails.
    pub fn submit_named(&self, design: Option<&str>, mut job: Job) -> JobHandle {
        job.budget = job.budget.min(self.config.max_budget);
        let design = design.unwrap_or(DEFAULT_DESIGN);
        let routing = lock_or_recover(&self.routing);
        let Some(partition_parallel) = routing
            .designs
            .iter()
            .find(|d| d.name == design)
            .map(|d| d.partition_parallel)
        else {
            drop(routing);
            return self.reject_unrouted(job.name, format!("unknown design `{design}`"));
        };
        // Partition-parallel designs live on worker 0, whose scheduler
        // spreads each cycle across the partition threads; everything
        // else gets least-loaded dispatch over the *live* workers (ties
        // go to the lowest index). Dead workers never receive jobs.
        let target = if partition_parallel {
            (!self.shared.dead[0].load(Ordering::Acquire)).then_some(0)
        } else {
            (0..self.loads.len())
                .filter(|&w| !self.shared.dead[w].load(Ordering::Acquire))
                .min_by_key(|&w| self.loads[w].load(Ordering::Acquire))
        };
        let Some(w) = target else {
            drop(routing);
            return self.reject_unrouted(
                job.name,
                format!("no live worker can run design `{design}`"),
            );
        };
        // Ledger section: id assignment, the in-flight increment, and
        // the assignment record are atomic with respect to stats() and
        // to any worker's unwind guard, so `submitted` and `in_flight`
        // can never disagree about this job.
        let id = {
            let _ledger = lock_or_recover(&self.shared.stats);
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            self.loads[w].fetch_add(1, Ordering::AcqRel);
            lock_or_recover(&self.shared.assigned).insert(id, (w, job.name.clone()));
            id
        };
        self.shared.occupancy[w].add(1);
        let submitted_at_us = self.shared.telemetry.now_us();
        self.shared
            .telemetry
            .record_event(id, JobStage::Submitted, Some(w as u64), None, None);
        // Sent under the routing lock, after the membership check: the
        // design's `Register` broadcast is already in this worker's
        // queue, so the job can never outrun its scheduler.
        let name = job.name.clone();
        let sent = routing.senders[w].send(WorkerMsg::Job {
            id,
            design: design.to_string(),
            job,
            submitted_at_us,
        });
        drop(routing);
        if sent.is_err() {
            // The worker died between the liveness check and the send.
            // Roll the dispatch back and reject — unless the worker's
            // unwind guard swept the assignment first (it then already
            // published a rejection for this id).
            self.shared.dead[w].store(true, Ordering::Release);
            let ours = {
                let _ledger = lock_or_recover(&self.shared.stats);
                let removed = lock_or_recover(&self.shared.assigned).remove(&id).is_some();
                if removed {
                    self.loads[w].fetch_sub(1, Ordering::AcqRel);
                    self.shared.unrouted.fetch_add(1, Ordering::Relaxed);
                }
                removed
            };
            if ours {
                self.shared.occupancy[w].sub(1);
                self.publish_unrouted(id, name, format!("worker {w} is no longer running"));
            }
        }
        self.handle(id)
    }

    /// Rejects a job that cannot be dispatched at all (unknown design,
    /// no live worker): assigns an id, accounts it rejected inside a
    /// ledger section, and publishes the structured result.
    fn reject_unrouted(&self, name: String, error: String) -> JobHandle {
        // Ledger section: the id exists and is already accounted
        // rejected before any stats() reader can observe it.
        let id = {
            let _ledger = lock_or_recover(&self.shared.stats);
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            self.shared.unrouted.fetch_add(1, Ordering::Relaxed);
            id
        };
        self.shared
            .telemetry
            .record_event(id, JobStage::Submitted, None, None, None);
        self.publish_unrouted(id, name, error);
        self.handle(id)
    }

    /// Builds the claim handle for a pool-global id.
    fn handle(&self, id: u64) -> JobHandle {
        JobHandle {
            id,
            shared: Arc::clone(&self.shared),
            claimed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Publishes a rejected result for a job that never reached a
    /// worker (e.g. an unknown design name). The caller has already
    /// counted it in `unrouted` inside a ledger section.
    fn publish_unrouted(&self, id: u64, name: String, error: String) {
        publish_rejected(&self.shared, id, name, error);
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Jobs dispatched but not yet finished, across all workers.
    pub fn in_flight(&self) -> usize {
        self.loads.iter().map(|l| l.load(Ordering::Acquire)).sum()
    }

    /// The pool's metrics registry: counters, gauges, latency
    /// histograms, and the per-job event ring every layer records into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.telemetry
    }

    /// One job's retained event timeline (the `timeline` verb payload).
    pub fn timeline(&self, id: u64) -> Vec<rteaal_telemetry::JobEvent> {
        self.shared.telemetry.timeline(id)
    }

    /// A snapshot of the pool's counters.
    ///
    /// Every term of the ledger identity (`submitted`, `in_flight`, the
    /// finished counters) is sampled inside one critical section on the
    /// ledger lock, so [`ServeStats::accounting_balanced`] holds for
    /// every snapshot — debug builds assert it here.
    pub fn stats(&self) -> ServeStats {
        // Lock order is routing → stats everywhere (submission takes
        // routing first), so read the registry size before the ledger.
        let designs = lock_or_recover(&self.routing).designs.len();
        let ledger = lock_or_recover(&self.shared.stats);
        let per_worker = ledger.clone();
        let submitted = self.submitted();
        let in_flight: usize = self.loads.iter().map(|l| l.load(Ordering::Acquire)).sum();
        let unrouted = self.shared.unrouted.load(Ordering::Relaxed) as usize;
        drop(ledger);
        let mut merged = SchedStats::default();
        for s in &per_worker {
            merged.merge(s);
        }
        // Pool-side rejections (unknown design) never touch a worker's
        // scheduler; fold them in so the finished counters account for
        // every submission.
        merged.rejected += unrouted;
        let queue_depth = (0..self.config.workers)
            .map(|w| {
                self.shared
                    .telemetry
                    .gauge(&format!("sched.queue_depth.w{w}"))
                    .get()
                    .max(0) as usize
            })
            .sum();
        let stats = ServeStats {
            workers: self.config.workers,
            lanes: self.config.lanes,
            designs,
            submitted,
            unclaimed: lock_or_recover(&self.shared.results).ready.len(),
            in_flight,
            queue_depth,
            uptime_ms: self.uptime().as_millis() as u64,
            merged,
            per_worker,
        };
        debug_assert!(
            stats.accounting_balanced(),
            "pool ledger broken: submitted {} != completed {} + evicted {} + \
             rejected {} + in_flight {}",
            stats.submitted,
            stats.merged.completed,
            stats.merged.evicted,
            stats.merged.rejected,
            stats.in_flight,
        );
        stats
    }

    /// Stops accepting submissions, lets every worker drain its
    /// outstanding jobs, joins the threads, and returns the final
    /// counters. Already-issued [`JobHandle`]s stay valid — results
    /// published during the drain remain claimable.
    pub fn shutdown(mut self) -> ServeStats {
        lock_or_recover(&self.routing).senders.clear();
        for (w, handle) in self.workers.drain(..).enumerate() {
            // A worker that panicked mid-run already failed its jobs
            // through its unwind guard; the drain must not turn one
            // lost worker into a pool-wide panic.
            if handle.join().is_err() {
                self.shared.dead[w].store(true, Ordering::Release);
            }
        }
        self.stats()
    }
}

impl Drop for ServerPool {
    fn drop(&mut self) {
        lock_or_recover(&self.routing).senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One registered design's scheduler on one worker, with its local
/// `JobId` -> pool-global id mapping.
struct DesignRun {
    name: String,
    sched: Scheduler,
    global: HashMap<JobId, u64>,
}

/// Builds one worker's scheduler for a design: worker 0 gives
/// partition-parallel designs a RepCut-decomposed engine whose cycles
/// span `config.partitions` threads; every other (worker, design) pair
/// keeps the classic single-schedule engine.
fn build_scheduler(
    compiled: &Compiled,
    halt: &str,
    config: ServeConfig,
    w: usize,
    partition_parallel: bool,
) -> Scheduler {
    if partition_parallel && w == 0 {
        Scheduler::try_new_full(
            compiled,
            config.lanes,
            halt,
            Partitioning::Fixed(config.partitions),
            config.specialization,
        )
        .expect("halt and decomposition validated by the pool")
        .with_threads(config.partitions)
    } else {
        Scheduler::try_new_full(
            compiled,
            config.lanes,
            halt,
            Partitioning::None,
            config.specialization,
        )
        .expect("halt validated by the pool")
    }
}

/// One worker: a scheduler per design driven in chunks, fed from its
/// queue, publishing results as lanes drain. Exits once the pool
/// disconnects the queue *and* all outstanding work is done.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    compiled: &Compiled,
    halt: &str,
    default_parallel: bool,
    config: ServeConfig,
    rx: Receiver<WorkerMsg>,
    shared: &Shared,
    loads: &[AtomicUsize],
    w: usize,
) {
    // Armed first and owning the queue: if anything below panics, the
    // guard's Drop runs during unwind, disconnects the queue, and fails
    // every job this worker owns, so no handle ever wedges on a dead
    // worker.
    let watch = Deathwatch {
        shared,
        loads,
        w,
        rx,
    };
    let attach = |sched: &mut Scheduler, design: &str| {
        sched.attach_telemetry(Arc::clone(&shared.telemetry), w, design);
    };
    // A Vec, not a map: designs stay in registration order (determinism
    // for the multiplexed drive below) and the registry is small.
    let mut designs: Vec<DesignRun> = vec![DesignRun {
        name: DEFAULT_DESIGN.to_string(),
        sched: {
            let mut sched = build_scheduler(compiled, halt, config, w, default_parallel);
            attach(&mut sched, DEFAULT_DESIGN);
            sched
        },
        global: HashMap::new(),
    }];
    let dispatch_latency = shared.telemetry.histogram("serve.dispatch_latency_us");
    let apply = |designs: &mut Vec<DesignRun>, msg: WorkerMsg| match msg {
        WorkerMsg::Register {
            design,
            compiled,
            halt,
            partition_parallel,
        } => {
            let mut sched = build_scheduler(&compiled, &halt, config, w, partition_parallel);
            attach(&mut sched, &design);
            designs.push(DesignRun {
                name: design,
                sched,
                global: HashMap::new(),
            });
        }
        WorkerMsg::Job {
            id,
            design,
            job,
            submitted_at_us,
        } => {
            dispatch_latency.record(shared.telemetry.now_us().saturating_sub(submitted_at_us));
            let Some(run) = designs.iter_mut().find(|d| d.name == design) else {
                // Unreachable through the public API (registration is
                // broadcast under the routing lock before any job can
                // name the design), but a broken invariant must fail
                // one job, not the worker.
                debug_assert!(false, "job for unregistered design `{design}`");
                reject_on_worker(shared, loads, w, id, job.name, {
                    format!("design `{design}` is not registered on worker {w}")
                });
                return;
            };
            // Trace under the pool-global id: the scheduler's queued /
            // admitted / halted events join the pool's submitted /
            // published / delivered ones on one timeline.
            let local = run.sched.submit_traced(job, id);
            run.global.insert(local, id);
        }
        #[cfg(test)]
        WorkerMsg::Die => {
            let _poison = shared.stats.lock();
            panic!("worker {w} killed by test");
        }
    };
    loop {
        // Idle workers block on their queue instead of spinning; a
        // disconnected queue with no work left means shutdown.
        if !designs.iter().any(|d| d.sched.has_work()) {
            match watch.rx.recv() {
                Ok(msg) => apply(&mut designs, msg),
                Err(_) => break,
            }
        }
        // Opportunistically drain whatever else has queued up — mid-run
        // admission packs new jobs into lanes freed this chunk.
        while let Ok(msg) = watch.rx.try_recv() {
            apply(&mut designs, msg);
        }
        // Multiplex: each design with work gets one chunk in turn.
        for run in &mut designs {
            if run.sched.has_work() {
                run.sched.run_for(config.chunk_cycles);
            }
        }
        publish(&mut designs, shared, loads, w);
    }
    debug_assert!(
        designs.iter().all(|d| d.global.is_empty()),
        "every mapped job was published"
    );
}

/// Publishes a chunk's harvested results under their pool-global ids
/// and refreshes the worker's stats snapshot (merged across designs).
fn publish(designs: &mut [DesignRun], shared: &Shared, loads: &[AtomicUsize], w: usize) {
    let mut merged = SchedStats::default();
    // Harvest before touching the results table: chunks that finished
    // nothing must not contend on the mutex that handles block on.
    let mut harvested: Vec<(u64, JobResult)> = Vec::new();
    for run in designs.iter_mut() {
        merged.merge(&run.sched.stats());
        for r in run.sched.take_results() {
            let Some(id) = run.global.remove(&r.id) else {
                // Unreachable (every scheduled job is mapped at
                // submission), but an unmapped result must be dropped,
                // not panic the worker.
                debug_assert!(false, "unmapped result {:?} on worker {w}", r.id);
                continue;
            };
            harvested.push((id, r));
        }
    }
    // Ledger section: the refreshed finished counters, the in-flight
    // decrements, and the assignment-record removals land atomically
    // with respect to stats() readers and unwind guards, so a finishing
    // job is never double-counted, dropped mid-snapshot, or re-failed
    // by a later worker death.
    {
        let mut ledger = lock_or_recover(&shared.stats);
        ledger[w] = merged;
        let mut assigned = lock_or_recover(&shared.assigned);
        for (id, _) in &harvested {
            loads[w].fetch_sub(1, Ordering::AcqRel);
            assigned.remove(id);
        }
    }
    if harvested.is_empty() {
        return;
    }
    shared.occupancy[w].sub(harvested.len() as i64);
    for (id, r) in &harvested {
        let lane = (r.lane != usize::MAX).then_some(r.lane as u64);
        shared
            .telemetry
            .record_event(*id, JobStage::Published, Some(w as u64), lane, None);
    }
    let mut table = lock_or_recover(&shared.results);
    for (id, mut r) in harvested {
        // A tombstone means the handle was dropped unclaimed: discard
        // instead of parking the result forever.
        if !table.abandoned.remove(&id) {
            r.id = JobId(id);
            table.ready.insert(id, r);
        }
    }
    drop(table);
    shared.done.notify_all();
}

/// Publishes a structured [`JobOutcome::Rejected`] result for a job
/// that will never run (unknown design, dead worker, stranded by a
/// worker panic), honoring abandoned-handle tombstones like any other
/// publication.
fn publish_rejected(shared: &Shared, id: u64, name: String, error: String) {
    shared
        .telemetry
        .record_event(id, JobStage::Published, None, None, None);
    let mut table = lock_or_recover(&shared.results);
    if !table.abandoned.remove(&id) {
        table.ready.insert(
            id,
            JobResult {
                id: JobId(id),
                name,
                outputs: Vec::new(),
                outcome: JobOutcome::Rejected,
                error: Some(error),
                cycles: 0,
                admitted_at: 0,
                finished_at: 0,
                lane: usize::MAX,
            },
        );
    }
    drop(table);
    shared.done.notify_all();
}

/// Fails one dispatched job from its owning worker: undoes the
/// dispatch accounting inside a ledger section and publishes a
/// rejection so the job's handle resolves.
fn reject_on_worker(
    shared: &Shared,
    loads: &[AtomicUsize],
    w: usize,
    id: u64,
    name: String,
    error: String,
) {
    {
        let _ledger = lock_or_recover(&shared.stats);
        if lock_or_recover(&shared.assigned).remove(&id).is_some() {
            loads[w].fetch_sub(1, Ordering::AcqRel);
            shared.unrouted.fetch_add(1, Ordering::Relaxed);
        }
    }
    shared.occupancy[w].sub(1);
    publish_rejected(shared, id, name, error);
}

/// The unwind guard armed at the top of every worker thread, owning
/// the worker's submission queue. If the worker panics (an engine bug,
/// a poisoned invariant), the guard runs during unwind and (a) marks
/// the worker dead so dispatch skips it, (b) disconnects the queue so
/// racing submissions fail their sends instead of landing messages
/// nobody will read, then (c) fails every job the worker still owns —
/// queued or mid-run — with a structured rejection, keeping blocked
/// `wait` calls and the pool ledger
/// (`submitted == finished + in_flight`) intact. The (b) → (c) order
/// is load-bearing: a submission is recorded in `assigned` *before*
/// its send, so any job that slips past the disconnect is already
/// visible to the sweep.
struct Deathwatch<'a> {
    shared: &'a Shared,
    loads: &'a [AtomicUsize],
    w: usize,
    rx: Receiver<WorkerMsg>,
}

impl Drop for Deathwatch<'_> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        let w = self.w;
        self.shared.dead[w].store(true, Ordering::Release);
        // Disconnect the queue *now* — struct fields would only drop
        // after this function returns, which would be after the sweep.
        let (_tx, dummy) = mpsc::channel();
        drop(std::mem::replace(&mut self.rx, dummy));
        // Ledger section: strand-sweeping is atomic with respect to
        // stats() readers and racing submissions — a job is failed here
        // exactly when its assignment record is still present.
        let stranded: Vec<(u64, String)> = {
            let _ledger = lock_or_recover(&self.shared.stats);
            let mut assigned = lock_or_recover(&self.shared.assigned);
            let ids: Vec<u64> = assigned
                .iter()
                .filter(|(_, (owner, _))| *owner == w)
                .map(|(&id, _)| id)
                .collect();
            let stranded: Vec<(u64, String)> = ids
                .into_iter()
                .filter_map(|id| assigned.remove(&id).map(|(_, name)| (id, name)))
                .collect();
            for _ in 0..stranded.len() {
                self.loads[w].fetch_sub(1, Ordering::AcqRel);
                self.shared.unrouted.fetch_add(1, Ordering::Relaxed);
            }
            stranded
        };
        if stranded.is_empty() {
            return;
        }
        self.shared.occupancy[w].sub(stranded.len() as i64);
        for (id, name) in stranded {
            publish_rejected(
                self.shared,
                id,
                name,
                format!("worker {w} died before the job could finish"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rteaal_core::Compiler;
    use rteaal_kernels::{KernelConfig, KernelKind};
    use rteaal_sched::JobOutcome;

    const HALT_SRC: &str = "\
circuit H :
  module H :
    input clock : Clock
    input limit : UInt<8>
    output cnt : UInt<8>
    output done : UInt<1>
    reg acc : UInt<8>, clock
    acc <= tail(add(acc, UInt<8>(1)), 1)
    cnt <= acc
    done <= geq(acc, limit)
";

    fn compiled() -> Compiled {
        Compiler::new(KernelConfig::new(KernelKind::Psu))
            .compile_str(HALT_SRC)
            .unwrap()
    }

    fn count_job(limit: u64) -> Job {
        Job::new(format!("count-{limit}"), limit + 8)
            .with_input("limit", limit)
            .with_probe("cnt")
    }

    #[test]
    fn pool_serves_many_clients_worth_of_jobs() {
        let c = compiled();
        for workers in [1usize, 2, 3] {
            let mut cfg = ServeConfig::with_workers(workers);
            cfg.lanes = 2;
            cfg.chunk_cycles = 8;
            let pool = ServerPool::new(&c, cfg, "done").unwrap();
            let limits: Vec<u64> = (0..20).map(|i| 2 + (i * 7) % 23).collect();
            let handles: Vec<JobHandle> =
                limits.iter().map(|&l| pool.submit(count_job(l))).collect();
            for (&limit, h) in limits.iter().zip(&handles) {
                let r = h.wait();
                assert!(r.completed(), "{}", r.name);
                assert_eq!(r.id.0, h.id());
                assert_eq!(r.name, format!("count-{limit}"));
                assert_eq!(r.outputs[0], ("cnt".to_string(), limit + 1));
                assert_eq!(r.cycles, limit + 1);
            }
            // Delivery is exactly-once.
            assert!(handles[0].poll().is_none());
            let stats = pool.shutdown();
            assert_eq!(stats.submitted, limits.len() as u64);
            assert_eq!(stats.merged.completed, limits.len());
            assert_eq!(stats.unclaimed, 0);
            assert_eq!(stats.per_worker.len(), workers);
            if workers > 1 {
                // Least-loaded dispatch spread the corpus around.
                assert!(
                    stats.per_worker.iter().all(|s| s.admitted > 0),
                    "{:?}",
                    stats.per_worker
                );
            }
        }
    }

    #[test]
    fn poison_jobs_come_back_rejected_without_stalling_the_pool() {
        let c = compiled();
        let pool = ServerPool::new(&c, ServeConfig::with_workers(1), "done").unwrap();
        let good_before = pool.submit(count_job(3));
        let bad = pool.submit(Job::new("poison", 10).with_input("nope", 1));
        let good_after = pool.submit(count_job(5));
        let r = bad.wait();
        assert_eq!(r.outcome, JobOutcome::Rejected);
        assert!(r.error.unwrap().contains("nope"));
        assert!(good_before.wait().completed());
        assert!(good_after.wait().completed());
        let stats = pool.shutdown();
        assert_eq!(stats.merged.rejected, 1);
        assert_eq!(stats.merged.completed, 2);
    }

    #[test]
    fn poll_is_nonblocking_and_shutdown_drains() {
        let c = compiled();
        let pool = ServerPool::new(&c, ServeConfig::with_workers(2), "done").unwrap();
        let handles: Vec<JobHandle> = (0..10).map(|i| pool.submit(count_job(4 + i))).collect();
        // Results stay claimable after shutdown (which drains workers).
        let stats = pool.shutdown();
        assert_eq!(stats.merged.completed, 10);
        assert!(stats.utilization() > 0.0);
        for (i, h) in handles.iter().enumerate() {
            let r = h.poll().expect("drained before shutdown returned");
            assert_eq!(r.outputs[0].1, 4 + i as u64 + 1);
        }
    }

    #[test]
    fn dropping_an_unclaimed_handle_frees_its_result_slot() {
        let c = compiled();
        let pool = ServerPool::new(&c, ServeConfig::with_workers(1), "done").unwrap();
        // Dropped before the job can have finished: the publication is
        // discarded via the tombstone.
        drop(pool.submit(count_job(30)));
        // Dropped after the result landed: the slot is freed directly.
        let parked = pool.submit(count_job(2));
        let kept = pool.submit(count_job(25));
        assert!(kept.wait().completed());
        drop(parked);
        let stats = pool.shutdown();
        assert_eq!(stats.merged.completed, 3, "abandoned jobs still ran");
        assert_eq!(stats.unclaimed, 0, "no parked results leak");
    }

    #[test]
    fn registered_designs_route_jobs_by_name() {
        // A second design: the same counter stepping by 2, so results
        // provably come from the right scheduler.
        const DOUBLE_SRC: &str = "\
circuit D :
  module D :
    input clock : Clock
    input limit : UInt<8>
    output cnt : UInt<8>
    output done : UInt<1>
    reg acc : UInt<8>, clock
    acc <= tail(add(acc, UInt<8>(2)), 1)
    cnt <= acc
    done <= geq(acc, limit)
";
        let c = compiled();
        let c2 = Compiler::new(KernelConfig::new(KernelKind::Psu))
            .compile_str(DOUBLE_SRC)
            .unwrap();
        let pool = ServerPool::new(&c, ServeConfig::with_workers(2), "done").unwrap();
        pool.register("double", &c2, "done").unwrap();
        assert_eq!(
            pool.designs(),
            vec![DEFAULT_DESIGN.to_string(), "double".to_string()]
        );
        // Re-registration and unknown halts are refused.
        assert_eq!(
            pool.register("double", &c2, "done"),
            Err(RegisterError::DuplicateDesign("double".to_string()))
        );
        assert_eq!(
            pool.register("broken", &c2, "ghost"),
            Err(RegisterError::UnknownHalt(UnknownSignal(
                "ghost".to_string()
            )))
        );
        // Jobs route by design name; the default is untouched.
        let on_default = pool.submit(count_job(5));
        let on_double = pool.submit_named(Some("double"), count_job(5));
        let unknown = pool.submit_named(Some("nope"), count_job(5));
        let r = on_default.wait();
        assert!(r.completed());
        assert_eq!(r.outputs[0], ("cnt".to_string(), 6), "step-by-1 counter");
        let d = on_double.wait();
        assert!(d.completed());
        // done rises at acc = 6 and is observed one commit later, so
        // the step-by-2 counter harvests 8 after 4 cycles (the
        // step-by-1 counter harvests limit + 1 the same way).
        assert_eq!(d.outputs[0], ("cnt".to_string(), 8), "step-by-2 counter");
        assert_eq!(d.cycles, 4, "halted in 4 cycles instead of 6");
        let u = unknown.wait();
        assert_eq!(u.outcome, JobOutcome::Rejected);
        assert!(u.error.unwrap().contains("unknown design `nope`"));
        let stats = pool.shutdown();
        assert_eq!(stats.designs, 2);
        assert_eq!(stats.merged.completed, 2);
        // The unknown-design rejection counts as finished work: the
        // submitted/finished ledger closes.
        assert_eq!(stats.merged.rejected, 1);
        assert_eq!(stats.submitted, 3);
    }

    #[test]
    fn unknown_halt_signal_is_rejected_up_front() {
        let c = compiled();
        assert_eq!(
            ServerPool::new(&c, ServeConfig::default(), "ghost").err(),
            Some(UnknownSignal("ghost".to_string()))
        );
    }

    #[test]
    fn partition_parallel_jobs_return_bit_identical_results_exactly_once() {
        let c = compiled();
        // Plain pool: the reference results.
        let plain = ServerPool::new(&c, ServeConfig::with_workers(1), "done").unwrap();
        let limits: Vec<u64> = (0..8).map(|i| 2 + (i * 5) % 17).collect();
        let reference: Vec<JobResult> = limits
            .iter()
            .map(|&l| plain.submit(count_job(l)).wait())
            .collect();
        plain.shutdown();
        // Partition-parallel pool: one big job's cycle spans several
        // engine threads on worker 0.
        let mut cfg = ServeConfig::with_workers(2);
        cfg.partitions = 2;
        cfg.max_replication = 8.0; // the tiny counter replicates freely
        let pool = ServerPool::new(&c, cfg, "done").unwrap();
        assert_eq!(pool.partition_parallel(DEFAULT_DESIGN), Some(true));
        assert_eq!(pool.partition_parallel("nope"), None);
        let handles: Vec<JobHandle> = limits.iter().map(|&l| pool.submit(count_job(l))).collect();
        for (r, h) in reference.iter().zip(&handles) {
            let p = h.wait();
            assert_eq!(p.outcome, r.outcome);
            assert_eq!(p.outputs, r.outputs, "{}", p.name);
            assert_eq!(p.cycles, r.cycles);
            // Exactly-once delivery: the claim drained the slot.
            assert!(h.poll().is_none());
        }
        let stats = pool.shutdown();
        assert_eq!(stats.merged.completed, limits.len());
        // Every partition-parallel job ran on worker 0; worker 1 only
        // idles (its stats never move).
        assert_eq!(stats.per_worker[1].admitted, 0);
        assert_eq!(
            stats.per_worker[0].partition_busy_cycles.len(),
            2,
            "worker 0 tracked both partitions"
        );
    }

    #[test]
    fn heavy_replication_opts_a_design_out_of_partition_parallel() {
        let c = compiled();
        let mut cfg = ServeConfig::with_workers(2);
        cfg.partitions = 2;
        cfg.max_replication = 0.0; // nothing can qualify
        let pool = ServerPool::new(&c, cfg, "done").unwrap();
        assert_eq!(pool.partition_parallel(DEFAULT_DESIGN), Some(false));
        // Jobs still serve correctly through the classic path.
        let r = pool.submit(count_job(4)).wait();
        assert!(r.completed());
        assert_eq!(r.outputs[0], ("cnt".to_string(), 5));
        pool.shutdown();
    }

    #[test]
    fn budgets_are_clamped_to_the_server_cap() {
        let c = compiled();
        let mut cfg = ServeConfig::with_workers(1);
        cfg.max_budget = 6;
        let pool = ServerPool::new(&c, cfg, "done").unwrap();
        // limit 200 is unreachable; the clamped budget evicts at 6.
        let h = pool.submit(
            Job::new("runaway", u64::MAX)
                .with_input("limit", 200)
                .with_probe("cnt"),
        );
        let r = h.wait();
        assert_eq!(r.outcome, JobOutcome::Evicted);
        assert_eq!(r.cycles, 6);
        pool.shutdown();
    }

    #[test]
    fn accounting_closes_at_every_snapshot_under_concurrent_polling() {
        // Hammer stats() from another thread while jobs flow: every
        // snapshot must satisfy the ledger identity (stats() itself
        // debug-asserts it; this test also checks from outside).
        let c = compiled();
        let mut cfg = ServeConfig::with_workers(2);
        cfg.lanes = 2;
        cfg.chunk_cycles = 4;
        let pool = Arc::new(ServerPool::new(&c, cfg, "done").unwrap());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let poller = {
            let (pool, stop) = (Arc::clone(&pool), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut snapshots = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let s = pool.stats();
                    assert!(
                        s.accounting_balanced(),
                        "submitted {} != {} + {} + {} + in_flight {}",
                        s.submitted,
                        s.merged.completed,
                        s.merged.evicted,
                        s.merged.rejected,
                        s.in_flight
                    );
                    snapshots += 1;
                }
                snapshots
            })
        };
        let handles: Vec<JobHandle> = (0..40)
            .map(|i| {
                if i % 10 == 9 {
                    // Unknown designs exercise the unrouted leg.
                    pool.submit_named(Some("ghost"), count_job(3))
                } else {
                    pool.submit(count_job(2 + (i * 7) % 23))
                }
            })
            .collect();
        for h in &handles {
            h.wait();
        }
        stop.store(true, Ordering::Relaxed);
        let snapshots = poller.join().unwrap();
        assert!(snapshots > 0, "the poller actually observed snapshots");
        let final_stats = pool.stats();
        assert!(final_stats.accounting_balanced());
        assert_eq!(final_stats.submitted, 40);
        assert_eq!(final_stats.merged.rejected, 4);
    }

    #[test]
    fn a_killed_worker_fails_its_jobs_and_the_pool_stays_drainable() {
        // Satellite regression: a worker panicking mid-corpus (here:
        // while holding the ledger lock, the worst case — the lock is
        // poisoned *and* every job it owns is stranded) must neither
        // wedge `wait` nor panic the pool front end.
        let c = compiled();
        let mut cfg = ServeConfig::with_workers(1);
        cfg.lanes = 2;
        cfg.chunk_cycles = 8;
        let pool = ServerPool::new(&c, cfg, "done").unwrap();
        // One job completes normally first, so the corpus provably
        // spans the death.
        assert!(pool.submit(count_job(3)).wait().completed());
        // Kill the worker, then keep submitting: the Die message
        // precedes the jobs in its queue, so none of them can run.
        lock_or_recover(&pool.routing).senders[0]
            .send(WorkerMsg::Die)
            .unwrap();
        let doomed: Vec<JobHandle> = (0..6).map(|i| pool.submit(count_job(4 + i))).collect();
        for h in &doomed {
            // Every handle resolves — no wedge — with a structured
            // rejection, whichever race it lost (dead-flag dispatch,
            // failed send, or the unwind guard's strand sweep).
            let r = h.wait();
            assert_eq!(r.outcome, JobOutcome::Rejected, "{}", r.name);
            let err = r.error.expect("rejections carry a reason");
            assert!(
                err.contains("worker") || err.contains("no live worker"),
                "unexpected reason: {err}"
            );
        }
        // The front end still works over the poisoned ledger lock, and
        // the accounting identity still closes: 1 completed + 6
        // rejected + 0 in flight.
        let stats = pool.stats();
        assert!(stats.accounting_balanced());
        assert_eq!(stats.submitted, 7);
        assert_eq!(stats.merged.completed, 1);
        assert_eq!(stats.merged.rejected, 6);
        assert_eq!(stats.in_flight, 0);
        // Shutdown joins the panicked worker without panicking itself.
        let final_stats = pool.shutdown();
        assert_eq!(final_stats.merged.rejected, 6);
    }

    #[test]
    fn surviving_workers_keep_serving_after_one_dies() {
        let c = compiled();
        let mut cfg = ServeConfig::with_workers(2);
        cfg.lanes = 2;
        cfg.chunk_cycles = 8;
        let pool = ServerPool::new(&c, cfg, "done").unwrap();
        lock_or_recover(&pool.routing).senders[0]
            .send(WorkerMsg::Die)
            .unwrap();
        // Wait for the unwind guard to mark the worker dead so the
        // whole corpus provably dispatches against a one-worker pool.
        while !pool.shared.dead[0].load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let handles: Vec<JobHandle> = (0..10).map(|i| pool.submit(count_job(2 + i))).collect();
        for (i, h) in handles.iter().enumerate() {
            let r = h.wait();
            assert!(r.completed(), "{}", r.name);
            assert_eq!(r.outputs[0].1, 2 + i as u64 + 1);
        }
        // Registration also survives: the design lands on worker 1 and
        // serves jobs, while the dead worker's send is skipped.
        pool.register("again", &c, "done").unwrap();
        assert!(pool
            .submit_named(Some("again"), count_job(5))
            .wait()
            .completed());
        let stats = pool.shutdown();
        assert!(stats.accounting_balanced());
        assert_eq!(stats.merged.completed, 11);
        assert_eq!(stats.per_worker[1].admitted, 11, "all work moved to w1");
    }

    #[test]
    fn specialized_pools_serve_bit_identical_results() {
        // The serve-layer opt-in for the specialization tier: an Auto
        // pool (lanes >= 32, so 1-bit slots bit-pack) must be
        // indistinguishable from an Off pool on a whole corpus.
        let c = compiled();
        let limits: Vec<u64> = (0..12).map(|i| 2 + (i * 7) % 23).collect();
        let run = |spec: Specialization| -> Vec<JobResult> {
            let mut cfg = ServeConfig::with_workers(2);
            cfg.lanes = 64;
            cfg.chunk_cycles = 8;
            cfg.specialization = spec;
            let pool = ServerPool::new(&c, cfg, "done").unwrap();
            let handles: Vec<JobHandle> =
                limits.iter().map(|&l| pool.submit(count_job(l))).collect();
            let results = handles.iter().map(|h| h.wait()).collect();
            pool.shutdown();
            results
        };
        let plain = run(Specialization::Off);
        let spec = run(Specialization::Auto);
        for (p, s) in plain.iter().zip(&spec) {
            assert_eq!(p.outcome, s.outcome, "{}", p.name);
            assert_eq!(p.outputs, s.outputs, "{}", p.name);
            assert_eq!(p.cycles, s.cycles, "{}", p.name);
        }
    }

    #[test]
    fn timelines_and_metrics_cover_the_whole_job_lifecycle() {
        let c = compiled();
        let mut cfg = ServeConfig::with_workers(2);
        cfg.lanes = 2;
        cfg.chunk_cycles = 8;
        let pool = ServerPool::new(&c, cfg, "done").unwrap();
        let handles: Vec<JobHandle> = (1u64..=6).map(|k| pool.submit(count_job(k))).collect();
        for h in &handles {
            assert!(h.wait().completed());
        }
        // Every job's timeline has all six stages, in order, with
        // non-decreasing timestamps and consistent attribution.
        use rteaal_telemetry::ALL_STAGES;
        for h in &handles {
            let t = pool.timeline(h.id());
            let stages: Vec<_> = t.iter().map(|e| e.stage).collect();
            assert_eq!(stages, ALL_STAGES.to_vec(), "job {}", h.id());
            assert!(t.windows(2).all(|w| w[0].at_us <= w[1].at_us));
            let worker = t[0].worker.expect("submit records the worker");
            // Queued/admitted/halted/published all happened on the
            // worker submit dispatched to.
            assert!(t[1..5].iter().all(|e| e.worker == Some(worker)));
            // Admitted, halted, and published agree on the lane.
            assert!(t[2].lane.is_some());
            assert_eq!(t[2].lane, t[3].lane);
            assert_eq!(t[3].lane, t[4].lane);
        }
        let snap = pool.metrics().snapshot();
        assert_eq!(snap.counter("sched.completed"), 6);
        assert_eq!(snap.counter("sched.admitted"), 6);
        assert_eq!(
            snap.counter("sched.busy_cycles.default"),
            pool.stats().merged.busy_lane_cycles
        );
        let dispatch = snap.histogram("serve.dispatch_latency_us").unwrap();
        assert_eq!(dispatch.hist.count, 6);
        // Quiescent: occupancy gauges and queue depths are back to zero.
        assert_eq!(snap.gauge("serve.worker_inflight.w0"), 0);
        assert_eq!(snap.gauge("serve.worker_inflight.w1"), 0);
        assert_eq!(pool.stats().queue_depth, 0);
        assert_eq!(pool.stats().in_flight, 0);
        pool.shutdown();
    }
}
