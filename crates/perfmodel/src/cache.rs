//! Set-associative cache simulation.
//!
//! The paper's evaluation is dominated by cache behavior: I-cache pressure
//! from unrolled kernels (Tables 5–6), D-cache traffic from the `OIM`
//! arrays, and LLC capacity effects (Figure 21). This module provides an
//! LRU set-associative [`Cache`] and a three-level [`MemSim`] hierarchy
//! (split L1I/L1D, unified L2, unified LLC) that the instrumented
//! simulators feed with their actual instruction-fetch and data reference
//! streams — miss counts are *measured*, only latencies are modeled.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// A config with 64-byte lines.
    pub const fn new(size_bytes: usize, ways: usize) -> Self {
        CacheConfig {
            size_bytes,
            line_bytes: 64,
            ways,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / self.line_bytes / self.ways).max(1)
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses (fills from the next level).
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Misses per kilo-*events* (callers supply the event count, e.g.
    /// dynamic instructions for MPKI).
    pub fn mpk(&self, events: u64) -> f64 {
        if events == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / events as f64
        }
    }
}

/// An LRU set-associative cache over 64-bit byte addresses.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// Per-set tag stacks, most-recently-used first. 0 = invalid.
    sets: Vec<Vec<u64>>,
    set_mask: u64,
    line_shift: u32,
    /// Counters.
    pub stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = cfg.sets();
        Cache {
            cfg,
            sets: vec![Vec::with_capacity(cfg.ways); sets],
            set_mask: sets as u64 - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accesses `addr`; returns `true` on hit. Misses install the line
    /// (the caller forwards the miss to the next level).
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let line = addr >> self.line_shift;
        // Sets are a power of two in every real config; a non-power-of-two
        // count degrades to modulo.
        let set_idx = if (self.set_mask + 1).is_power_of_two() {
            (line & self.set_mask) as usize
        } else {
            (line % (self.set_mask + 1)) as usize
        };
        let tag = line + 1; // +1 so 0 stays "invalid"
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.insert(0, t);
            true
        } else {
            self.stats.misses += 1;
            if set.len() == self.cfg.ways {
                set.pop();
            }
            set.insert(0, tag);
            false
        }
    }

    /// Drops all contents (keeps stats).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Zeroes the counters.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

/// Reference-stream statistics accumulated by [`MemSim`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Instruction fetch accesses/misses (L1I).
    pub l1i: CacheStats,
    /// Data accesses/misses (L1D).
    pub l1d: CacheStats,
    /// Unified L2.
    pub l2: CacheStats,
    /// Unified LLC.
    pub llc: CacheStats,
    /// Fills that went all the way to DRAM.
    pub mem_fills: u64,
}

/// A split-L1, unified-L2/LLC hierarchy fed with fetch/load/store streams.
///
/// Data-side misses trigger a next-line prefetch (degree 2) into the L1D,
/// modeling the stride prefetcher the paper credits for the mostly
/// sequential `OIM` array traffic (§7.2: "The OIM accesses are mostly
/// sequential, allowing them to be efficiently handled by the stride
/// prefetcher"). Instruction fetches are *not* prefetched past the demand
/// stream — fetch latency is precisely the frontend bottleneck the paper
/// measures.
#[derive(Debug, Clone)]
pub struct MemSim {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    mem_fills: u64,
    /// D-side next-line prefetch degree (0 disables).
    pub prefetch_degree: u32,
}

impl MemSim {
    /// Builds the hierarchy from per-level configs.
    pub fn new(l1i: CacheConfig, l1d: CacheConfig, l2: CacheConfig, llc: CacheConfig) -> Self {
        MemSim {
            l1i: Cache::new(l1i),
            l1d: Cache::new(l1d),
            l2: Cache::new(l2),
            llc: Cache::new(llc),
            mem_fills: 0,
            prefetch_degree: 2,
        }
    }

    /// Disables the D-side prefetcher (ablation hook).
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch_degree = 0;
        self
    }

    /// An instruction fetch at `addr`.
    pub fn fetch(&mut self, addr: u64) {
        if !self.l1i.access(addr) {
            self.fill(addr);
        }
    }

    /// A data load at `addr`.
    pub fn load(&mut self, addr: u64) {
        if !self.l1d.access(addr) {
            self.fill(addr);
            // Next-line prefetches install lines without counting as
            // demand misses (they overlap with the demand fill).
            let line = self.l1d.config().line_bytes as u64;
            for k in 1..=self.prefetch_degree as u64 {
                let pf = addr + k * line;
                let hit = self.l1d.access(pf);
                self.l1d.stats.accesses -= 1;
                if !hit {
                    self.l1d.stats.misses -= 1;
                    self.l2.access(pf);
                    self.l2.stats.accesses -= 1;
                }
            }
        }
    }

    /// A data store at `addr` (write-allocate).
    pub fn store(&mut self, addr: u64) {
        self.load(addr);
    }

    fn fill(&mut self, addr: u64) {
        if !self.l2.access(addr) && !self.llc.access(addr) {
            self.mem_fills += 1;
        }
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1i: self.l1i.stats,
            l1d: self.l1d.stats,
            l2: self.l2.stats,
            llc: self.llc.stats,
            mem_fills: self.mem_fills,
        }
    }

    /// Zeroes all counters (contents stay warm).
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
        self.mem_fills = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheConfig::new(1024, 2));
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert!(c.access(0x7f)); // same 64B line
        assert!(!c.access(0x80)); // next line
        assert_eq!(c.stats.accesses, 4);
        assert_eq!(c.stats.misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way, enough lines to conflict in one set: set count =
        // 1024/64/2 = 8 sets; lines 0, 8, 16 (in units of 64B) map to set 0.
        let mut c = Cache::new(CacheConfig::new(1024, 2));
        let line = |k: u64| k * 8 * 64; // stride of 8 lines = same set
        assert!(!c.access(line(0)));
        assert!(!c.access(line(1)));
        assert!(!c.access(line(2))); // evicts line(0)
        assert!(!c.access(line(0))); // line(0) gone
        assert!(c.access(line(2))); // still resident
    }

    #[test]
    fn lru_touch_refreshes() {
        let mut c = Cache::new(CacheConfig::new(1024, 2));
        let line = |k: u64| k * 8 * 64;
        c.access(line(0));
        c.access(line(1));
        c.access(line(0)); // refresh 0: now 1 is LRU
        c.access(line(2)); // evicts 1
        assert!(c.access(line(0)));
        assert!(!c.access(line(1)));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let cfg = CacheConfig::new(4096, 4);
        let mut c = Cache::new(cfg);
        // Stream over 4x the capacity twice: second pass still misses.
        let lines = 4 * cfg.size_bytes / cfg.line_bytes;
        for _ in 0..2 {
            for k in 0..lines {
                c.access((k * cfg.line_bytes) as u64);
            }
        }
        assert!(c.stats.miss_ratio() > 0.9);
    }

    #[test]
    fn working_set_fitting_in_cache_hits() {
        let cfg = CacheConfig::new(4096, 4);
        let mut c = Cache::new(cfg);
        let lines = cfg.size_bytes / cfg.line_bytes / 2;
        for _ in 0..10 {
            for k in 0..lines {
                c.access((k * cfg.line_bytes) as u64);
            }
        }
        // Only the first pass misses.
        assert_eq!(c.stats.misses as usize, lines);
    }

    #[test]
    fn hierarchy_forwards_misses() {
        let mut m = MemSim::new(
            CacheConfig::new(512, 2),
            CacheConfig::new(512, 2),
            CacheConfig::new(2048, 4),
            CacheConfig::new(8192, 8),
        )
        .without_prefetch();
        m.load(0x1000);
        let s = m.stats();
        assert_eq!(s.l1d.misses, 1);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(s.llc.misses, 1);
        assert_eq!(s.mem_fills, 1);
        // Second access hits in L1D, nothing propagates.
        m.load(0x1000);
        let s = m.stats();
        assert_eq!(s.l1d.accesses, 2);
        assert_eq!(s.l2.accesses, 1);
    }

    #[test]
    fn split_l1_shares_l2() {
        let mut m = MemSim::new(
            CacheConfig::new(512, 2),
            CacheConfig::new(512, 2),
            CacheConfig::new(4096, 4),
            CacheConfig::new(8192, 8),
        )
        .without_prefetch();
        m.fetch(0x2000);
        m.load(0x2000); // misses L1D but hits L2 (filled by the fetch)
        let s = m.stats();
        assert_eq!(s.l1i.misses, 1);
        assert_eq!(s.l1d.misses, 1);
        assert_eq!(s.l2.accesses, 2);
        assert_eq!(s.l2.misses, 1);
    }

    #[test]
    fn prefetcher_hides_sequential_misses() {
        let cfg = CacheConfig::new(1024, 2);
        let mut with = MemSim::new(
            cfg,
            cfg,
            CacheConfig::new(8192, 4),
            CacheConfig::new(65536, 8),
        );
        let mut without = with.clone().without_prefetch();
        // A long sequential stream (the OIM traversal pattern).
        for k in 0..4096u64 {
            with.load(0x1000_0000 + k * 4);
            without.load(0x1000_0000 + k * 4);
        }
        let (w, wo) = (with.stats(), without.stats());
        assert!(
            w.l1d.misses * 2 <= wo.l1d.misses,
            "{} vs {}",
            w.l1d.misses,
            wo.l1d.misses
        );
        // Random pointer chasing gets no benefit.
        let mut with_r = MemSim::new(
            cfg,
            cfg,
            CacheConfig::new(8192, 4),
            CacheConfig::new(65536, 8),
        );
        let mut x = 1u64;
        let mut misses0 = 0;
        for _ in 0..4096 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            with_r.load(0x2000_0000 + (x % (1 << 22)));
            misses0 += 1;
        }
        assert!(with_r.stats().l1d.misses > misses0 / 2);
    }

    #[test]
    fn mpki_helper() {
        let s = CacheStats {
            accesses: 10_000,
            misses: 80,
        };
        assert!((s.mpk(1_000_000) - 0.08).abs() < 1e-12);
        assert!((s.miss_ratio() - 0.008).abs() < 1e-12);
    }
}
