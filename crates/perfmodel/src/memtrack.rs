//! Peak-memory measurement via a counting global allocator.
//!
//! The paper reports peak compilation memory (Figures 8 and 15, Table 7b).
//! To *measure* rather than model it, binaries that want these numbers
//! install [`CountingAlloc`] as their global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: rteaal_perfmodel::memtrack::CountingAlloc =
//!     rteaal_perfmodel::memtrack::CountingAlloc;
//! ```
//!
//! and wrap each compile phase in [`measure`], which returns the phase's
//! result together with the peak live-byte delta during the phase. When
//! the allocator is not installed the deltas are zero and
//! [`is_active`] reports `false` — the harness prints "n/a" instead of a
//! misleading zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-backed allocator that tracks live and peak bytes.
pub struct CountingAlloc;

// SAFETY: delegates all allocation to `System`; only bookkeeping is added.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; forwarded as-is.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds `GlobalAlloc::dealloc`'s contract; forwarded as-is.
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract; forwarded as-is.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            let old = layout.size();
            if new_size >= old {
                let live = LIVE.fetch_add(new_size - old, Ordering::Relaxed) + (new_size - old);
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(old - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Live heap bytes right now (0 unless the allocator is installed).
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Whether the counting allocator appears to be installed.
pub fn is_active() -> bool {
    LIVE.load(Ordering::Relaxed) != 0
}

/// Runs `f` and returns `(result, peak_delta_bytes)`: the high-water mark
/// of live bytes during `f`, relative to the live bytes at entry.
///
/// Not reentrant: concurrent `measure` calls see each other's
/// allocations (the paper's compile-phase measurements are sequential).
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let start = LIVE.load(Ordering::Relaxed);
    PEAK.store(start, Ordering::Relaxed);
    let r = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (r, peak.saturating_sub(start))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so the counters
    // must stay quiet and `measure` must degrade gracefully.
    #[test]
    fn inactive_allocator_reports_zero() {
        let (value, peak) = measure(|| vec![0u8; 1 << 20].len());
        assert_eq!(value, 1 << 20);
        assert_eq!(peak, 0);
        assert!(!is_active());
    }

    #[test]
    fn bookkeeping_math() {
        // Exercise the counters directly (as the allocator hooks would).
        LIVE.store(100, Ordering::Relaxed);
        PEAK.store(100, Ordering::Relaxed);
        let live = LIVE.fetch_add(50, Ordering::Relaxed) + 50;
        PEAK.fetch_max(live, Ordering::Relaxed);
        assert_eq!(PEAK.load(Ordering::Relaxed), 150);
        LIVE.fetch_sub(150, Ordering::Relaxed);
        assert_eq!(LIVE.load(Ordering::Relaxed), 0);
        PEAK.store(0, Ordering::Relaxed);
    }
}
