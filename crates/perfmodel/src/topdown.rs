//! Top-down pipeline-slot analysis (paper §3/Figure 7, after Yasin 2014).
//!
//! Classifies pipeline slots into *frontend bound*, *bad speculation*, and
//! *others* (backend bound + retiring), matching the categories the paper
//! reports. Miss counts come from the measured [`MemStats`] streams; this
//! module only supplies the latency model that converts them into stall
//! cycles on a given [`Machine`].

use crate::cache::MemStats;
use crate::machine::Machine;
use serde::{Deserialize, Serialize};

/// Execution profile produced by an instrumented simulator run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecProfile {
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Dynamic branches executed.
    pub branches: u64,
    /// The workload's *intrinsic* branch misprediction rate in `[0, 1]`
    /// (before the machine's predictor factor): data-dependent dispatch
    /// branches are unpredictable, loop branches are nearly free.
    pub branch_entropy: f64,
    /// Measured cache reference/miss counts.
    pub mem: MemStats,
}

/// The top-down slot breakdown plus derived metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopDown {
    /// Fraction of slots lost to instruction-fetch stalls.
    pub frontend_bound: f64,
    /// Fraction of slots lost to branch misspeculation.
    pub bad_speculation: f64,
    /// Fraction of slots lost to data-side stalls.
    pub backend_bound: f64,
    /// Fraction of slots doing useful work.
    pub retiring: f64,
    /// Modeled core cycles.
    pub cycles: f64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Modeled wall-clock seconds at the machine's nominal frequency.
    pub seconds: f64,
    /// Effective branch misprediction rate after the machine's predictor.
    pub branch_miss_rate: f64,
    /// L1 I-cache misses per kilo-instruction.
    pub l1i_mpki: f64,
    /// L1 D-cache misses per kilo-instruction.
    pub l1d_mpki: f64,
}

impl TopDown {
    /// "Others" as the paper's Figure 7 aggregates it (backend + retiring).
    pub fn others(&self) -> f64 {
        self.backend_bound + self.retiring
    }
}

/// Fraction of an L1-D miss's fill latency hidden by memory-level
/// parallelism in the model.
const MLP_OVERLAP: f64 = 0.6;

/// Analyzes a profile on a machine.
///
/// The model charges each L1I miss its full fill latency (fetch stalls
/// serialize the frontend: §7.2 attributes >90% of Xeon frontend stalls to
/// fetch latency), charges L1D misses `1 - MLP_OVERLAP` of theirs
/// (out-of-order cores overlap data misses), and charges each mispredicted
/// branch the machine's penalty.
pub fn analyze(profile: &ExecProfile, machine: &Machine) -> TopDown {
    let m = &profile.mem;
    // Average fill latency for an L1 miss, from where fills were served.
    let fills = (m.l1i.misses + m.l1d.misses).max(1);
    let l2_hits = m.l2.accesses.saturating_sub(m.l2.misses);
    let llc_hits = m.llc.accesses.saturating_sub(m.llc.misses);
    let total_fill_cycles = l2_hits as f64 * machine.l2_latency as f64
        + llc_hits as f64 * machine.llc_latency as f64
        + m.mem_fills as f64 * machine.mem_latency as f64;
    let avg_fill = total_fill_cycles / fills as f64;

    let frontend_cycles = m.l1i.misses as f64 * avg_fill;
    let backend_cycles = m.l1d.misses as f64 * avg_fill * (1.0 - MLP_OVERLAP);
    let miss_rate = (profile.branch_entropy * machine.predictor_factor).clamp(0.0, 1.0);
    let branch_misses = profile.branches as f64 * miss_rate;
    let badspec_cycles = branch_misses * machine.branch_penalty;
    let base_cycles = profile.instructions as f64 / machine.width as f64;

    let cycles = (base_cycles + frontend_cycles + backend_cycles + badspec_cycles).max(1.0);
    let slots = cycles * machine.width as f64;
    let retiring = profile.instructions as f64 / slots;
    let frontend_bound = frontend_cycles * machine.width as f64 / slots;
    let bad_speculation = badspec_cycles * machine.width as f64 / slots;
    let backend_bound = (1.0 - retiring - frontend_bound - bad_speculation).max(0.0);
    TopDown {
        frontend_bound,
        bad_speculation,
        backend_bound,
        retiring,
        cycles,
        ipc: profile.instructions as f64 / cycles,
        seconds: cycles / (machine.ghz * 1e9),
        branch_miss_rate: miss_rate,
        l1i_mpki: m.l1i.mpk(profile.instructions),
        l1d_mpki: m.l1d.mpk(profile.instructions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;

    fn profile(
        instr: u64,
        l1i_miss: u64,
        l1d_miss: u64,
        branches: u64,
        entropy: f64,
    ) -> ExecProfile {
        ExecProfile {
            instructions: instr,
            branches,
            branch_entropy: entropy,
            mem: MemStats {
                l1i: CacheStats {
                    accesses: instr,
                    misses: l1i_miss,
                },
                l1d: CacheStats {
                    accesses: instr / 3,
                    misses: l1d_miss,
                },
                l2: CacheStats {
                    accesses: l1i_miss + l1d_miss,
                    misses: (l1i_miss + l1d_miss) / 2,
                },
                llc: CacheStats {
                    accesses: (l1i_miss + l1d_miss) / 2,
                    misses: (l1i_miss + l1d_miss) / 8,
                },
                mem_fills: (l1i_miss + l1d_miss) / 8,
            },
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let td = analyze(
            &profile(1_000_000, 5_000, 20_000, 100_000, 0.2),
            &Machine::intel_xeon(),
        );
        let sum = td.frontend_bound + td.bad_speculation + td.backend_bound + td.retiring;
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        assert!(td.ipc > 0.0 && td.ipc <= Machine::intel_xeon().width as f64);
    }

    #[test]
    fn icache_misses_drive_frontend_bound() {
        let clean = analyze(
            &profile(1_000_000, 100, 1_000, 1000, 0.0),
            &Machine::intel_xeon(),
        );
        let dirty = analyze(
            &profile(1_000_000, 80_000, 1_000, 1000, 0.0),
            &Machine::intel_xeon(),
        );
        assert!(
            dirty.frontend_bound > 0.5,
            "frontend = {}",
            dirty.frontend_bound
        );
        assert!(clean.frontend_bound < 0.1);
        assert!(dirty.ipc < clean.ipc);
    }

    #[test]
    fn xeon_suffers_more_than_core_on_same_stream() {
        // The Core/Xeon contrast of §7.2: same misses, lower LLC latency.
        let p = profile(1_000_000, 60_000, 5_000, 1000, 0.0);
        let xeon = analyze(&p, &Machine::intel_xeon());
        let core = analyze(&p, &Machine::intel_core());
        assert!(xeon.frontend_bound > core.frontend_bound);
        assert!(xeon.cycles > core.cycles);
    }

    #[test]
    fn branchy_code_cheap_on_graviton() {
        // Verilator-style branchy dispatch: entropy 0.22.
        let p = profile(1_000_000, 1_000, 5_000, 250_000, 0.22);
        let xeon = analyze(&p, &Machine::intel_xeon());
        let aws = analyze(&p, &Machine::aws_graviton4());
        assert!((xeon.branch_miss_rate - 0.22).abs() < 1e-9);
        assert!((aws.branch_miss_rate - 0.0022).abs() < 1e-9);
        assert!(xeon.bad_speculation > 10.0 * aws.bad_speculation);
    }

    #[test]
    fn mpki_reported() {
        let td = analyze(
            &profile(1_000_000, 80_000, 40_000, 0, 0.0),
            &Machine::intel_core(),
        );
        assert!((td.l1i_mpki - 80.0).abs() < 1e-9);
        assert!((td.l1d_mpki - 40.0).abs() < 1e-9);
    }

    #[test]
    fn others_aggregate() {
        let td = analyze(
            &profile(1_000_000, 5_000, 20_000, 100_000, 0.1),
            &Machine::amd_ryzen(),
        );
        assert!((td.others() - (td.backend_bound + td.retiring)).abs() < 1e-12);
    }
}
