//! Host machine models (paper §7.1, Table 2).
//!
//! Four machines spanning two ISAs (x86, Arm), three vendors, and desktop/
//! server platforms. Cache geometries come straight from Table 2; the
//! latency/penalty parameters encode the microarchitectural contrasts the
//! paper leans on:
//!
//! - the Intel Xeon's last-level-cache latency is "roughly twice that of
//!   the Intel Core" (§7.2), which is why highly unrolled kernels go
//!   80% frontend-bound on the Xeon but only 15–25% on the Core;
//! - the AWS Graviton 4 resolves branches much better on Verilator-style
//!   branchy code (§7.5: 22% → 0.22% misprediction), modeled as a lower
//!   effective branch penalty;
//! - the AMD part's small 8 MB LLC is what lets compact rolled kernels
//!   beat straight-line code on 8-core SmallBOOM (§7.5, Figure 21).

use crate::cache::{CacheConfig, MemSim};
use serde::{Deserialize, Serialize};

/// One host machine: cache geometry plus pipeline parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Display name.
    pub name: String,
    /// Short id used in tables (`core`, `xeon`, `amd`, `aws`).
    pub id: String,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified per-core L2.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// Issue width (pipeline slots per cycle for top-down accounting).
    pub width: u32,
    /// L2 hit latency (cycles).
    pub l2_latency: u32,
    /// LLC hit latency (cycles) — the Core/Xeon contrast lives here.
    pub llc_latency: u32,
    /// DRAM latency (cycles).
    pub mem_latency: u32,
    /// Branch misprediction penalty (cycles).
    pub branch_penalty: f64,
    /// Predictor quality factor: multiplies a workload's intrinsic
    /// misprediction rate (Graviton 4 resolves Verilator-style branchy
    /// code ~100x better, §7.5: 22% -> 0.22%).
    pub predictor_factor: f64,
    /// Nominal clock in GHz (wall-clock conversions for reports).
    pub ghz: f64,
}

impl Machine {
    /// Intel Core i9-13900K (desktop, x86).
    pub fn intel_core() -> Self {
        Machine {
            name: "Intel Core i9-13900K".into(),
            id: "core".into(),
            l1i: CacheConfig::new(32 * 1024, 8),
            l1d: CacheConfig::new(48 * 1024, 12),
            l2: CacheConfig::new(2 * 1024 * 1024, 16),
            llc: CacheConfig::new(36 * 1024 * 1024, 12),
            width: 6,
            l2_latency: 15,
            llc_latency: 33,
            mem_latency: 220,
            branch_penalty: 17.0,
            predictor_factor: 1.0,
            ghz: 5.8,
        }
    }

    /// Intel Xeon Gold 5512U (server, x86). LLC latency ~2x the Core's
    /// (§7.2, [chipsandcheese 2025]).
    pub fn intel_xeon() -> Self {
        Machine {
            name: "Intel Xeon Gold 5512U".into(),
            id: "xeon".into(),
            l1i: CacheConfig::new(32 * 1024, 8),
            l1d: CacheConfig::new(48 * 1024, 12),
            l2: CacheConfig::new(2 * 1024 * 1024, 16),
            llc: CacheConfig::new(52 * 1024 * 1024 + 512 * 1024, 12), // 52.5 MB
            width: 6,
            l2_latency: 16,
            llc_latency: 70,
            mem_latency: 280,
            branch_penalty: 17.0,
            predictor_factor: 1.0,
            ghz: 3.7,
        }
    }

    /// AMD Ryzen 7 4800HS (laptop, x86). Small 8 MB LLC.
    pub fn amd_ryzen() -> Self {
        Machine {
            name: "AMD Ryzen 7 4800HS".into(),
            id: "amd".into(),
            l1i: CacheConfig::new(32 * 1024, 8),
            l1d: CacheConfig::new(32 * 1024, 8),
            l2: CacheConfig::new(512 * 1024, 8),
            llc: CacheConfig::new(8 * 1024 * 1024, 16),
            width: 5,
            l2_latency: 12,
            llc_latency: 38,
            mem_latency: 260,
            branch_penalty: 18.0,
            predictor_factor: 0.9,
            ghz: 4.2,
        }
    }

    /// AWS Graviton 4 (server, Arm). Large L1s; branchy code mispredicts
    /// far less here (§7.5).
    pub fn aws_graviton4() -> Self {
        Machine {
            name: "AWS Graviton 4".into(),
            id: "aws".into(),
            l1i: CacheConfig::new(64 * 1024, 8),
            l1d: CacheConfig::new(64 * 1024, 8),
            l2: CacheConfig::new(2 * 1024 * 1024, 16),
            llc: CacheConfig::new(36 * 1024 * 1024, 12),
            width: 8,
            l2_latency: 13,
            llc_latency: 40,
            mem_latency: 240,
            branch_penalty: 16.0,
            predictor_factor: 0.01,
            ghz: 2.8,
        }
    }

    /// All four evaluation machines, in the paper's column order.
    pub fn all() -> Vec<Machine> {
        vec![
            Machine::intel_core(),
            Machine::intel_xeon(),
            Machine::amd_ryzen(),
            Machine::aws_graviton4(),
        ]
    }

    /// Looks a machine up by id.
    pub fn by_id(id: &str) -> Option<Machine> {
        Machine::all().into_iter().find(|m| m.id == id)
    }

    /// A copy with the LLC restricted to `bytes` (the Intel CAT analog
    /// used by Figure 21).
    pub fn with_llc_capacity(&self, bytes: usize) -> Machine {
        let mut m = self.clone();
        m.llc.size_bytes = bytes;
        m.name = format!(
            "{} (LLC {} MB)",
            self.name,
            bytes as f64 / (1024.0 * 1024.0)
        );
        m
    }

    /// A cache hierarchy simulator with this machine's geometry.
    pub fn mem_sim(&self) -> MemSim {
        MemSim::new(self.l1i, self.l1d, self.l2, self.llc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_geometries() {
        let core = Machine::intel_core();
        assert_eq!(core.l1i.size_bytes, 32 * 1024);
        assert_eq!(core.l1d.size_bytes, 48 * 1024);
        assert_eq!(core.llc.size_bytes, 36 * 1024 * 1024);
        let xeon = Machine::intel_xeon();
        assert_eq!(xeon.llc.size_bytes, 52 * 1024 * 1024 + 512 * 1024);
        let amd = Machine::amd_ryzen();
        assert_eq!(amd.l2.size_bytes, 512 * 1024);
        assert_eq!(amd.llc.size_bytes, 8 * 1024 * 1024);
        let aws = Machine::aws_graviton4();
        assert_eq!(aws.l1i.size_bytes, 64 * 1024);
    }

    #[test]
    fn xeon_llc_latency_roughly_double_core() {
        let ratio =
            Machine::intel_xeon().llc_latency as f64 / Machine::intel_core().llc_latency as f64;
        assert!(ratio > 1.8 && ratio < 2.5, "ratio = {ratio}");
    }

    #[test]
    fn graviton_predicts_branchy_code_well() {
        // 22% on Xeon vs 0.22% on Graviton for the same workload (§7.5).
        let xeon = Machine::intel_xeon().predictor_factor;
        let aws = Machine::aws_graviton4().predictor_factor;
        assert!((xeon / aws - 100.0).abs() < 1.0);
    }

    #[test]
    fn by_id_and_all() {
        assert_eq!(Machine::all().len(), 4);
        assert_eq!(Machine::by_id("amd").unwrap().name, "AMD Ryzen 7 4800HS");
        assert!(Machine::by_id("m1").is_none());
    }

    #[test]
    fn llc_restriction() {
        let m = Machine::intel_xeon().with_llc_capacity(3 * 1024 * 1024 + 512 * 1024);
        assert_eq!(m.llc.size_bytes, 3 * 1024 * 1024 + 512 * 1024);
        assert!(m.name.contains("3.5 MB"));
    }
}
