//! # rteaal-perfmodel
//!
//! Host-machine performance models for the RTeAAL Sim reproduction.
//!
//! The paper's evaluation ran on four physical machines (Table 2). This
//! crate substitutes machine *models* fed with *measured* reference
//! streams (DESIGN.md §4.3): the instrumented simulators drive their real
//! instruction-fetch and data accesses through a set-associative cache
//! hierarchy, and a top-down pipeline model converts the measured miss
//! counts into the slot breakdowns, IPC, and modeled run times the paper
//! reports.
//!
//! - [`cache`]: LRU set-associative caches and the split-L1 hierarchy.
//! - [`machine`]: the four Table 2 machines (plus the Figure 21 LLC
//!   restriction knob).
//! - [`topdown`]: frontend-bound / bad-speculation / others analysis
//!   (Yasin's top-down method, as used in paper Figure 7).
//! - [`memtrack`]: a counting global allocator for measured peak
//!   compile memory (Figures 8/15, Table 7b).

pub mod cache;
pub mod machine;
pub mod memtrack;
pub mod topdown;

pub use cache::{Cache, CacheConfig, CacheStats, MemSim, MemStats};
pub use machine::Machine;
pub use topdown::{analyze, ExecProfile, TopDown};
