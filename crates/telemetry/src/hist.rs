//! Log2-bucketed latency histograms with nearest-rank quantiles.
//!
//! The quantile definition is the one the open-loop generator uses
//! (`crates/bench/src/openloop.rs`): the nearest-rank method, rank
//! `⌈q·n⌉` 1-indexed. Here the "sorted sample" is the bucket sequence,
//! so a quantile resolves to the inclusive upper bound of the bucket
//! holding the rank-th recorded value — a conservative (never
//! under-reporting) estimate with ≤ 2× relative error by construction.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero, one per power-of-two decade of `u64`.
pub const NUM_BUCKETS: usize = 65;

/// Bucket index for a value: 0 holds exactly `0`; bucket `k ≥ 1` holds
/// `[2^(k-1), 2^k - 1]`, so every exact power of two opens its own bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` bounds of a bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        k => (1 << (k - 1), (1 << k) - 1),
    }
}

/// A lock-free log2 histogram: 65 atomic buckets plus count and sum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one value (relaxed ordering: counters, not synchronization).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: 2^64 µs of recorded latency is
        // unreachable in practice but proptest reaches it instantly.
        self.sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            })
            .ok();
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An owned, mergeable point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; NUM_BUCKETS];
        for (b, out) in self.buckets.iter().zip(buckets.iter_mut()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Plain-data histogram state: what the `metrics` verb ships.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Saturating sum of recorded values.
    pub sum: u64,
    /// `NUM_BUCKETS` log2 bucket counts.
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Nearest-rank quantile (same rank math as `openloop::quantiles`):
    /// rank `⌈q·n⌉`, 1-indexed, clamped to `[1, n]`. Returns the upper
    /// bound of the bucket containing that rank; 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let n: u64 = self.buckets.iter().sum();
        if n == 0 {
            return 0;
        }
        let rank = ((n as f64 * q.clamp(0.0, 1.0)).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(NUM_BUCKETS - 1).1
    }

    /// Mean of recorded values (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Elementwise saturating merge. Saturating addition is associative
    /// (both groupings clamp the same true sum), which the proptests pin.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = vec![0u64; NUM_BUCKETS];
        for (i, out) in buckets.iter_mut().enumerate() {
            let a = self.buckets.get(i).copied().unwrap_or(0);
            let b = other.buckets.get(i).copied().unwrap_or(0);
            *out = a.saturating_add(b);
        }
        HistogramSnapshot {
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn power_of_two_boundaries() {
        // Every exact power of two opens a fresh bucket; its predecessor
        // closes the previous one.
        for k in 1..64usize {
            let p = 1u64 << k;
            assert_eq!(bucket_index(p), k + 1, "2^{k}");
            assert_eq!(bucket_index(p - 1), k, "2^{k} - 1");
            let (lo, hi) = bucket_bounds(k + 1);
            assert_eq!(lo, p);
            assert!(hi >= p);
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bounds(64), (1 << 63, u64::MAX));
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = HistogramSnapshot::default();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 0);
        }
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantile_never_under_reports() {
        let h = Histogram::new();
        for v in [3u64, 5, 9, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        // p100 covers the max recorded value.
        assert!(s.quantile(1.0) >= 1000);
        // p50 covers the median (9): rank ⌈0.5·5⌉ = 3.
        assert!(s.quantile(0.5) >= 9 && s.quantile(0.5) < 16);
    }

    #[test]
    fn saturating_counts_do_not_wrap() {
        let a = HistogramSnapshot {
            count: u64::MAX - 1,
            sum: u64::MAX,
            buckets: {
                let mut b = vec![0; NUM_BUCKETS];
                b[1] = u64::MAX - 1;
                b
            },
        };
        let m = a.merge(&a);
        assert_eq!(m.count, u64::MAX);
        assert_eq!(m.sum, u64::MAX);
        assert_eq!(m.buckets[1], u64::MAX);
        // Quantiles still resolve on a saturated histogram.
        assert_eq!(m.quantile(0.99), bucket_bounds(1).1);
    }

    fn arb_snapshot() -> impl Strategy<Value = HistogramSnapshot> {
        proptest::prop::collection::vec(any::<u64>(), NUM_BUCKETS).prop_map(|buckets| {
            let count = buckets.iter().fold(0u64, |a, &b| a.saturating_add(b));
            HistogramSnapshot {
                count,
                sum: count,
                buckets,
            }
        })
    }

    proptest! {
        #[test]
        fn merge_is_associative(a in arb_snapshot(), b in arb_snapshot(), c in arb_snapshot()) {
            prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        }

        #[test]
        fn merge_is_commutative(a in arb_snapshot(), b in arb_snapshot()) {
            prop_assert_eq!(a.merge(&b), b.merge(&a));
        }

        #[test]
        fn recorded_value_lands_in_its_bucket(v in any::<u64>()) {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            prop_assert!(lo <= v && v <= hi);
        }

        #[test]
        fn quantile_upper_bounds_the_rank(v in any::<u64>(), q in 0.0f64..1.0) {
            let h = Histogram::new();
            h.record(v);
            prop_assert!(h.snapshot().quantile(q) >= v);
        }
    }
}
