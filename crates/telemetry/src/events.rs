//! Per-job event timelines in a fixed-capacity ring buffer.
//!
//! Every job flowing through the serving stack leaves a typed breadcrumb
//! trail: submitted → queued → admitted → halted → published → delivered.
//! Events carry a monotonic microsecond timestamp (relative to the
//! registry's epoch) and worker/lane/shard attribution where the layer
//! knows it. The ring is bounded, so a long-lived fleet keeps the most
//! recent window and old timelines age out — observability, not an audit
//! log.

use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// The six lifecycle stages of a served job, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum JobStage {
    /// Accepted by the front end and assigned a global id.
    Submitted,
    /// Enqueued on a worker's scheduler queue.
    Queued,
    /// Granted a lane; simulation begins.
    Admitted,
    /// Left the engine: halt fired, budget exhausted, or evicted.
    Halted,
    /// Result published to the results table.
    Published,
    /// Result claimed by the submitting client.
    Delivered,
}

/// All stages in pipeline order (the completeness gate iterates this).
pub const ALL_STAGES: [JobStage; 6] = [
    JobStage::Submitted,
    JobStage::Queued,
    JobStage::Admitted,
    JobStage::Halted,
    JobStage::Published,
    JobStage::Delivered,
];

impl JobStage {
    /// Position in the pipeline, 0-based.
    pub fn index(self) -> usize {
        ALL_STAGES.iter().position(|&s| s == self).unwrap()
    }
}

/// One breadcrumb on a job's timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobEvent {
    /// Global job id (pool-global server-side, router-global client-side).
    pub job: u64,
    /// Lifecycle stage.
    pub stage: JobStage,
    /// Microseconds since the registry epoch (monotonic clock).
    pub at_us: u64,
    /// Worker index, where known.
    pub worker: Option<u64>,
    /// Lane index, where known.
    pub lane: Option<u64>,
    /// Shard index, where known (router-side events).
    pub shard: Option<u64>,
}

/// Fixed-capacity ring buffer of [`JobEvent`]s.
///
/// Recording takes one short mutex section; the lock also serializes
/// timestamping, so events read back in non-decreasing `at_us` order.
#[derive(Debug)]
pub struct EventLog {
    inner: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    buf: Vec<JobEvent>,
    /// Next write position once the buffer is full.
    head: usize,
    capacity: usize,
    recorded: u64,
}

impl EventLog {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            inner: Mutex::new(Ring {
                buf: Vec::new(),
                head: 0,
                capacity: capacity.max(1),
                recorded: 0,
            }),
        }
    }

    /// Appends an event, evicting the oldest once at capacity.
    pub fn record(&self, event: JobEvent) {
        let mut ring = self.inner.lock().unwrap();
        if ring.buf.len() < ring.capacity {
            ring.buf.push(event);
        } else {
            let head = ring.head;
            ring.buf[head] = event;
            ring.head = (head + 1) % ring.capacity;
        }
        ring.recorded += 1;
    }

    /// Total events ever recorded (including aged-out ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap().recorded
    }

    /// Events currently retained, oldest first.
    pub fn all(&self) -> Vec<JobEvent> {
        let ring = self.inner.lock().unwrap();
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.head..]);
        out.extend_from_slice(&ring.buf[..ring.head]);
        out
    }

    /// One job's retained events, in recording (= time) order.
    pub fn timeline(&self, job: u64) -> Vec<JobEvent> {
        self.all().into_iter().filter(|e| e.job == job).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(job: u64, stage: JobStage, at_us: u64) -> JobEvent {
        JobEvent {
            job,
            stage,
            at_us,
            worker: None,
            lane: None,
            shard: None,
        }
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let log = EventLog::new(3);
        for i in 0..5 {
            log.record(ev(i, JobStage::Submitted, i));
        }
        let all = log.all();
        assert_eq!(all.iter().map(|e| e.job).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(log.recorded(), 5);
    }

    #[test]
    fn timeline_filters_and_preserves_order() {
        let log = EventLog::new(16);
        log.record(ev(1, JobStage::Submitted, 10));
        log.record(ev(2, JobStage::Submitted, 11));
        log.record(ev(1, JobStage::Queued, 12));
        log.record(ev(1, JobStage::Admitted, 13));
        let t = log.timeline(1);
        assert_eq!(t.len(), 3);
        assert!(t.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert!(t
            .windows(2)
            .all(|w| w[0].stage.index() < w[1].stage.index()));
    }

    #[test]
    fn stages_enumerate_in_pipeline_order() {
        for (i, s) in ALL_STAGES.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }
}
