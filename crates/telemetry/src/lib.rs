//! Unified telemetry for the RTeAAL serving stack.
//!
//! One [`MetricsRegistry`] per process collects three kinds of
//! instruments plus a per-job event timeline:
//!
//! * [`Counter`] — monotone atomic `u64` (jobs submitted, hedges fired).
//! * [`Gauge`] — signed atomic level (queue depth, worker occupancy).
//! * [`Histogram`] — log2-bucketed latency distribution with the same
//!   nearest-rank quantile definition the open-loop benchmark uses.
//! * [`EventLog`] — a fixed-capacity ring of typed [`JobEvent`]s
//!   recording each job's submitted → queued → admitted → halted →
//!   published → delivered trail with worker/lane/shard attribution.
//!
//! Instruments are created on first use and shared by name, so two
//! layers incrementing `"sched.admitted"` update one counter. Handles
//! are `Arc`s: look up once, then the hot path is a single relaxed
//! atomic op. [`MetricsRegistry::snapshot`] freezes everything into a
//! serializable [`MetricsSnapshot`] (the `metrics` verb payload), which
//! also renders a Prometheus-style text exposition.

pub mod events;
pub mod hist;

pub use events::{EventLog, JobEvent, JobStage, ALL_STAGES};
pub use hist::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, NUM_BUCKETS};

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotone atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` (saturating — counters never wrap backwards past zero).
    pub fn add(&self, n: u64) {
        self.0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            })
            .ok();
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default event-ring capacity: 8192 events ≈ 1300 complete six-stage
/// job timelines before the oldest age out.
pub const DEFAULT_EVENT_CAPACITY: usize = 8192;

/// The process-wide instrument registry. Cheap to share (`Arc`), cheap
/// to update (relaxed atomics), cheap to ignore (no background thread).
#[derive(Debug)]
pub struct MetricsRegistry {
    epoch: Instant,
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
    events: EventLog,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A registry whose event ring holds at most `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> MetricsRegistry {
        MetricsRegistry {
            epoch: Instant::now(),
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
            events: EventLog::new(capacity),
        }
    }

    /// Microseconds since this registry was created (monotonic clock).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Milliseconds since this registry was created.
    pub fn uptime_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Get-or-create a counter by name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::intern(&self.counters, name)
    }

    /// Get-or-create a gauge by name.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Self::intern(&self.gauges, name)
    }

    /// Get-or-create a histogram by name.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Self::intern(&self.histograms, name)
    }

    fn intern<T: Default>(table: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
        let mut table = table.lock().unwrap();
        if let Some((_, v)) = table.iter().find(|(k, _)| k == name) {
            return Arc::clone(v);
        }
        let v = Arc::new(T::default());
        table.push((name.to_string(), Arc::clone(&v)));
        v
    }

    /// Records a job lifecycle event, stamped with [`Self::now_us`].
    pub fn record_event(
        &self,
        job: u64,
        stage: JobStage,
        worker: Option<u64>,
        lane: Option<u64>,
        shard: Option<u64>,
    ) {
        self.events.record(JobEvent {
            job,
            stage,
            at_us: self.now_us(),
            worker,
            lane,
            shard,
        });
    }

    /// One job's retained timeline, oldest event first.
    pub fn timeline(&self, job: u64) -> Vec<JobEvent> {
        self.events.timeline(job)
    }

    /// The underlying event ring.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Freezes every instrument into a serializable snapshot, sorted by
    /// name for deterministic output.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<NamedValue> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| NamedValue {
                name: k.clone(),
                value: v.get(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<NamedLevel> = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| NamedLevel {
                name: k.clone(),
                value: v.get(),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<NamedHistogram> = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| {
                let snap = v.snapshot();
                NamedHistogram {
                    name: k.clone(),
                    p50: snap.quantile(0.50),
                    p99: snap.quantile(0.99),
                    hist: snap,
                }
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            uptime_ms: self.uptime_ms(),
            events_recorded: self.events.recorded(),
            counters,
            gauges,
            histograms,
        }
    }
}

/// A named counter value in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedValue {
    pub name: String,
    pub value: u64,
}

/// A named gauge level in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedLevel {
    pub name: String,
    pub value: i64,
}

/// A named histogram in a snapshot, with precomputed headline quantiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedHistogram {
    pub name: String,
    /// Nearest-rank median (bucket upper bound).
    pub p50: u64,
    /// Nearest-rank 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Full bucket state, mergeable across processes.
    pub hist: HistogramSnapshot,
}

/// Point-in-time copy of a whole registry: the `metrics` verb payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Milliseconds since the registry epoch.
    pub uptime_ms: u64,
    /// Total events ever recorded in the event ring.
    pub events_recorded: u64,
    pub counters: Vec<NamedValue>,
    pub gauges: Vec<NamedLevel>,
    pub histograms: Vec<NamedHistogram>,
}

impl MetricsSnapshot {
    /// Value of a counter by name, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Value of a gauge by name, 0 if absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|g| g.name == name)
            .map_or(0, |g| g.value)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&NamedHistogram> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Prometheus-style text exposition: `# TYPE` comments, sanitized
    /// metric names, cumulative `_bucket{le="..."}` series per histogram.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE rteaal_uptime_ms gauge\n");
        out.push_str(&format!("rteaal_uptime_ms {}\n", self.uptime_ms));
        for c in &self.counters {
            let n = sanitize(&c.name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {}\n", c.value));
        }
        for g in &self.gauges {
            let n = sanitize(&g.name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", g.value));
        }
        for h in &self.histograms {
            let n = sanitize(&h.name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (i, &c) in h.hist.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum = cum.saturating_add(c);
                out.push_str(&format!(
                    "{n}_bucket{{le=\"{}\"}} {cum}\n",
                    bucket_bounds(i).1
                ));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.hist.count));
            out.push_str(&format!("{n}_sum {}\n", h.hist.sum));
            out.push_str(&format!("{n}_count {}\n", h.hist.count));
        }
        out
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; map everything else
/// to `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_shared_by_name() {
        let r = MetricsRegistry::new();
        r.counter("jobs.submitted").add(3);
        r.counter("jobs.submitted").inc();
        assert_eq!(r.counter("jobs.submitted").get(), 4);
        r.gauge("queue.depth").add(5);
        r.gauge("queue.depth").sub(2);
        assert_eq!(r.gauge("queue.depth").get(), 3);
    }

    #[test]
    fn snapshot_sorts_and_reads_back() {
        let r = MetricsRegistry::new();
        r.counter("b").inc();
        r.counter("a").add(2);
        r.histogram("lat").record(100);
        let s = r.snapshot();
        assert_eq!(s.counters[0].name, "a");
        assert_eq!(s.counter("a"), 2);
        assert_eq!(s.counter("b"), 1);
        assert_eq!(s.counter("missing"), 0);
        let h = s.histogram("lat").unwrap();
        assert_eq!(h.hist.count, 1);
        assert!(h.p99 >= 100);
    }

    #[test]
    fn event_timestamps_are_monotonic() {
        let r = MetricsRegistry::new();
        for stage in ALL_STAGES {
            r.record_event(7, stage, Some(0), None, None);
        }
        let t = r.timeline(7);
        assert_eq!(t.len(), 6);
        assert!(t.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert_eq!(t[0].stage, JobStage::Submitted);
        assert_eq!(t[5].stage, JobStage::Delivered);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = MetricsRegistry::new();
        r.counter("sched.admitted").add(2);
        r.gauge("sched.queue_depth.w0").set(1);
        r.histogram("serve.dispatch_latency_us").record(5);
        r.histogram("serve.dispatch_latency_us").record(300);
        let text = r.snapshot().prometheus();
        assert!(text.contains("# TYPE sched_admitted counter"));
        assert!(text.contains("sched_admitted 2"));
        assert!(text.contains("sched_queue_depth_w0 1"));
        assert!(text.contains("serve_dispatch_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("serve_dispatch_latency_us_count 2"));
        // Cumulative buckets: the le=511 bucket includes the earlier 5.
        assert!(text.contains("serve_dispatch_latency_us_bucket{le=\"511\"} 2"));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = MetricsRegistry::new();
        r.counter("x").inc();
        r.histogram("h").record(9);
        r.gauge("g").set(-4);
        let s = r.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
