//! Text parser for the FIRRTL subset.
//!
//! Accepts the indentation-structured concrete syntax used by FIRRTL
//! emitters (Chisel, PyRTL, Yosys' `write_firrtl`), restricted to ground
//! types. The grammar:
//!
//! ```text
//! circuit Name :
//!   module Name :
//!     input  name : UInt<8>
//!     output name : UInt<8>
//!     wire   name : SInt<4>
//!     reg    name : UInt<8>, clock
//!     regreset name : UInt<8>, clock, reset, UInt<8>(0)
//!     node   name = add(a, b)
//!     name <= mux(c, t, f)
//!     inst   sub of SubModule
//!     mem    m : UInt<8>[16]
//!     when c :
//!       ...
//!     else :
//!       ...
//!     skip
//! ```
//!
//! `;`-to-end-of-line comments and blank lines are ignored. Indentation is
//! significant (any consistent widening indent opens a block).

use crate::ast::{Circuit, Direction, Expr, Module, Port, Stmt};
use crate::error::{FirrtlError, Result};
use crate::ops::PrimOp;
use crate::ty::Type;

/// Parses FIRRTL source text into a [`Circuit`].
///
/// # Errors
///
/// Returns [`FirrtlError::Parse`] with a 1-based line number on any lexical
/// or structural error.
///
/// # Examples
///
/// ```
/// let src = "\
/// circuit Top :
///   module Top :
///     input clock : Clock
///     input a : UInt<8>
///     output out : UInt<8>
///     reg r : UInt<8>, clock
///     r <= tail(add(a, r), 1)
///     out <= r
/// ";
/// let circuit = rteaal_firrtl::parser::parse(src)?;
/// assert_eq!(circuit.top().unwrap().ports.len(), 3);
/// # Ok::<(), rteaal_firrtl::error::FirrtlError>(())
/// ```
pub fn parse(src: &str) -> Result<Circuit> {
    let lines = lex_lines(src);
    let mut p = Parser { lines, pos: 0 };
    p.parse_circuit()
}

/// One meaningful source line.
#[derive(Debug, Clone)]
struct Line {
    /// 1-based source line number.
    num: usize,
    /// Leading spaces (tabs count as 4).
    indent: usize,
    /// Trimmed text with comments stripped.
    text: String,
}

fn lex_lines(src: &str) -> Vec<Line> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let without_comment = match raw.find(';') {
            Some(idx) => &raw[..idx],
            None => raw,
        };
        let text = without_comment.trim_end();
        let trimmed = text.trim_start();
        if trimmed.is_empty() {
            continue;
        }
        let indent = text
            .chars()
            .take_while(|c| c.is_whitespace())
            .map(|c| if c == '\t' { 4 } else { 1 })
            .sum();
        out.push(Line {
            num: i + 1,
            indent,
            text: trimmed.to_string(),
        });
    }
    out
}

struct Parser {
    lines: Vec<Line>,
    pos: usize,
}

impl Parser {
    fn err<T>(&self, line: usize, msg: impl Into<String>) -> Result<T> {
        Err(FirrtlError::Parse {
            line,
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<&Line> {
        self.lines.get(self.pos)
    }

    fn parse_circuit(&mut self) -> Result<Circuit> {
        let line = match self.peek() {
            Some(l) => l.clone(),
            None => return self.err(1, "empty input"),
        };
        let name = match line.text.strip_prefix("circuit ") {
            Some(rest) => rest.trim_end_matches(':').trim().to_string(),
            None => return self.err(line.num, "expected `circuit Name :`"),
        };
        self.pos += 1;
        let mut circuit = Circuit::new(name);
        while let Some(l) = self.peek() {
            if l.indent <= line.indent {
                return self.err(l.num, "unexpected content outside circuit body");
            }
            circuit.modules.push(self.parse_module()?);
        }
        if circuit.top().is_none() {
            return self.err(
                line.num,
                format!("no module named {} (the top)", circuit.name),
            );
        }
        Ok(circuit)
    }

    fn parse_module(&mut self) -> Result<Module> {
        let line = self.peek().expect("caller checked").clone();
        let name = match line.text.strip_prefix("module ") {
            Some(rest) => rest.trim_end_matches(':').trim().to_string(),
            None => return self.err(line.num, "expected `module Name :`"),
        };
        self.pos += 1;
        let mut module = Module::new(name);
        let body_indent = match self.peek() {
            Some(l) if l.indent > line.indent => l.indent,
            _ => return Ok(module), // empty module
        };
        // Ports first, then statements (FIRRTL requires this ordering).
        while let Some(l) = self.peek() {
            if l.indent < body_indent {
                break;
            }
            let l = l.clone();
            if let Some(rest) = l.text.strip_prefix("input ") {
                module
                    .ports
                    .push(self.parse_port(&l, rest, Direction::Input)?);
                self.pos += 1;
            } else if let Some(rest) = l.text.strip_prefix("output ") {
                module
                    .ports
                    .push(self.parse_port(&l, rest, Direction::Output)?);
                self.pos += 1;
            } else {
                break;
            }
        }
        module.body = self.parse_block(body_indent)?;
        Ok(module)
    }

    fn parse_port(&self, line: &Line, rest: &str, dir: Direction) -> Result<Port> {
        let (name, ty_text) = match rest.split_once(':') {
            Some((n, t)) => (n.trim(), t.trim()),
            None => return self.err(line.num, "expected `name : Type`"),
        };
        let ty = self.parse_type(line, ty_text)?;
        Ok(Port {
            name: name.to_string(),
            dir,
            ty,
        })
    }

    fn parse_type(&self, line: &Line, text: &str) -> Result<Type> {
        let text = text.trim();
        if text == "Clock" {
            return Ok(Type::Clock);
        }
        for (prefix, signed) in [("UInt<", false), ("SInt<", true)] {
            if let Some(rest) = text.strip_prefix(prefix) {
                let w: u32 = match rest.strip_suffix('>').and_then(|s| s.trim().parse().ok()) {
                    Some(w) => w,
                    None => return self.err(line.num, format!("bad width in type `{text}`")),
                };
                if w == 0 || w > crate::ty::MAX_WIDTH {
                    return self.err(line.num, format!("width {w} out of range 1..=64"));
                }
                return Ok(if signed { Type::SInt(w) } else { Type::UInt(w) });
            }
        }
        self.err(line.num, format!("unknown type `{text}`"))
    }

    /// Parses statements at exactly `indent`, descending into `when` blocks.
    fn parse_block(&mut self, indent: usize) -> Result<Vec<Stmt>> {
        let mut body = Vec::new();
        while let Some(l) = self.peek() {
            if l.indent < indent {
                break;
            }
            let l = l.clone();
            if l.indent > indent {
                return self.err(l.num, "unexpected indentation");
            }
            if l.text.starts_with("module ") {
                break;
            }
            self.pos += 1;
            body.push(self.parse_stmt(&l, indent)?);
        }
        Ok(body)
    }

    fn parse_stmt(&mut self, l: &Line, indent: usize) -> Result<Stmt> {
        let text = &l.text;
        if text == "skip" {
            return Ok(Stmt::Skip);
        }
        if let Some(rest) = text.strip_prefix("wire ") {
            let (name, ty_text) = self.split_decl(l, rest)?;
            return Ok(Stmt::Wire {
                name,
                ty: self.parse_type(l, &ty_text)?,
            });
        }
        if let Some(rest) = text.strip_prefix("regreset ") {
            let (name, after) = self.split_decl(l, rest)?;
            let parts = split_top_level(&after, ',');
            if parts.len() != 4 {
                return self.err(l.num, "regreset needs `Type, clock, reset, init`");
            }
            let ty = self.parse_type(l, &parts[0])?;
            let clock = self.parse_expr(l, &parts[1])?;
            let reset = self.parse_expr(l, &parts[2])?;
            let init = self.parse_expr(l, &parts[3])?;
            return Ok(Stmt::Reg {
                name,
                ty,
                clock,
                reset: Some((reset, init)),
            });
        }
        if let Some(rest) = text.strip_prefix("reg ") {
            let (name, after) = self.split_decl(l, rest)?;
            let parts = split_top_level(&after, ',');
            if parts.len() != 2 {
                return self.err(l.num, "reg needs `Type, clock`");
            }
            let ty = self.parse_type(l, &parts[0])?;
            let clock = self.parse_expr(l, &parts[1])?;
            return Ok(Stmt::Reg {
                name,
                ty,
                clock,
                reset: None,
            });
        }
        if let Some(rest) = text.strip_prefix("node ") {
            let (name, value_text) = match rest.split_once('=') {
                Some((n, v)) => (n.trim().to_string(), v.trim().to_string()),
                None => return self.err(l.num, "expected `node name = expr`"),
            };
            return Ok(Stmt::Node {
                name,
                value: self.parse_expr(l, &value_text)?,
            });
        }
        if let Some(rest) = text.strip_prefix("inst ") {
            let (name, module) = match rest.split_once(" of ") {
                Some((n, m)) => (n.trim().to_string(), m.trim().to_string()),
                None => return self.err(l.num, "expected `inst name of Module`"),
            };
            return Ok(Stmt::Instance { name, module });
        }
        if let Some(rest) = text.strip_prefix("mem ") {
            let (name, spec) = self.split_decl(l, rest)?;
            // `UInt<8>[16]`
            let (ty_text, depth_text) = match spec.split_once('[') {
                Some((t, d)) => (t.trim(), d.trim_end_matches(']').trim()),
                None => return self.err(l.num, "expected `mem name : Type[depth]`"),
            };
            let ty = self.parse_type(l, ty_text)?;
            let depth: usize = match depth_text.parse() {
                Ok(d) => d,
                Err(_) => return self.err(l.num, format!("bad memory depth `{depth_text}`")),
            };
            return Ok(Stmt::Mem {
                name,
                ty,
                depth,
                init: vec![],
            });
        }
        if let Some(rest) = text.strip_prefix("when ") {
            let cond_text = rest.trim_end_matches(':').trim();
            let cond = self.parse_expr(l, cond_text)?;
            let then_indent = match self.peek() {
                Some(nl) if nl.indent > indent => nl.indent,
                _ => return self.err(l.num, "empty when body"),
            };
            let then_body = self.parse_block(then_indent)?;
            let mut else_body = Vec::new();
            if let Some(nl) = self.peek() {
                if nl.indent == indent && (nl.text == "else :" || nl.text == "else:") {
                    self.pos += 1;
                    let else_indent = match self.peek() {
                        Some(el) if el.indent > indent => el.indent,
                        _ => return self.err(l.num, "empty else body"),
                    };
                    else_body = self.parse_block(else_indent)?;
                }
            }
            return Ok(Stmt::When {
                cond,
                then_body,
                else_body,
            });
        }
        if let Some((target, value_text)) = text.split_once("<=") {
            let target = target.trim().to_string();
            if target.is_empty() || !is_ident(&target) {
                return self.err(l.num, format!("bad connect target `{target}`"));
            }
            return Ok(Stmt::Connect {
                target,
                value: self.parse_expr(l, value_text.trim())?,
            });
        }
        self.err(l.num, format!("unrecognized statement `{text}`"))
    }

    fn split_decl(&self, l: &Line, rest: &str) -> Result<(String, String)> {
        match rest.split_once(':') {
            Some((n, t)) => Ok((n.trim().to_string(), t.trim().to_string())),
            None => self.err(l.num, "expected `name : ...`"),
        }
    }

    fn parse_expr(&self, l: &Line, text: &str) -> Result<Expr> {
        let text = text.trim();
        if text.is_empty() {
            return self.err(l.num, "empty expression");
        }
        // Literals: UInt<8>(42), SInt<8>(-3).
        for (prefix, signed) in [("UInt<", false), ("SInt<", true)] {
            if let Some(rest) = text.strip_prefix(prefix) {
                let (w_text, v_text) = match rest.split_once(">(") {
                    Some((w, v)) => (w, v.trim_end_matches(')')),
                    None => return self.err(l.num, format!("bad literal `{text}`")),
                };
                let width: u32 = w_text.trim().parse().map_err(|_| FirrtlError::Parse {
                    line: l.num,
                    msg: format!("bad literal width `{w_text}`"),
                })?;
                return if signed {
                    let value = parse_int_i64(v_text).ok_or_else(|| FirrtlError::Parse {
                        line: l.num,
                        msg: format!("bad literal value `{v_text}`"),
                    })?;
                    Ok(Expr::SIntLit { value, width })
                } else {
                    let value = parse_int_u64(v_text).ok_or_else(|| FirrtlError::Parse {
                        line: l.num,
                        msg: format!("bad literal value `{v_text}`"),
                    })?;
                    Ok(Expr::UIntLit { value, width })
                };
            }
        }
        // Call forms: mux(...), validif(...), primop(...).
        if let Some(open) = text.find('(') {
            let head = &text[..open];
            if is_ident(head) && text.ends_with(')') {
                let args_text = &text[open + 1..text.len() - 1];
                let parts = split_top_level(args_text, ',');
                if head == "mux" {
                    if parts.len() != 3 {
                        return self.err(l.num, "mux takes 3 arguments");
                    }
                    return Ok(Expr::Mux {
                        cond: Box::new(self.parse_expr(l, &parts[0])?),
                        tval: Box::new(self.parse_expr(l, &parts[1])?),
                        fval: Box::new(self.parse_expr(l, &parts[2])?),
                    });
                }
                if head == "validif" {
                    if parts.len() != 2 {
                        return self.err(l.num, "validif takes 2 arguments");
                    }
                    return Ok(Expr::ValidIf {
                        cond: Box::new(self.parse_expr(l, &parts[0])?),
                        value: Box::new(self.parse_expr(l, &parts[1])?),
                    });
                }
                if let Some(op) = PrimOp::from_mnemonic(head) {
                    let (na, np) = (op.num_args(), op.num_params());
                    if parts.len() != na + np {
                        return self.err(
                            l.num,
                            format!("{head} takes {na} args + {np} params, got {}", parts.len()),
                        );
                    }
                    let mut args = Vec::with_capacity(na);
                    for part in &parts[..na] {
                        args.push(self.parse_expr(l, part)?);
                    }
                    let mut params = Vec::with_capacity(np);
                    for part in &parts[na..] {
                        let v = parse_int_u64(part.trim()).ok_or_else(|| FirrtlError::Parse {
                            line: l.num,
                            msg: format!("bad static parameter `{part}` for {head}"),
                        })?;
                        params.push(v);
                    }
                    return Ok(Expr::Prim { op, args, params });
                }
                return self.err(l.num, format!("unknown operation `{head}`"));
            }
        }
        if is_ident(text) {
            return Ok(Expr::Ref(text.to_string()));
        }
        self.err(l.num, format!("cannot parse expression `{text}`"))
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '.' || c == '$')
        && !s.chars().next().unwrap().is_numeric()
}

fn parse_int_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_int_i64(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('-') {
        parse_int_u64(rest).map(|v| -(v as i64))
    } else {
        parse_int_u64(s).map(|v| v as i64)
    }
}

/// Splits on `sep` at paren depth 0.
fn split_top_level(s: &str, sep: char) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' | '<' | '[' => {
                depth += 1;
                cur.push(c);
            }
            ')' | '>' | ']' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            c if c == sep && depth == 0 => {
                parts.push(cur.trim().to_string());
                cur = String::new();
            }
            c => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }
    parts
}

/// Pretty-prints a circuit back to parseable FIRRTL text (round-trip tested).
pub fn emit(circuit: &Circuit) -> String {
    let mut out = format!("circuit {} :\n", circuit.name);
    for module in &circuit.modules {
        out.push_str(&format!("  module {} :\n", module.name));
        for port in &module.ports {
            let dir = match port.dir {
                Direction::Input => "input",
                Direction::Output => "output",
            };
            out.push_str(&format!("    {dir} {} : {}\n", port.name, port.ty));
        }
        emit_body(&module.body, 4, &mut out);
    }
    out
}

fn emit_body(body: &[Stmt], indent: usize, out: &mut String) {
    let pad = " ".repeat(indent);
    for stmt in body {
        match stmt {
            Stmt::Wire { name, ty } => out.push_str(&format!("{pad}wire {name} : {ty}\n")),
            Stmt::Reg {
                name,
                ty,
                clock,
                reset: None,
            } => {
                out.push_str(&format!("{pad}reg {name} : {ty}, {clock}\n"));
            }
            Stmt::Reg {
                name,
                ty,
                clock,
                reset: Some((r, i)),
            } => {
                out.push_str(&format!("{pad}regreset {name} : {ty}, {clock}, {r}, {i}\n"));
            }
            Stmt::Node { name, value } => out.push_str(&format!("{pad}node {name} = {value}\n")),
            Stmt::Connect { target, value } => {
                out.push_str(&format!("{pad}{target} <= {value}\n"));
            }
            Stmt::Instance { name, module } => {
                out.push_str(&format!("{pad}inst {name} of {module}\n"));
            }
            Stmt::Mem {
                name, ty, depth, ..
            } => {
                out.push_str(&format!("{pad}mem {name} : {ty}[{depth}]\n"));
            }
            Stmt::When {
                cond,
                then_body,
                else_body,
            } => {
                out.push_str(&format!("{pad}when {cond} :\n"));
                emit_body(then_body, indent + 2, out);
                if !else_body.is_empty() {
                    out.push_str(&format!("{pad}else :\n"));
                    emit_body(else_body, indent + 2, out);
                }
            }
            Stmt::Skip => out.push_str(&format!("{pad}skip\n")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = "\
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    output out : UInt<8>
    regreset count : UInt<8>, clock, reset, UInt<8>(0)
    count <= tail(add(count, UInt<8>(1)), 1)
    out <= count
";

    #[test]
    fn parses_counter() {
        let c = parse(COUNTER).unwrap();
        let top = c.top().unwrap();
        assert_eq!(top.ports.len(), 3);
        assert_eq!(top.body.len(), 3);
        assert!(matches!(top.body[0], Stmt::Reg { reset: Some(_), .. }));
    }

    #[test]
    fn parses_when_else() {
        let src = "\
circuit M :
  module M :
    input clock : Clock
    input c : UInt<1>
    output o : UInt<4>
    reg r : UInt<4>, clock
    when c :
      r <= UInt<4>(1)
    else :
      r <= UInt<4>(2)
    o <= r
";
        let c = parse(src).unwrap();
        let body = &c.top().unwrap().body;
        assert!(matches!(&body[1], Stmt::When { else_body, .. } if else_body.len() == 1));
    }

    #[test]
    fn parses_hierarchy_and_mem() {
        let src = "\
circuit Top :
  module Sub :
    input x : UInt<4>
    output y : UInt<4>
    y <= not(x)
  module Top :
    input clock : Clock
    input a : UInt<4>
    output o : UInt<4>
    inst s of Sub
    mem m : UInt<4>[8]
    s.x <= a
    m.raddr <= a
    m.waddr <= a
    m.wdata <= s.y
    m.wen <= UInt<1>(1)
    o <= m.rdata
";
        let c = parse(src).unwrap();
        assert_eq!(c.modules.len(), 2);
        let top = c.top().unwrap();
        assert!(top.body.iter().any(|s| matches!(s, Stmt::Instance { .. })));
        assert!(top
            .body
            .iter()
            .any(|s| matches!(s, Stmt::Mem { depth: 8, .. })));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let src = "\
circuit M : ; the top
  module M :

    input a : UInt<1> ; an input
    output o : UInt<1>
    o <= a
";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn error_has_line_number() {
        let src = "\
circuit M :
  module M :
    input a : UInt<1>
    output o : UInt<1>
    o <= frobnicate(a)
";
        match parse(src).unwrap_err() {
            FirrtlError::Parse { line, msg } => {
                assert_eq!(line, 5);
                assert!(msg.contains("frobnicate"));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn literal_forms() {
        let p = Parser {
            lines: vec![],
            pos: 0,
        };
        let l = Line {
            num: 1,
            indent: 0,
            text: String::new(),
        };
        assert_eq!(p.parse_expr(&l, "UInt<8>(0x2a)").unwrap(), Expr::u(42, 8));
        assert_eq!(p.parse_expr(&l, "SInt<8>(-3)").unwrap(), Expr::s(-3, 8));
        assert_eq!(
            p.parse_expr(&l, "bits(x, 7, 0)").unwrap(),
            Expr::prim_p(PrimOp::Bits, vec![Expr::r("x")], vec![7, 0])
        );
        assert!(p.parse_expr(&l, "mux(a, b)").is_err());
        assert!(p.parse_expr(&l, "7up").is_err());
    }

    #[test]
    fn emit_roundtrips() {
        let c1 = parse(COUNTER).unwrap();
        let emitted = emit(&c1);
        let c2 = parse(&emitted).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn split_top_level_respects_nesting() {
        let parts = split_top_level("add(a, b), UInt<4>(1), c", ',');
        assert_eq!(parts, vec!["add(a, b)", "UInt<4>(1)", "c"]);
    }

    #[test]
    fn missing_top_module_rejected() {
        let src = "\
circuit Top :
  module NotTop :
    input a : UInt<1>
    output o : UInt<1>
    o <= a
";
        assert!(parse(src).is_err());
    }
}
