//! Error type shared by the FIRRTL frontend.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, FirrtlError>;

/// Errors produced while parsing, building, type-checking, or lowering a
/// FIRRTL circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FirrtlError {
    /// Lexical or syntactic error with a 1-based line number.
    Parse { line: usize, msg: String },
    /// Type or width error.
    Type(String),
    /// Reference to an undefined signal, module, or memory port.
    Undefined(String),
    /// A name was defined twice in the same scope.
    Duplicate(String),
    /// Structural error while lowering (e.g. combinational cycle,
    /// unconnected wire, instance cycle).
    Lower(String),
}

impl fmt::Display for FirrtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FirrtlError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            FirrtlError::Type(msg) => write!(f, "type error: {msg}"),
            FirrtlError::Undefined(name) => write!(f, "undefined reference: {name}"),
            FirrtlError::Duplicate(name) => write!(f, "duplicate definition: {name}"),
            FirrtlError::Lower(msg) => write!(f, "lowering error: {msg}"),
        }
    }
}

impl std::error::Error for FirrtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            FirrtlError::Parse {
                line: 3,
                msg: "bad token".into(),
            },
            FirrtlError::Type("oops".into()),
            FirrtlError::Undefined("x".into()),
            FirrtlError::Duplicate("y".into()),
            FirrtlError::Lower("cycle".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
