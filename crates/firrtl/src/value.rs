//! Bit-accurate evaluation semantics for the FIRRTL primitive ops.
//!
//! Every signal value is a `u64` holding the low `width` bits of the
//! mathematical value (two's complement for `SInt`). [`eval_prim`] is the
//! single source of truth for operator semantics: the dataflow-graph
//! interpreter, the Einsum golden model, every RTeAAL kernel, and both
//! baseline simulators all bottom out here, which is what makes the
//! cross-simulator equivalence tests meaningful.

use crate::ops::PrimOp;
use crate::ty::{mask, sext, Type};

/// A typed value: the bits and the type they are interpreted under.
///
/// # Examples
///
/// ```
/// use rteaal_firrtl::value::TypedValue;
/// use rteaal_firrtl::ty::Type;
/// let v = TypedValue::new(0xff, Type::sint(8));
/// assert_eq!(v.as_i64(), -1);
/// assert_eq!(v.bits, 0xff);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TypedValue {
    /// The raw bits, always masked to `ty.width()` bits.
    pub bits: u64,
    /// The type the bits are interpreted under.
    pub ty: Type,
}

impl TypedValue {
    /// Creates a typed value, masking `bits` to the type's width.
    pub fn new(bits: u64, ty: Type) -> Self {
        TypedValue {
            bits: bits & ty.mask(),
            ty,
        }
    }

    /// The value as a mathematical integer (sign-extended if signed).
    pub fn as_i64(&self) -> i64 {
        if self.ty.is_signed() {
            sext(self.bits, self.ty.width())
        } else {
            self.bits as i64
        }
    }
}

/// Evaluates a primitive op on typed operand values, producing the result
/// bits masked to the result type's width.
///
/// Division and remainder by zero are *defined* to produce 0 (FIRRTL leaves
/// them undefined; a fixed definition keeps all simulators bit-identical).
///
/// # Panics
///
/// Panics if the operand count or parameter count does not match the op
/// (callers are expected to have type-checked via
/// [`PrimOp::result_type`](crate::ops::PrimOp::result_type)).
///
/// # Examples
///
/// ```
/// use rteaal_firrtl::value::{eval_prim, TypedValue};
/// use rteaal_firrtl::ops::PrimOp;
/// use rteaal_firrtl::ty::Type;
/// let a = TypedValue::new(200, Type::uint(8));
/// let b = TypedValue::new(100, Type::uint(8));
/// // FIRRTL add grows: result is 9 bits, so 300 does not wrap.
/// let out = eval_prim(PrimOp::Add, &[a, b], &[], Type::uint(9));
/// assert_eq!(out, 300);
/// ```
pub fn eval_prim(op: PrimOp, args: &[TypedValue], params: &[u64], result_ty: Type) -> u64 {
    debug_assert_eq!(args.len(), op.num_args(), "{op}: wrong operand count");
    debug_assert_eq!(params.len(), op.num_params(), "{op}: wrong param count");
    let rmask = result_ty.mask();
    let a = args[0];
    let sa = a.as_i64();
    let out = match op {
        PrimOp::Add => {
            if a.ty.is_signed() {
                (sa.wrapping_add(args[1].as_i64())) as u64
            } else {
                a.bits.wrapping_add(args[1].bits)
            }
        }
        PrimOp::Sub => {
            if a.ty.is_signed() {
                (sa.wrapping_sub(args[1].as_i64())) as u64
            } else {
                a.bits.wrapping_sub(args[1].bits)
            }
        }
        PrimOp::Mul => {
            if a.ty.is_signed() {
                (sa.wrapping_mul(args[1].as_i64())) as u64
            } else {
                a.bits.wrapping_mul(args[1].bits)
            }
        }
        PrimOp::Div => {
            if a.ty.is_signed() {
                let d = args[1].as_i64();
                if d == 0 {
                    0
                } else {
                    sa.wrapping_div(d) as u64
                }
            } else {
                a.bits.checked_div(args[1].bits).unwrap_or(0)
            }
        }
        PrimOp::Rem => {
            if a.ty.is_signed() {
                let d = args[1].as_i64();
                if d == 0 {
                    0
                } else {
                    sa.wrapping_rem(d) as u64
                }
            } else {
                let d = args[1].bits;
                if d == 0 {
                    0
                } else {
                    a.bits % d
                }
            }
        }
        PrimOp::Lt => cmp(a, args[1], |x, y| x < y, |x, y| x < y),
        PrimOp::Leq => cmp(a, args[1], |x, y| x <= y, |x, y| x <= y),
        PrimOp::Gt => cmp(a, args[1], |x, y| x > y, |x, y| x > y),
        PrimOp::Geq => cmp(a, args[1], |x, y| x >= y, |x, y| x >= y),
        PrimOp::Eq => (a.bits == args[1].bits) as u64,
        PrimOp::Neq => (a.bits != args[1].bits) as u64,
        // Pad of a signed value re-encodes the sign at the (possibly) wider
        // width; the result mask below truncates if padding narrower.
        PrimOp::Pad => sa as u64,
        PrimOp::AsUInt | PrimOp::AsSInt => a.bits,
        PrimOp::Shl => {
            let n = params[0] as u32;
            if n >= 64 {
                0
            } else {
                a.bits << n
            }
        }
        PrimOp::Shr => {
            let n = params[0] as u32;
            if a.ty.is_signed() {
                (sa >> n.min(63)) as u64
            } else if n >= 64 {
                0
            } else {
                a.bits >> n
            }
        }
        PrimOp::Dshl => {
            let n = args[1].bits;
            if n >= 64 {
                0
            } else {
                a.bits << n
            }
        }
        PrimOp::Dshr => {
            let n = args[1].bits;
            if a.ty.is_signed() {
                (sa >> n.min(63)) as u64
            } else if n >= 64 {
                0
            } else {
                a.bits >> n
            }
        }
        PrimOp::Cvt => sa as u64,
        PrimOp::Neg => sa.wrapping_neg() as u64,
        PrimOp::Not => !a.bits,
        PrimOp::And => ext(a, result_ty) & ext(args[1], result_ty),
        PrimOp::Or => ext(a, result_ty) | ext(args[1], result_ty),
        PrimOp::Xor => ext(a, result_ty) ^ ext(args[1], result_ty),
        PrimOp::Andr => (a.bits == a.ty.mask()) as u64,
        PrimOp::Orr => (a.bits != 0) as u64,
        PrimOp::Xorr => (a.bits.count_ones() & 1) as u64,
        PrimOp::Cat => {
            let wb = args[1].ty.width();
            if wb >= 64 {
                args[1].bits
            } else {
                (a.bits << wb) | args[1].bits
            }
        }
        PrimOp::Bits => {
            let (hi, lo) = (params[0] as u32, params[1] as u32);
            (a.bits >> lo) & mask(hi - lo + 1)
        }
        PrimOp::Head => {
            let n = params[0] as u32;
            a.bits >> (a.ty.width() - n)
        }
        PrimOp::Tail => {
            let n = params[0] as u32;
            a.bits & mask(a.ty.width() - n)
        }
    };
    out & rmask
}

/// Sign- or zero-extends `v`'s bits into the result width based on `v`'s own
/// signedness (used by the bitwise binary ops).
fn ext(v: TypedValue, result_ty: Type) -> u64 {
    if v.ty.is_signed() {
        (v.as_i64() as u64) & result_ty.mask()
    } else {
        v.bits
    }
}

fn cmp(
    a: TypedValue,
    b: TypedValue,
    su: impl Fn(u64, u64) -> bool,
    ss: impl Fn(i64, i64) -> bool,
) -> u64 {
    let r = if a.ty.is_signed() {
        ss(a.as_i64(), b.as_i64())
    } else {
        su(a.bits, b.bits)
    };
    r as u64
}

/// Evaluates a 2-way mux: `cond != 0 ? tval : fval`.
#[inline]
pub fn eval_mux(cond: u64, tval: u64, fval: u64) -> u64 {
    if cond != 0 {
        tval
    } else {
        fval
    }
}

/// Evaluates `validif(cond, value)`: the value when `cond` is nonzero, and
/// our defined "undefined" value 0 otherwise.
#[inline]
pub fn eval_validif(cond: u64, value: u64) -> u64 {
    if cond != 0 {
        value
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uv(bits: u64, w: u32) -> TypedValue {
        TypedValue::new(bits, Type::uint(w))
    }
    fn sv(v: i64, w: u32) -> TypedValue {
        TypedValue::new(v as u64, Type::sint(w))
    }

    #[test]
    fn typed_value_masks_on_construction() {
        assert_eq!(uv(0x1ff, 8).bits, 0xff);
        assert_eq!(sv(-1, 4).bits, 0xf);
    }

    #[test]
    fn add_grows_without_wrapping() {
        let r = eval_prim(PrimOp::Add, &[uv(255, 8), uv(255, 8)], &[], Type::uint(9));
        assert_eq!(r, 510);
    }

    #[test]
    fn signed_arithmetic() {
        let r = eval_prim(PrimOp::Add, &[sv(-3, 8), sv(-4, 8)], &[], Type::sint(9));
        assert_eq!(sext(r, 9), -7);
        let r = eval_prim(PrimOp::Sub, &[sv(-8, 4), sv(7, 4)], &[], Type::sint(5));
        assert_eq!(sext(r, 5), -15);
        let r = eval_prim(PrimOp::Mul, &[sv(-3, 4), sv(5, 4)], &[], Type::sint(8));
        assert_eq!(sext(r, 8), -15);
    }

    #[test]
    fn division_semantics() {
        assert_eq!(
            eval_prim(PrimOp::Div, &[uv(17, 8), uv(5, 8)], &[], Type::uint(8)),
            3
        );
        assert_eq!(
            eval_prim(PrimOp::Div, &[uv(17, 8), uv(0, 8)], &[], Type::uint(8)),
            0
        );
        let r = eval_prim(PrimOp::Div, &[sv(-17, 8), sv(5, 8)], &[], Type::sint(9));
        assert_eq!(sext(r, 9), -3); // truncating toward zero
        assert_eq!(
            eval_prim(PrimOp::Rem, &[uv(17, 8), uv(5, 8)], &[], Type::uint(4)),
            2
        );
        let r = eval_prim(PrimOp::Rem, &[sv(-17, 8), sv(5, 8)], &[], Type::sint(4));
        assert_eq!(sext(r, 4), -2);
        assert_eq!(
            eval_prim(PrimOp::Rem, &[uv(9, 8), uv(0, 8)], &[], Type::uint(8)),
            0
        );
    }

    #[test]
    fn comparisons_respect_signedness() {
        assert_eq!(
            eval_prim(PrimOp::Lt, &[uv(0xff, 8), uv(1, 8)], &[], Type::uint(1)),
            0
        );
        assert_eq!(
            eval_prim(PrimOp::Lt, &[sv(-1, 8), sv(1, 8)], &[], Type::uint(1)),
            1
        );
        assert_eq!(
            eval_prim(PrimOp::Geq, &[sv(-1, 8), sv(-1, 8)], &[], Type::uint(1)),
            1
        );
        assert_eq!(
            eval_prim(PrimOp::Eq, &[uv(5, 8), uv(5, 8)], &[], Type::uint(1)),
            1
        );
        assert_eq!(
            eval_prim(PrimOp::Neq, &[uv(5, 8), uv(6, 8)], &[], Type::uint(1)),
            1
        );
    }

    #[test]
    fn pad_sign_extends() {
        let r = eval_prim(PrimOp::Pad, &[sv(-2, 4)], &[8], Type::sint(8));
        assert_eq!(r, 0xfe);
        let r = eval_prim(PrimOp::Pad, &[uv(0xe, 4)], &[8], Type::uint(8));
        assert_eq!(r, 0xe);
    }

    #[test]
    fn shifts() {
        assert_eq!(
            eval_prim(PrimOp::Shl, &[uv(0b101, 3)], &[2], Type::uint(5)),
            0b10100
        );
        assert_eq!(
            eval_prim(PrimOp::Shr, &[uv(0b10100, 5)], &[2], Type::uint(3)),
            0b101
        );
        // Arithmetic right shift for signed.
        let r = eval_prim(PrimOp::Shr, &[sv(-8, 4)], &[1], Type::sint(3));
        assert_eq!(sext(r, 3), -4);
        assert_eq!(
            eval_prim(PrimOp::Dshl, &[uv(1, 4), uv(3, 2)], &[], Type::uint(7)),
            8
        );
        assert_eq!(
            eval_prim(PrimOp::Dshr, &[uv(8, 4), uv(3, 2)], &[], Type::uint(4)),
            1
        );
        let r = eval_prim(PrimOp::Dshr, &[sv(-8, 4), uv(2, 2)], &[], Type::sint(4));
        assert_eq!(sext(r, 4), -2);
    }

    #[test]
    fn bitwise_extends_by_operand_signedness() {
        // -1 (SInt<4>) & 0xff (UInt<8>) == 0x0f zero-padded? No: the SInt
        // operand sign-extends into the 8-bit result.
        let r = eval_prim(PrimOp::And, &[sv(-1, 4), uv(0xff, 8)], &[], Type::uint(8));
        assert_eq!(r, 0xff);
        let r = eval_prim(
            PrimOp::Xor,
            &[uv(0b1100, 4), uv(0b1010, 4)],
            &[],
            Type::uint(4),
        );
        assert_eq!(r, 0b0110);
    }

    #[test]
    fn reductions() {
        assert_eq!(
            eval_prim(PrimOp::Andr, &[uv(0xf, 4)], &[], Type::uint(1)),
            1
        );
        assert_eq!(
            eval_prim(PrimOp::Andr, &[uv(0xe, 4)], &[], Type::uint(1)),
            0
        );
        assert_eq!(eval_prim(PrimOp::Orr, &[uv(0, 4)], &[], Type::uint(1)), 0);
        assert_eq!(eval_prim(PrimOp::Orr, &[uv(2, 4)], &[], Type::uint(1)), 1);
        assert_eq!(
            eval_prim(PrimOp::Xorr, &[uv(0b111, 3)], &[], Type::uint(1)),
            1
        );
        assert_eq!(
            eval_prim(PrimOp::Xorr, &[uv(0b110, 3)], &[], Type::uint(1)),
            0
        );
    }

    #[test]
    fn bitfield_extraction() {
        assert_eq!(
            eval_prim(
                PrimOp::Cat,
                &[uv(0b10, 2), uv(0b011, 3)],
                &[],
                Type::uint(5)
            ),
            0b10011
        );
        assert_eq!(
            eval_prim(PrimOp::Bits, &[uv(0xabcd, 16)], &[11, 4], Type::uint(8)),
            0xbc
        );
        assert_eq!(
            eval_prim(PrimOp::Head, &[uv(0xab, 8)], &[4], Type::uint(4)),
            0xa
        );
        assert_eq!(
            eval_prim(PrimOp::Tail, &[uv(0xab, 8)], &[4], Type::uint(4)),
            0xb
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(
            eval_prim(PrimOp::AsSInt, &[uv(0xff, 8)], &[], Type::sint(8)),
            0xff
        );
        assert_eq!(
            eval_prim(PrimOp::AsUInt, &[sv(-1, 8)], &[], Type::uint(8)),
            0xff
        );
        let r = eval_prim(PrimOp::Cvt, &[uv(0xff, 8)], &[], Type::sint(9));
        assert_eq!(sext(r, 9), 255);
        let r = eval_prim(PrimOp::Neg, &[uv(3, 4)], &[], Type::sint(5));
        assert_eq!(sext(r, 5), -3);
        assert_eq!(
            eval_prim(PrimOp::Not, &[uv(0b1010, 4)], &[], Type::uint(4)),
            0b0101
        );
    }

    #[test]
    fn mux_and_validif() {
        assert_eq!(eval_mux(1, 7, 9), 7);
        assert_eq!(eval_mux(0, 7, 9), 9);
        assert_eq!(eval_validif(1, 42), 42);
        assert_eq!(eval_validif(0, 42), 0);
    }

    #[test]
    fn cat_saturating_width() {
        // 60 + 8 bits saturates at 64: high bits of the first operand drop.
        let r = eval_prim(
            PrimOp::Cat,
            &[uv(mask(60), 60), uv(0xab, 8)],
            &[],
            Type::uint(64),
        );
        assert_eq!(r & 0xff, 0xab);
        assert_eq!(r >> 8, mask(56));
    }
}
