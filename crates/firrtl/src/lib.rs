//! # rteaal-firrtl
//!
//! FIRRTL-subset frontend for the RTeAAL Sim reproduction.
//!
//! RTeAAL Sim (paper §6.1) "takes an RTL design described in FIRRTL and
//! generates the corresponding tensors and a sparse tensor algebra kernel".
//! This crate provides everything up to the dataflow graph:
//!
//! - [`ast`]: the circuit/module/statement/expression AST (ground types
//!   only, widths 1..=64).
//! - [`parser`]: the indentation-structured text syntax, plus [`parser::emit`]
//!   for round-tripping.
//! - [`builder`]: a programmatic construction API used by the synthetic
//!   design generators.
//! - [`ops`] / [`value`]: the full FIRRTL primitive-op set with
//!   width-inference rules and bit-accurate evaluation semantics (the single
//!   source of operator truth for every simulator in the workspace).
//! - [`infer`]: type checking and width inference.
//! - [`lower`]: instance flattening, memory lowering, and `when` resolution
//!   into a [`lower::FlatModule`] — the hand-off point to `rteaal-dfg`.
//!
//! ## Example
//!
//! ```
//! use rteaal_firrtl::{parser, lower};
//!
//! let src = "\
//! circuit Acc :
//!   module Acc :
//!     input clock : Clock
//!     input x : UInt<8>
//!     output out : UInt<8>
//!     reg acc : UInt<8>, clock
//!     acc <= tail(add(acc, x), 1)
//!     out <= acc
//! ";
//! let circuit = parser::parse(src)?;
//! let flat = lower::lower_typed(&circuit)?;
//! assert_eq!(flat.regs.len(), 1);
//! assert_eq!(flat.inputs.len(), 1); // clock is tracked separately
//! # Ok::<(), rteaal_firrtl::error::FirrtlError>(())
//! ```

pub mod ast;
pub mod builder;
pub mod error;
pub mod infer;
pub mod lower;
pub mod ops;
pub mod parser;
pub mod ty;
pub mod value;

pub use ast::{Circuit, Direction, Expr, Module, Port, Stmt};
pub use error::{FirrtlError, Result};
pub use lower::{lower_typed, FlatModule, FlatReg};
pub use ops::PrimOp;
pub use ty::Type;
