//! Abstract syntax tree for the FIRRTL subset.
//!
//! A [`Circuit`] contains [`Module`]s; the module whose name matches the
//! circuit name is the top module. Statements follow FIRRTL's lowered-ish
//! form plus `when`/`else` conditional blocks (resolved into muxes during
//! lowering, preserving FIRRTL's last-connect semantics).

use crate::ops::PrimOp;
use crate::ty::Type;
use std::fmt;

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    Input,
    Output,
}

/// A module port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    pub name: String,
    pub dir: Direction,
    pub ty: Type,
}

/// An expression over signals in scope.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Reference to a port, wire, node, register, instance port
    /// (`inst.port`), or memory port field (`mem.rdata`).
    Ref(String),
    /// Unsigned literal, e.g. `UInt<8>(42)`.
    UIntLit { value: u64, width: u32 },
    /// Signed literal, e.g. `SInt<8>(-3)` (stored two's complement, masked).
    SIntLit { value: i64, width: u32 },
    /// 2-way conditional select.
    Mux {
        cond: Box<Expr>,
        tval: Box<Expr>,
        fval: Box<Expr>,
    },
    /// `validif(cond, value)` — value when valid, undefined (we define: 0)
    /// otherwise.
    ValidIf { cond: Box<Expr>, value: Box<Expr> },
    /// Primitive operation with expression args and static integer params.
    Prim {
        op: PrimOp,
        args: Vec<Expr>,
        params: Vec<u64>,
    },
}

impl Expr {
    /// Reference expression from anything string-like.
    pub fn r(name: impl Into<String>) -> Expr {
        Expr::Ref(name.into())
    }

    /// Unsigned literal helper.
    pub fn u(value: u64, width: u32) -> Expr {
        Expr::UIntLit { value, width }
    }

    /// Signed literal helper.
    pub fn s(value: i64, width: u32) -> Expr {
        Expr::SIntLit { value, width }
    }

    /// Mux helper.
    pub fn mux(cond: Expr, tval: Expr, fval: Expr) -> Expr {
        Expr::Mux {
            cond: Box::new(cond),
            tval: Box::new(tval),
            fval: Box::new(fval),
        }
    }

    /// Primitive-op helper with no static params.
    pub fn prim(op: PrimOp, args: Vec<Expr>) -> Expr {
        Expr::Prim {
            op,
            args,
            params: vec![],
        }
    }

    /// Primitive-op helper with static params.
    pub fn prim_p(op: PrimOp, args: Vec<Expr>, params: Vec<u64>) -> Expr {
        Expr::Prim { op, args, params }
    }

    /// Visits every `Ref` name in the expression tree.
    pub fn for_each_ref(&self, f: &mut impl FnMut(&str)) {
        match self {
            Expr::Ref(n) => f(n),
            Expr::UIntLit { .. } | Expr::SIntLit { .. } => {}
            Expr::Mux { cond, tval, fval } => {
                cond.for_each_ref(f);
                tval.for_each_ref(f);
                fval.for_each_ref(f);
            }
            Expr::ValidIf { cond, value } => {
                cond.for_each_ref(f);
                value.for_each_ref(f);
            }
            Expr::Prim { args, .. } => {
                for a in args {
                    a.for_each_ref(f);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Ref(n) => f.write_str(n),
            Expr::UIntLit { value, width } => write!(f, "UInt<{width}>({value})"),
            Expr::SIntLit { value, width } => write!(f, "SInt<{width}>({value})"),
            Expr::Mux { cond, tval, fval } => write!(f, "mux({cond}, {tval}, {fval})"),
            Expr::ValidIf { cond, value } => write!(f, "validif({cond}, {value})"),
            Expr::Prim { op, args, params } => {
                write!(f, "{op}(")?;
                let mut first = true;
                for a in args {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                    first = false;
                }
                for p in params {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                    first = false;
                }
                write!(f, ")")
            }
        }
    }
}

/// A statement in a module body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `wire w : UInt<8>`
    Wire { name: String, ty: Type },
    /// `reg r : UInt<8>, clock` — optionally with a synchronous reset:
    /// `regreset r : UInt<8>, clock, reset, init`.
    Reg {
        name: String,
        ty: Type,
        clock: Expr,
        reset: Option<(Expr, Expr)>,
    },
    /// `node n = expr`
    Node { name: String, value: Expr },
    /// `target <= expr` (last connect wins, conditioned by enclosing `when`s).
    Connect { target: String, value: Expr },
    /// `inst name of Module`
    Instance { name: String, module: String },
    /// Simplified memory: combinational read, synchronous write, one port
    /// each. Accessed via `name.raddr`, `name.rdata`, `name.waddr`,
    /// `name.wdata`, `name.wen`. Lowered to registers + mux trees.
    Mem {
        name: String,
        ty: Type,
        depth: usize,
        init: Vec<u64>,
    },
    /// `when cond : ... else : ...`
    When {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// `skip`
    Skip,
}

/// A FIRRTL module: ports plus a body of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    pub name: String,
    pub ports: Vec<Port>,
    pub body: Vec<Stmt>,
}

impl Module {
    /// Creates an empty module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ports: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }
}

/// A FIRRTL circuit: a set of modules with a designated top.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    pub name: String,
    pub modules: Vec<Module>,
}

impl Circuit {
    /// Creates a circuit with no modules; the top module must be added with
    /// the same name as the circuit.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            modules: Vec::new(),
        }
    }

    /// The top module (same name as the circuit), if present.
    pub fn top(&self) -> Option<&Module> {
        self.module(&self.name)
    }

    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_helpers_and_display() {
        let e = Expr::prim(PrimOp::Add, vec![Expr::r("a"), Expr::u(3, 4)]);
        assert_eq!(e.to_string(), "add(a, UInt<4>(3))");
        let b = Expr::prim_p(PrimOp::Bits, vec![Expr::r("x")], vec![7, 0]);
        assert_eq!(b.to_string(), "bits(x, 7, 0)");
        let m = Expr::mux(Expr::r("c"), Expr::r("t"), Expr::r("f"));
        assert_eq!(m.to_string(), "mux(c, t, f)");
    }

    #[test]
    fn for_each_ref_visits_all() {
        let e = Expr::mux(
            Expr::r("c"),
            Expr::prim(PrimOp::Add, vec![Expr::r("a"), Expr::r("b")]),
            Expr::u(0, 1),
        );
        let mut seen = Vec::new();
        e.for_each_ref(&mut |n| seen.push(n.to_string()));
        assert_eq!(seen, vec!["c", "a", "b"]);
    }

    #[test]
    fn circuit_top_lookup() {
        let mut c = Circuit::new("Top");
        c.modules.push(Module::new("Sub"));
        c.modules.push(Module::new("Top"));
        assert_eq!(c.top().unwrap().name, "Top");
        assert!(c.module("Nope").is_none());
    }
}
