//! Type checking and width inference for modules.
//!
//! Builds a [`TypeEnv`] mapping every referenceable name in a module
//! (ports, wires, registers, nodes, instance ports `inst.port`, memory port
//! fields `mem.raddr` …) to its [`Type`], then types every expression.
//! Node types are *inferred* from their defining expression, in definition
//! order; FIRRTL's width-growth rules come from
//! [`PrimOp::result_type`](crate::ops::PrimOp::result_type).

use crate::ast::{Circuit, Direction, Expr, Module, Stmt};
use crate::error::{FirrtlError, Result};
use crate::ty::{bits_for, Type};
use std::collections::HashMap;

/// Types of every referenceable signal in one module.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    map: HashMap<String, Type>,
}

impl TypeEnv {
    /// Looks up the type of a name.
    pub fn get(&self, name: &str) -> Option<Type> {
        self.map.get(name).copied()
    }

    /// Number of typed names.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the environment is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(name, type)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Type)> {
        self.map.iter()
    }

    fn insert(&mut self, name: String, ty: Type) -> Result<()> {
        if self.map.insert(name.clone(), ty).is_some() {
            return Err(FirrtlError::Duplicate(name));
        }
        Ok(())
    }

    /// Binds a name to a type.
    ///
    /// # Errors
    ///
    /// Returns [`FirrtlError::Duplicate`] if the name is already bound.
    pub fn bind(&mut self, name: String, ty: Type) -> Result<()> {
        self.insert(name, ty)
    }

    /// Infers the type of an expression under this environment.
    ///
    /// # Errors
    ///
    /// Returns an error for undefined references, clock misuse, or operand
    /// type violations (via [`PrimOp::result_type`](crate::ops::PrimOp::result_type)).
    pub fn type_of(&self, expr: &Expr) -> Result<Type> {
        match expr {
            Expr::Ref(name) => self
                .get(name)
                .ok_or_else(|| FirrtlError::Undefined(name.clone())),
            Expr::UIntLit { value, width } => {
                if bits_for(*value) > *width {
                    return Err(FirrtlError::Type(format!(
                        "literal {value} does not fit in UInt<{width}>"
                    )));
                }
                Ok(Type::uint(*width))
            }
            Expr::SIntLit { value, width } => {
                let needed = if *value < 0 {
                    64 - (!*value as u64).leading_zeros() + 1
                } else {
                    bits_for(*value as u64) + 1
                };
                if needed > *width {
                    return Err(FirrtlError::Type(format!(
                        "literal {value} does not fit in SInt<{width}>"
                    )));
                }
                Ok(Type::sint(*width))
            }
            Expr::Mux { cond, tval, fval } => {
                let ct = self.type_of(cond)?;
                if ct.is_clock() {
                    return Err(FirrtlError::Type("mux condition cannot be a clock".into()));
                }
                let tt = self.type_of(tval)?;
                let ft = self.type_of(fval)?;
                if tt.is_signed() != ft.is_signed() || tt.is_clock() || ft.is_clock() {
                    return Err(FirrtlError::Type(format!(
                        "mux arm types disagree: {tt} vs {ft}"
                    )));
                }
                Ok(tt.with_width(tt.width().max(ft.width())))
            }
            Expr::ValidIf { cond, value } => {
                let ct = self.type_of(cond)?;
                if ct.is_clock() {
                    return Err(FirrtlError::Type(
                        "validif condition cannot be a clock".into(),
                    ));
                }
                self.type_of(value)
            }
            Expr::Prim { op, args, params } => {
                let arg_tys: Vec<Type> = args
                    .iter()
                    .map(|a| self.type_of(a))
                    .collect::<Result<_>>()?;
                op.result_type(&arg_tys, params)
            }
        }
    }
}

/// Index width for a memory of the given depth (at least 1 bit).
pub fn mem_addr_width(depth: usize) -> u32 {
    bits_for(depth.saturating_sub(1) as u64)
}

/// Builds the type environment of `module`, resolving instance port types
/// against the other modules in `circuit`.
///
/// Declarations inside `when` bodies are hoisted to module scope (see the
/// lowering notes in [`crate::lower`]).
///
/// # Errors
///
/// Returns [`FirrtlError::Duplicate`] for redefined names,
/// [`FirrtlError::Undefined`] for instances of unknown modules, and
/// [`FirrtlError::Type`] for mis-typed node definitions.
pub fn build_env(circuit: &Circuit, module: &Module) -> Result<TypeEnv> {
    let mut env = TypeEnv::default();
    for port in &module.ports {
        env.insert(port.name.clone(), port.ty)?;
    }
    collect_decls(circuit, &module.body, &mut env)?;
    // Nodes are typed in a second pass, in order, because a node's type
    // depends on earlier definitions.
    type_nodes(&module.body, &mut env)?;
    Ok(env)
}

fn collect_decls(circuit: &Circuit, body: &[Stmt], env: &mut TypeEnv) -> Result<()> {
    for stmt in body {
        match stmt {
            Stmt::Wire { name, ty } => env.insert(name.clone(), *ty)?,
            Stmt::Reg { name, ty, .. } => env.insert(name.clone(), *ty)?,
            Stmt::Instance { name, module } => {
                let target = circuit
                    .module(module)
                    .ok_or_else(|| FirrtlError::Undefined(format!("module {module}")))?;
                for port in &target.ports {
                    env.insert(format!("{name}.{}", port.name), port.ty)?;
                }
            }
            Stmt::Mem {
                name, ty, depth, ..
            } => {
                let aw = mem_addr_width(*depth);
                env.insert(format!("{name}.raddr"), Type::uint(aw))?;
                env.insert(format!("{name}.rdata"), *ty)?;
                env.insert(format!("{name}.waddr"), Type::uint(aw))?;
                env.insert(format!("{name}.wdata"), *ty)?;
                env.insert(format!("{name}.wen"), Type::uint(1))?;
            }
            Stmt::When {
                then_body,
                else_body,
                ..
            } => {
                collect_decls(circuit, then_body, env)?;
                collect_decls(circuit, else_body, env)?;
            }
            Stmt::Node { .. } | Stmt::Connect { .. } | Stmt::Skip => {}
        }
    }
    Ok(())
}

fn type_nodes(body: &[Stmt], env: &mut TypeEnv) -> Result<()> {
    for stmt in body {
        match stmt {
            Stmt::Node { name, value } => {
                let ty = env.type_of(value)?;
                env.insert(name.clone(), ty)?;
            }
            Stmt::When {
                then_body,
                else_body,
                ..
            } => {
                type_nodes(then_body, env)?;
                type_nodes(else_body, env)?;
            }
            _ => {}
        }
    }
    Ok(())
}

/// Fully type-checks a module: builds the environment, checks every connect
/// target/value pair (signedness must match; widths adjust implicitly via
/// pad/truncate during lowering), and checks `when` conditions.
///
/// # Errors
///
/// Returns the first type error found.
pub fn check_module(circuit: &Circuit, module: &Module) -> Result<TypeEnv> {
    let env = build_env(circuit, module)?;
    check_body(&env, &module.body)?;
    // Every output port must ultimately be driven; enforced during lowering
    // where conditional connects have been resolved.
    for port in &module.ports {
        if port.dir == Direction::Output && port.ty.is_clock() {
            return Err(FirrtlError::Type(format!(
                "output clock port {} not supported",
                port.name
            )));
        }
    }
    Ok(env)
}

fn check_body(env: &TypeEnv, body: &[Stmt]) -> Result<()> {
    for stmt in body {
        match stmt {
            Stmt::Connect { target, value } => {
                let tt = env
                    .get(target)
                    .ok_or_else(|| FirrtlError::Undefined(target.clone()))?;
                let vt = env.type_of(value)?;
                if tt.is_clock() != vt.is_clock() {
                    return Err(FirrtlError::Type(format!(
                        "cannot connect {vt} to {tt} at {target}"
                    )));
                }
                if !tt.is_clock() && tt.is_signed() != vt.is_signed() {
                    return Err(FirrtlError::Type(format!(
                        "signedness mismatch connecting {vt} to {tt} at {target}"
                    )));
                }
            }
            Stmt::Reg { clock, reset, .. } => {
                let ct = env.type_of(clock)?;
                if !ct.is_clock() {
                    return Err(FirrtlError::Type(format!(
                        "register clock has type {ct}, expected Clock"
                    )));
                }
                if let Some((rst, init)) = reset {
                    let rt = env.type_of(rst)?;
                    if rt.is_clock() || rt.width() != 1 {
                        return Err(FirrtlError::Type(format!(
                            "register reset has type {rt}, expected UInt<1>"
                        )));
                    }
                    env.type_of(init)?;
                }
            }
            Stmt::Node { value, .. } => {
                env.type_of(value)?;
            }
            Stmt::When {
                cond,
                then_body,
                else_body,
            } => {
                let ct = env.type_of(cond)?;
                if ct.is_clock() {
                    return Err(FirrtlError::Type("when condition cannot be a clock".into()));
                }
                check_body(env, then_body)?;
                check_body(env, else_body)?;
            }
            Stmt::Wire { .. } | Stmt::Instance { .. } | Stmt::Mem { .. } | Stmt::Skip => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CircuitBuilder, ModuleBuilder};
    use crate::ops::PrimOp;

    fn simple_circuit() -> Circuit {
        let mut b = ModuleBuilder::new("Top");
        let clk = b.input("clock", Type::Clock);
        let a = b.input("a", Type::uint(8));
        let r = b.reg("r", Type::uint(8), clk);
        let sum = b.node("sum", Expr::prim(PrimOp::Add, vec![a, r.clone()]));
        b.connect("r", Expr::prim_p(PrimOp::Tail, vec![sum], vec![1]));
        b.output_expr("out", Type::uint(8), r);
        let mut cb = CircuitBuilder::new("Top");
        cb.add_module(b.finish());
        cb.finish()
    }

    #[test]
    fn env_types_everything() {
        let c = simple_circuit();
        let env = build_env(&c, c.top().unwrap()).unwrap();
        assert_eq!(env.get("a"), Some(Type::uint(8)));
        assert_eq!(env.get("r"), Some(Type::uint(8)));
        assert_eq!(env.get("sum"), Some(Type::uint(9))); // add grows
        assert_eq!(env.get("clock"), Some(Type::Clock));
        assert!(env.get("nope").is_none());
    }

    #[test]
    fn check_passes_on_wellformed() {
        let c = simple_circuit();
        assert!(check_module(&c, c.top().unwrap()).is_ok());
    }

    #[test]
    fn undefined_reference_caught() {
        let mut b = ModuleBuilder::new("Top");
        b.node("n", Expr::r("ghost"));
        let mut cb = CircuitBuilder::new("Top");
        cb.add_module(b.finish());
        let c = cb.finish();
        let err = build_env(&c, c.top().unwrap()).unwrap_err();
        assert!(matches!(err, FirrtlError::Undefined(_)));
    }

    #[test]
    fn duplicate_definition_caught() {
        let mut b = ModuleBuilder::new("Top");
        b.wire("w", Type::uint(1));
        b.wire("w", Type::uint(2));
        let mut cb = CircuitBuilder::new("Top");
        cb.add_module(b.finish());
        let c = cb.finish();
        assert!(matches!(
            build_env(&c, c.top().unwrap()).unwrap_err(),
            FirrtlError::Duplicate(_)
        ));
    }

    #[test]
    fn instance_ports_enter_env() {
        let mut sub = ModuleBuilder::new("Sub");
        sub.input("x", Type::uint(4));
        sub.output("y", Type::uint(4));
        let mut top = ModuleBuilder::new("Top");
        top.instance("s0", "Sub");
        top.node("n", Expr::r("s0.y"));
        let mut cb = CircuitBuilder::new("Top");
        cb.add_module(sub.finish());
        cb.add_module(top.finish());
        let c = cb.finish();
        let env = build_env(&c, c.top().unwrap()).unwrap();
        assert_eq!(env.get("s0.x"), Some(Type::uint(4)));
        assert_eq!(env.get("s0.y"), Some(Type::uint(4)));
        assert_eq!(env.get("n"), Some(Type::uint(4)));
    }

    #[test]
    fn mem_ports_enter_env() {
        let mut b = ModuleBuilder::new("Top");
        b.mem("m", Type::uint(8), 16, vec![]);
        let mut cb = CircuitBuilder::new("Top");
        cb.add_module(b.finish());
        let c = cb.finish();
        let env = build_env(&c, c.top().unwrap()).unwrap();
        assert_eq!(env.get("m.raddr"), Some(Type::uint(4)));
        assert_eq!(env.get("m.rdata"), Some(Type::uint(8)));
        assert_eq!(env.get("m.wen"), Some(Type::uint(1)));
    }

    #[test]
    fn literal_width_check() {
        let env = TypeEnv::default();
        assert!(env.type_of(&Expr::u(255, 8)).is_ok());
        assert!(env.type_of(&Expr::u(256, 8)).is_err());
        assert!(env.type_of(&Expr::s(-128, 8)).is_ok());
        assert!(env.type_of(&Expr::s(-129, 8)).is_err());
        assert!(env.type_of(&Expr::s(127, 8)).is_ok());
        assert!(env.type_of(&Expr::s(128, 8)).is_err());
    }

    #[test]
    fn mux_width_is_max_of_arms() {
        let mut b = ModuleBuilder::new("Top");
        b.input("c", Type::uint(1));
        b.input("t", Type::uint(8));
        b.input("f", Type::uint(4));
        let mut cb = CircuitBuilder::new("Top");
        cb.add_module(b.finish());
        let c = cb.finish();
        let env = build_env(&c, c.top().unwrap()).unwrap();
        let m = Expr::mux(Expr::r("c"), Expr::r("t"), Expr::r("f"));
        assert_eq!(env.type_of(&m).unwrap(), Type::uint(8));
    }

    #[test]
    fn signedness_mismatch_on_connect_caught() {
        let mut b = ModuleBuilder::new("Top");
        b.input("a", Type::sint(8));
        b.output("out", Type::uint(8));
        b.connect("out", Expr::r("a"));
        let mut cb = CircuitBuilder::new("Top");
        cb.add_module(b.finish());
        let c = cb.finish();
        assert!(check_module(&c, c.top().unwrap()).is_err());
    }

    #[test]
    fn mem_addr_widths() {
        assert_eq!(mem_addr_width(1), 1);
        assert_eq!(mem_addr_width(2), 1);
        assert_eq!(mem_addr_width(16), 4);
        assert_eq!(mem_addr_width(17), 5);
    }
}
