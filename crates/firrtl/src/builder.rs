//! Programmatic construction of FIRRTL circuits.
//!
//! The design generators in `rteaal-designs` build circuits through
//! [`ModuleBuilder`] rather than emitting text, which keeps generation fast
//! for the large (multi-hundred-thousand-node) synthetic RocketChip/BOOM
//! analogs. Everything the builder produces can also be round-tripped
//! through the text [`parser`](crate::parser).

use crate::ast::{Circuit, Direction, Expr, Module, Port, Stmt};
use crate::ops::PrimOp;
use crate::ty::Type;
use std::collections::HashMap;

/// Builder for a single [`Module`].
///
/// # Examples
///
/// ```
/// use rteaal_firrtl::builder::ModuleBuilder;
/// use rteaal_firrtl::ty::Type;
/// use rteaal_firrtl::ast::Expr;
/// use rteaal_firrtl::ops::PrimOp;
///
/// let mut b = ModuleBuilder::new("Adder");
/// let clk = b.input("clock", Type::Clock);
/// let a = b.input("a", Type::uint(8));
/// let x = b.input("b", Type::uint(8));
/// let sum = b.node("sum", Expr::prim(PrimOp::Add, vec![a, x]));
/// let r = b.reg("acc", Type::uint(9), clk);
/// b.connect_expr(r.clone(), sum);
/// b.output_expr("out", Type::uint(9), r);
/// let m = b.finish();
/// assert_eq!(m.ports.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ModuleBuilder {
    module: Module,
    /// Per-prefix counters for [`Self::fresh`].
    counters: HashMap<String, usize>,
}

impl ModuleBuilder {
    /// Creates a builder for an empty module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module::new(name),
            counters: HashMap::new(),
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.module.name
    }

    /// Generates a fresh name `prefix_<n>` unique within this builder.
    pub fn fresh(&mut self, prefix: &str) -> String {
        let n = self.counters.entry(prefix.to_string()).or_insert(0);
        let name = format!("{prefix}_{n}");
        *n += 1;
        name
    }

    /// Declares an input port and returns a reference expression to it.
    pub fn input(&mut self, name: impl Into<String>, ty: Type) -> Expr {
        let name = name.into();
        self.module.ports.push(Port {
            name: name.clone(),
            dir: Direction::Input,
            ty,
        });
        Expr::Ref(name)
    }

    /// Declares an output port and returns a reference expression to it.
    /// The port must be driven via [`Self::connect`].
    pub fn output(&mut self, name: impl Into<String>, ty: Type) -> Expr {
        let name = name.into();
        self.module.ports.push(Port {
            name: name.clone(),
            dir: Direction::Output,
            ty,
        });
        Expr::Ref(name)
    }

    /// Declares an output port and drives it with `value` in one step.
    pub fn output_expr(&mut self, name: impl Into<String>, ty: Type, value: Expr) -> Expr {
        let port = self.output(name, ty);
        self.connect_expr(port.clone(), value);
        port
    }

    /// Declares a wire and returns a reference expression to it.
    pub fn wire(&mut self, name: impl Into<String>, ty: Type) -> Expr {
        let name = name.into();
        self.module.body.push(Stmt::Wire {
            name: name.clone(),
            ty,
        });
        Expr::Ref(name)
    }

    /// Declares a register clocked by `clock` (no reset) and returns a
    /// reference expression to it.
    pub fn reg(&mut self, name: impl Into<String>, ty: Type, clock: Expr) -> Expr {
        let name = name.into();
        self.module.body.push(Stmt::Reg {
            name: name.clone(),
            ty,
            clock,
            reset: None,
        });
        Expr::Ref(name)
    }

    /// Declares a register with a synchronous reset to `init` when `reset`
    /// is high.
    pub fn reg_reset(
        &mut self,
        name: impl Into<String>,
        ty: Type,
        clock: Expr,
        reset: Expr,
        init: Expr,
    ) -> Expr {
        let name = name.into();
        self.module.body.push(Stmt::Reg {
            name: name.clone(),
            ty,
            clock,
            reset: Some((reset, init)),
        });
        Expr::Ref(name)
    }

    /// Declares a named node bound to `value` and returns a reference to it.
    pub fn node(&mut self, name: impl Into<String>, value: Expr) -> Expr {
        let name = name.into();
        self.module.body.push(Stmt::Node {
            name: name.clone(),
            value,
        });
        Expr::Ref(name)
    }

    /// Declares a node with a builder-generated fresh name.
    pub fn node_fresh(&mut self, prefix: &str, value: Expr) -> Expr {
        let name = self.fresh(prefix);
        self.node(name, value)
    }

    /// Connects `value` to the named target (register, wire, or output port).
    pub fn connect(&mut self, target: impl Into<String>, value: Expr) {
        self.module.body.push(Stmt::Connect {
            target: target.into(),
            value,
        });
    }

    /// Connects `value` to a target given as a `Ref` expression.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not an [`Expr::Ref`].
    pub fn connect_expr(&mut self, target: Expr, value: Expr) {
        match target {
            Expr::Ref(name) => self.connect(name, value),
            other => panic!("connect target must be a reference, got {other}"),
        }
    }

    /// Instantiates `module` under the instance name `name`. Ports of the
    /// instance are referenced as `name.port`.
    pub fn instance(&mut self, name: impl Into<String>, module: impl Into<String>) -> String {
        let name = name.into();
        self.module.body.push(Stmt::Instance {
            name: name.clone(),
            module: module.into(),
        });
        name
    }

    /// Declares a memory (combinational read, synchronous write) of `depth`
    /// entries of type `ty`, optionally initialized. Port fields are
    /// referenced as `name.raddr`, `name.rdata`, `name.waddr`, `name.wdata`,
    /// `name.wen`.
    pub fn mem(
        &mut self,
        name: impl Into<String>,
        ty: Type,
        depth: usize,
        init: Vec<u64>,
    ) -> String {
        let name = name.into();
        self.module.body.push(Stmt::Mem {
            name: name.clone(),
            ty,
            depth,
            init,
        });
        name
    }

    /// Opens a `when cond:` block; statements added through the returned
    /// scope builder land in the conditional bodies.
    pub fn when(&mut self, cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>) {
        self.module.body.push(Stmt::When {
            cond,
            then_body,
            else_body,
        });
    }

    /// Pushes a raw statement (escape hatch for tests).
    pub fn push(&mut self, stmt: Stmt) {
        self.module.body.push(stmt);
    }

    /// Convenience: builds a binary primitive-op node with a fresh name.
    pub fn binop(&mut self, op: PrimOp, a: Expr, b: Expr) -> Expr {
        self.node_fresh(op.mnemonic(), Expr::prim(op, vec![a, b]))
    }

    /// Convenience: builds a unary primitive-op node with a fresh name.
    pub fn unop(&mut self, op: PrimOp, a: Expr) -> Expr {
        self.node_fresh(op.mnemonic(), Expr::prim(op, vec![a]))
    }

    /// Convenience: builds a mux node with a fresh name.
    pub fn mux(&mut self, cond: Expr, tval: Expr, fval: Expr) -> Expr {
        self.node_fresh("mux", Expr::mux(cond, tval, fval))
    }

    /// Consumes the builder and returns the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// Builder for a [`Circuit`]: a collection of modules with a designated top.
///
/// # Examples
///
/// ```
/// use rteaal_firrtl::builder::{CircuitBuilder, ModuleBuilder};
/// let mut cb = CircuitBuilder::new("Top");
/// cb.add_module(ModuleBuilder::new("Top").finish());
/// let c = cb.finish();
/// assert!(c.top().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    circuit: Circuit,
}

impl CircuitBuilder {
    /// Creates a builder for a circuit whose top module is `top_name`.
    pub fn new(top_name: impl Into<String>) -> Self {
        CircuitBuilder {
            circuit: Circuit::new(top_name),
        }
    }

    /// Adds a module to the circuit.
    pub fn add_module(&mut self, module: Module) -> &mut Self {
        self.circuit.modules.push(module);
        self
    }

    /// Consumes the builder and returns the circuit.
    pub fn finish(self) -> Circuit {
        self.circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_names_are_unique() {
        let mut b = ModuleBuilder::new("M");
        let n1 = b.fresh("t");
        let n2 = b.fresh("t");
        let n3 = b.fresh("u");
        assert_ne!(n1, n2);
        assert_eq!(n3, "u_0");
    }

    #[test]
    fn builder_produces_expected_statements() {
        let mut b = ModuleBuilder::new("M");
        let clk = b.input("clock", Type::Clock);
        let a = b.input("a", Type::uint(4));
        let r = b.reg("r", Type::uint(4), clk);
        let s = b.binop(PrimOp::Add, a, r.clone());
        b.connect_expr(r, Expr::prim_p(PrimOp::Tail, vec![s.clone()], vec![1]));
        b.output_expr("out", Type::uint(4), Expr::r("r"));
        let m = b.finish();
        assert_eq!(m.ports.len(), 3);
        assert!(matches!(m.body[0], Stmt::Reg { .. }));
        assert!(matches!(m.body[1], Stmt::Node { .. }));
        assert!(matches!(m.body[2], Stmt::Connect { .. }));
    }

    #[test]
    #[should_panic(expected = "connect target must be a reference")]
    fn connect_expr_rejects_non_ref() {
        let mut b = ModuleBuilder::new("M");
        b.connect_expr(Expr::u(1, 1), Expr::u(0, 1));
    }

    #[test]
    fn circuit_builder_sets_top() {
        let mut cb = CircuitBuilder::new("Top");
        cb.add_module(ModuleBuilder::new("Sub").finish());
        cb.add_module(ModuleBuilder::new("Top").finish());
        let c = cb.finish();
        assert_eq!(c.top().unwrap().name, "Top");
        assert_eq!(c.modules.len(), 2);
    }
}
