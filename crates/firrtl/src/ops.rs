//! FIRRTL primitive operations and their width-inference rules.
//!
//! This is the full primitive-op set of the FIRRTL specification [Li et al.,
//! 2016] restricted to ground types, which is what RTeAAL Sim's `OIM` `N`
//! rank supports ("OIM's N rank supports all FIRRTL primitive operations",
//! §6.1). Width rules follow the spec with one documented deviation: result
//! widths saturate at [`MAX_WIDTH`](crate::ty::MAX_WIDTH) bits and the value
//! is truncated to its low 64 bits (see `DESIGN.md` §4.7).

use crate::error::{FirrtlError, Result};
use crate::ty::{Type, MAX_WIDTH};
use std::fmt;

/// A FIRRTL primitive operation.
///
/// Operations are polymorphic over UInt/SInt at this level; signedness is
/// resolved when lowering to the concrete dataflow-graph op set.
///
/// # Examples
///
/// ```
/// use rteaal_firrtl::{ops::PrimOp, ty::Type};
/// let t = PrimOp::Add.result_type(&[Type::uint(8), Type::uint(8)], &[]).unwrap();
/// assert_eq!(t, Type::uint(9)); // FIRRTL add grows by one bit
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrimOp {
    // Arithmetic.
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    // Comparisons (result UInt<1>).
    Lt,
    Leq,
    Gt,
    Geq,
    Eq,
    Neq,
    // Width / type adjustment. `Pad`, `Shl`, `Shr`, `Head`, `Tail` take an
    // integer parameter; `Bits` takes two (hi, lo).
    Pad,
    AsUInt,
    AsSInt,
    Shl,
    Shr,
    Dshl,
    Dshr,
    Cvt,
    // Unary bit ops.
    Neg,
    Not,
    // Binary bitwise.
    And,
    Or,
    Xor,
    // Bit reductions (result UInt<1>).
    Andr,
    Orr,
    Xorr,
    // Bit-field manipulation.
    Cat,
    Bits,
    Head,
    Tail,
}

/// All primitive ops, in a stable order (used for parsing and for the `N`
/// rank coordinate space).
pub const ALL_PRIM_OPS: &[PrimOp] = &[
    PrimOp::Add,
    PrimOp::Sub,
    PrimOp::Mul,
    PrimOp::Div,
    PrimOp::Rem,
    PrimOp::Lt,
    PrimOp::Leq,
    PrimOp::Gt,
    PrimOp::Geq,
    PrimOp::Eq,
    PrimOp::Neq,
    PrimOp::Pad,
    PrimOp::AsUInt,
    PrimOp::AsSInt,
    PrimOp::Shl,
    PrimOp::Shr,
    PrimOp::Dshl,
    PrimOp::Dshr,
    PrimOp::Cvt,
    PrimOp::Neg,
    PrimOp::Not,
    PrimOp::And,
    PrimOp::Or,
    PrimOp::Xor,
    PrimOp::Andr,
    PrimOp::Orr,
    PrimOp::Xorr,
    PrimOp::Cat,
    PrimOp::Bits,
    PrimOp::Head,
    PrimOp::Tail,
];

impl PrimOp {
    /// FIRRTL-source mnemonic of the op.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            PrimOp::Add => "add",
            PrimOp::Sub => "sub",
            PrimOp::Mul => "mul",
            PrimOp::Div => "div",
            PrimOp::Rem => "rem",
            PrimOp::Lt => "lt",
            PrimOp::Leq => "leq",
            PrimOp::Gt => "gt",
            PrimOp::Geq => "geq",
            PrimOp::Eq => "eq",
            PrimOp::Neq => "neq",
            PrimOp::Pad => "pad",
            PrimOp::AsUInt => "asUInt",
            PrimOp::AsSInt => "asSInt",
            PrimOp::Shl => "shl",
            PrimOp::Shr => "shr",
            PrimOp::Dshl => "dshl",
            PrimOp::Dshr => "dshr",
            PrimOp::Cvt => "cvt",
            PrimOp::Neg => "neg",
            PrimOp::Not => "not",
            PrimOp::And => "and",
            PrimOp::Or => "or",
            PrimOp::Xor => "xor",
            PrimOp::Andr => "andr",
            PrimOp::Orr => "orr",
            PrimOp::Xorr => "xorr",
            PrimOp::Cat => "cat",
            PrimOp::Bits => "bits",
            PrimOp::Head => "head",
            PrimOp::Tail => "tail",
        }
    }

    /// Parses a FIRRTL mnemonic into a `PrimOp`.
    pub fn from_mnemonic(s: &str) -> Option<PrimOp> {
        ALL_PRIM_OPS.iter().copied().find(|op| op.mnemonic() == s)
    }

    /// Number of expression operands the op takes.
    pub fn num_args(&self) -> usize {
        match self {
            PrimOp::Add
            | PrimOp::Sub
            | PrimOp::Mul
            | PrimOp::Div
            | PrimOp::Rem
            | PrimOp::Lt
            | PrimOp::Leq
            | PrimOp::Gt
            | PrimOp::Geq
            | PrimOp::Eq
            | PrimOp::Neq
            | PrimOp::Dshl
            | PrimOp::Dshr
            | PrimOp::And
            | PrimOp::Or
            | PrimOp::Xor
            | PrimOp::Cat => 2,
            _ => 1,
        }
    }

    /// Number of static integer parameters the op takes (e.g. `bits` takes
    /// the `hi` and `lo` indices).
    pub fn num_params(&self) -> usize {
        match self {
            PrimOp::Pad | PrimOp::Shl | PrimOp::Shr | PrimOp::Head | PrimOp::Tail => 1,
            PrimOp::Bits => 2,
            _ => 0,
        }
    }

    /// Computes the result type per the FIRRTL width-inference rules, with
    /// widths saturating at 64 bits.
    ///
    /// # Errors
    ///
    /// Returns [`FirrtlError::Type`] if the operand count, operand types, or
    /// static parameters are invalid for this op (e.g. `bits` with
    /// `hi < lo`, comparison of a clock, mixed-sign arithmetic).
    pub fn result_type(&self, args: &[Type], params: &[u64]) -> Result<Type> {
        let fail = |msg: String| Err(FirrtlError::Type(format!("{}: {msg}", self.mnemonic())));
        if args.len() != self.num_args() {
            return fail(format!(
                "expected {} args, got {}",
                self.num_args(),
                args.len()
            ));
        }
        if params.len() != self.num_params() {
            return fail(format!(
                "expected {} params, got {}",
                self.num_params(),
                params.len()
            ));
        }
        if args.iter().any(|t| t.is_clock()) {
            return fail("clock operand not allowed in primitive op".to_string());
        }
        let sat = |w: u32| w.clamp(1, MAX_WIDTH);
        let same_sign = |a: &Type, b: &Type| a.is_signed() == b.is_signed();
        let w0 = args[0].width();
        match self {
            PrimOp::Add | PrimOp::Sub => {
                if !same_sign(&args[0], &args[1]) {
                    return fail("mixed signedness".to_string());
                }
                Ok(args[0].with_width(sat(w0.max(args[1].width()) + 1)))
            }
            PrimOp::Mul => {
                if !same_sign(&args[0], &args[1]) {
                    return fail("mixed signedness".to_string());
                }
                Ok(args[0].with_width(sat(w0 + args[1].width())))
            }
            PrimOp::Div => {
                if !same_sign(&args[0], &args[1]) {
                    return fail("mixed signedness".to_string());
                }
                let grow = if args[0].is_signed() { 1 } else { 0 };
                Ok(args[0].with_width(sat(w0 + grow)))
            }
            PrimOp::Rem => {
                if !same_sign(&args[0], &args[1]) {
                    return fail("mixed signedness".to_string());
                }
                Ok(args[0].with_width(sat(w0.min(args[1].width()))))
            }
            PrimOp::Lt | PrimOp::Leq | PrimOp::Gt | PrimOp::Geq | PrimOp::Eq | PrimOp::Neq => {
                if !same_sign(&args[0], &args[1]) {
                    return fail("mixed signedness".to_string());
                }
                Ok(Type::UInt(1))
            }
            PrimOp::Pad => Ok(args[0].with_width(sat(w0.max(params[0] as u32)))),
            PrimOp::AsUInt => Ok(Type::UInt(w0)),
            PrimOp::AsSInt => Ok(Type::SInt(w0)),
            PrimOp::Shl => Ok(args[0].with_width(sat(w0 + params[0] as u32))),
            PrimOp::Shr => Ok(args[0].with_width(sat(w0.saturating_sub(params[0] as u32).max(1)))),
            PrimOp::Dshl => {
                if args[1].is_signed() {
                    return fail("dshl shift amount must be UInt".to_string());
                }
                let grow = (1u64 << args[1].width().min(6)) as u32 - 1;
                Ok(args[0].with_width(sat(w0 + grow)))
            }
            PrimOp::Dshr => {
                if args[1].is_signed() {
                    return fail("dshr shift amount must be UInt".to_string());
                }
                Ok(args[0].with_width(w0))
            }
            PrimOp::Cvt => Ok(Type::SInt(sat(if args[0].is_signed() {
                w0
            } else {
                w0 + 1
            }))),
            PrimOp::Neg => Ok(Type::SInt(sat(w0 + 1))),
            PrimOp::Not => Ok(Type::UInt(w0)),
            PrimOp::And | PrimOp::Or | PrimOp::Xor => Ok(Type::UInt(sat(w0.max(args[1].width())))),
            PrimOp::Andr | PrimOp::Orr | PrimOp::Xorr => Ok(Type::UInt(1)),
            PrimOp::Cat => Ok(Type::UInt(sat(w0 + args[1].width()))),
            PrimOp::Bits => {
                let (hi, lo) = (params[0] as u32, params[1] as u32);
                if hi < lo || hi >= w0 {
                    return fail(format!("bits({hi},{lo}) out of range for width {w0}"));
                }
                Ok(Type::UInt(hi - lo + 1))
            }
            PrimOp::Head => {
                let n = params[0] as u32;
                if n == 0 || n > w0 {
                    return fail(format!("head({n}) out of range for width {w0}"));
                }
                Ok(Type::UInt(n))
            }
            PrimOp::Tail => {
                let n = params[0] as u32;
                if n >= w0 {
                    return fail(format!("tail({n}) out of range for width {w0}"));
                }
                Ok(Type::UInt(w0 - n))
            }
        }
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(w: u32) -> Type {
        Type::uint(w)
    }
    fn s(w: u32) -> Type {
        Type::sint(w)
    }

    #[test]
    fn mnemonic_roundtrip() {
        for &op in ALL_PRIM_OPS {
            assert_eq!(PrimOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(PrimOp::from_mnemonic("frobnicate"), None);
    }

    #[test]
    fn arithmetic_widths() {
        assert_eq!(PrimOp::Add.result_type(&[u(8), u(4)], &[]).unwrap(), u(9));
        assert_eq!(PrimOp::Sub.result_type(&[s(8), s(8)], &[]).unwrap(), s(9));
        assert_eq!(PrimOp::Mul.result_type(&[u(8), u(8)], &[]).unwrap(), u(16));
        assert_eq!(PrimOp::Div.result_type(&[u(8), u(4)], &[]).unwrap(), u(8));
        assert_eq!(PrimOp::Div.result_type(&[s(8), s(4)], &[]).unwrap(), s(9));
        assert_eq!(PrimOp::Rem.result_type(&[u(8), u(4)], &[]).unwrap(), u(4));
    }

    #[test]
    fn widths_saturate_at_64() {
        assert_eq!(
            PrimOp::Add.result_type(&[u(64), u(64)], &[]).unwrap(),
            u(64)
        );
        assert_eq!(
            PrimOp::Mul.result_type(&[u(40), u(40)], &[]).unwrap(),
            u(64)
        );
        assert_eq!(PrimOp::Cat.result_type(&[u(64), u(8)], &[]).unwrap(), u(64));
        assert_eq!(PrimOp::Shl.result_type(&[u(64)], &[8]).unwrap(), u(64));
    }

    #[test]
    fn comparisons_are_one_bit() {
        for op in [
            PrimOp::Lt,
            PrimOp::Leq,
            PrimOp::Gt,
            PrimOp::Geq,
            PrimOp::Eq,
            PrimOp::Neq,
        ] {
            assert_eq!(op.result_type(&[u(8), u(8)], &[]).unwrap(), u(1));
        }
    }

    #[test]
    fn mixed_sign_rejected() {
        assert!(PrimOp::Add.result_type(&[u(8), s(8)], &[]).is_err());
        assert!(PrimOp::Lt.result_type(&[s(8), u(8)], &[]).is_err());
    }

    #[test]
    fn bitfield_ops() {
        assert_eq!(PrimOp::Bits.result_type(&[u(16)], &[7, 0]).unwrap(), u(8));
        assert_eq!(PrimOp::Head.result_type(&[u(16)], &[4]).unwrap(), u(4));
        assert_eq!(PrimOp::Tail.result_type(&[u(16)], &[1]).unwrap(), u(15));
        assert!(PrimOp::Bits.result_type(&[u(8)], &[9, 0]).is_err());
        assert!(PrimOp::Bits.result_type(&[u(8)], &[2, 4]).is_err());
        assert!(PrimOp::Head.result_type(&[u(8)], &[0]).is_err());
        assert!(PrimOp::Tail.result_type(&[u(8)], &[8]).is_err());
    }

    #[test]
    fn unary_ops() {
        assert_eq!(PrimOp::Not.result_type(&[u(8)], &[]).unwrap(), u(8));
        assert_eq!(PrimOp::Neg.result_type(&[u(8)], &[]).unwrap(), s(9));
        assert_eq!(PrimOp::Cvt.result_type(&[u(8)], &[]).unwrap(), s(9));
        assert_eq!(PrimOp::Cvt.result_type(&[s(8)], &[]).unwrap(), s(8));
        assert_eq!(PrimOp::AsSInt.result_type(&[u(8)], &[]).unwrap(), s(8));
        assert_eq!(PrimOp::AsUInt.result_type(&[s(8)], &[]).unwrap(), u(8));
        assert_eq!(PrimOp::Orr.result_type(&[u(33)], &[]).unwrap(), u(1));
    }

    #[test]
    fn arity_and_param_checks() {
        assert!(PrimOp::Add.result_type(&[u(8)], &[]).is_err());
        assert!(PrimOp::Pad.result_type(&[u(8)], &[]).is_err());
        assert!(PrimOp::Not.result_type(&[Type::Clock], &[]).is_err());
    }

    #[test]
    fn dynamic_shifts() {
        assert_eq!(PrimOp::Dshl.result_type(&[u(8), u(3)], &[]).unwrap(), u(15));
        assert_eq!(PrimOp::Dshr.result_type(&[u(8), u(3)], &[]).unwrap(), u(8));
        assert!(PrimOp::Dshl.result_type(&[u(8), s(3)], &[]).is_err());
    }
}
