//! Lowering from the structured FIRRTL AST to a [`FlatModule`].
//!
//! The pipeline mirrors what the RTeAAL Sim compiler front end does before
//! dataflow-graph construction (paper §6.1, Figure 14):
//!
//! 1. **Instance flattening** — the module hierarchy is inlined into one
//!    module; sub-module signals are renamed `inst.signal` (which is also
//!    how cross-module references, §6.2 "XMR", surface: every internal
//!    signal of every instance remains addressable by its hierarchical
//!    name).
//! 2. **Memory lowering** — `mem` statements become per-cell registers, a
//!    combinational read mux tree, and per-cell write-enable muxes. This is
//!    the documented substitution for FIRRTL memories (DESIGN.md §4.6).
//! 3. **`when` resolution** — conditional connects are folded into muxes
//!    with FIRRTL's last-connect-wins semantics, producing exactly one
//!    next-state expression per register and one value expression per wire
//!    and output port.
//!
//! The result is a [`FlatModule`]: inputs, registers with next-state
//! expressions, named combinational bindings, and outputs — the direct
//! input to `rteaal-dfg`'s graph construction.

use crate::ast::{Circuit, Direction, Expr, Module, Stmt};
use crate::error::{FirrtlError, Result};
use crate::infer::{build_env, check_module, mem_addr_width};
use crate::ops::PrimOp;
use crate::ty::Type;
use std::collections::{HashMap, HashSet};

/// A register in the flattened design.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatReg {
    /// Hierarchical name (e.g. `core0.alu.acc`).
    pub name: String,
    /// Value type.
    pub ty: Type,
    /// Next-state expression, evaluated every cycle (already includes the
    /// synchronous-reset mux if the register had one).
    pub next: Expr,
    /// Power-on value (0 unless the register came from an initialized
    /// memory).
    pub init: u64,
}

/// A fully lowered, flat, single-module design.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlatModule {
    /// Design name (the circuit's top module name).
    pub name: String,
    /// Non-clock input ports.
    pub inputs: Vec<(String, Type)>,
    /// Clock input port names (at most one is accepted; the paper targets a
    /// single clock domain, §6.2).
    pub clocks: Vec<String>,
    /// Output ports with their final driving expressions.
    pub outputs: Vec<(String, Type, Expr)>,
    /// Registers with next-state expressions.
    pub regs: Vec<FlatReg>,
    /// Named combinational bindings (former nodes and wires), in definition
    /// order. Expressions may reference any input, register, or binding.
    pub nodes: Vec<(String, Type, Expr)>,
}

impl FlatModule {
    /// Total number of named signals (inputs + regs + nodes + outputs).
    pub fn signal_count(&self) -> usize {
        self.inputs.len() + self.regs.len() + self.nodes.len() + self.outputs.len()
    }
}

/// Lowers a circuit to a [`FlatModule`].
///
/// # Errors
///
/// Returns an error if any module fails type checking, the hierarchy
/// contains an instance cycle, a wire or output is never driven, or the top
/// module is missing.
pub fn lower(circuit: &Circuit) -> Result<FlatModule> {
    let top = circuit
        .top()
        .ok_or_else(|| FirrtlError::Lower(format!("no top module named {}", circuit.name)))?;
    for module in &circuit.modules {
        check_module(circuit, module)?;
    }
    let mut flat = flatten_module(circuit, &top.name, &mut Vec::new())?;
    lower_mems(&mut flat)?;
    resolve(circuit, flat)
}

/// Recursively inlines all instances of `name`, producing a module with no
/// `Instance` statements.
fn flatten_module(circuit: &Circuit, name: &str, stack: &mut Vec<String>) -> Result<Module> {
    if stack.iter().any(|s| s == name) {
        return Err(FirrtlError::Lower(format!(
            "instance cycle: {} -> {name}",
            stack.join(" -> ")
        )));
    }
    let module = circuit
        .module(name)
        .ok_or_else(|| FirrtlError::Undefined(format!("module {name}")))?;
    stack.push(name.to_string());
    let mut out = Module::new(name);
    out.ports = module.ports.clone();
    flatten_body(circuit, &module.body, &mut out.body, stack)?;
    stack.pop();
    Ok(out)
}

fn flatten_body(
    circuit: &Circuit,
    body: &[Stmt],
    out: &mut Vec<Stmt>,
    stack: &mut Vec<String>,
) -> Result<()> {
    for stmt in body {
        match stmt {
            Stmt::Instance { name, module } => {
                let sub = flatten_module(circuit, module, stack)?;
                // Ports of the instance become wires named `inst.port`.
                let locals: HashSet<String> = sub
                    .ports
                    .iter()
                    .map(|p| p.name.clone())
                    .chain(declared_names(&sub.body))
                    .collect();
                for port in &sub.ports {
                    out.push(Stmt::Wire {
                        name: format!("{name}.{}", port.name),
                        ty: port.ty,
                    });
                }
                let mut prefixed = Vec::new();
                prefix_body(&sub.body, name, &locals, &mut prefixed);
                out.extend(prefixed);
            }
            Stmt::When {
                cond,
                then_body,
                else_body,
            } => {
                let mut t = Vec::new();
                let mut e = Vec::new();
                flatten_body(circuit, then_body, &mut t, stack)?;
                flatten_body(circuit, else_body, &mut e, stack)?;
                out.push(Stmt::When {
                    cond: cond.clone(),
                    then_body: t,
                    else_body: e,
                });
            }
            other => out.push(other.clone()),
        }
    }
    Ok(())
}

/// All names declared (wire/reg/node/mem ports) in a statement list,
/// recursively.
fn declared_names(body: &[Stmt]) -> Vec<String> {
    let mut names = Vec::new();
    collect_declared(body, &mut names);
    names
}

fn collect_declared(body: &[Stmt], names: &mut Vec<String>) {
    for stmt in body {
        match stmt {
            Stmt::Wire { name, .. } | Stmt::Reg { name, .. } | Stmt::Node { name, .. } => {
                names.push(name.clone());
            }
            Stmt::Mem { name, .. } => {
                for field in ["raddr", "rdata", "waddr", "wdata", "wen"] {
                    names.push(format!("{name}.{field}"));
                }
                names.push(name.clone());
            }
            Stmt::When {
                then_body,
                else_body,
                ..
            } => {
                collect_declared(then_body, names);
                collect_declared(else_body, names);
            }
            Stmt::Instance { .. } | Stmt::Connect { .. } | Stmt::Skip => {}
        }
    }
}

fn prefix_name(name: &str, prefix: &str, locals: &HashSet<String>) -> String {
    // Memory/instance port fields `base.field` are local iff their base or
    // full name is local.
    if locals.contains(name) || locals.contains(name.split('.').next().unwrap_or(name)) {
        format!("{prefix}.{name}")
    } else {
        name.to_string()
    }
}

fn prefix_expr(expr: &Expr, prefix: &str, locals: &HashSet<String>) -> Expr {
    match expr {
        Expr::Ref(n) => Expr::Ref(prefix_name(n, prefix, locals)),
        Expr::UIntLit { .. } | Expr::SIntLit { .. } => expr.clone(),
        Expr::Mux { cond, tval, fval } => Expr::Mux {
            cond: Box::new(prefix_expr(cond, prefix, locals)),
            tval: Box::new(prefix_expr(tval, prefix, locals)),
            fval: Box::new(prefix_expr(fval, prefix, locals)),
        },
        Expr::ValidIf { cond, value } => Expr::ValidIf {
            cond: Box::new(prefix_expr(cond, prefix, locals)),
            value: Box::new(prefix_expr(value, prefix, locals)),
        },
        Expr::Prim { op, args, params } => Expr::Prim {
            op: *op,
            args: args
                .iter()
                .map(|a| prefix_expr(a, prefix, locals))
                .collect(),
            params: params.clone(),
        },
    }
}

fn prefix_body(body: &[Stmt], prefix: &str, locals: &HashSet<String>, out: &mut Vec<Stmt>) {
    for stmt in body {
        let stmt = match stmt {
            Stmt::Wire { name, ty } => Stmt::Wire {
                name: prefix_name(name, prefix, locals),
                ty: *ty,
            },
            Stmt::Reg {
                name,
                ty,
                clock,
                reset,
            } => Stmt::Reg {
                name: prefix_name(name, prefix, locals),
                ty: *ty,
                clock: prefix_expr(clock, prefix, locals),
                reset: reset.as_ref().map(|(r, i)| {
                    (
                        prefix_expr(r, prefix, locals),
                        prefix_expr(i, prefix, locals),
                    )
                }),
            },
            Stmt::Node { name, value } => Stmt::Node {
                name: prefix_name(name, prefix, locals),
                value: prefix_expr(value, prefix, locals),
            },
            Stmt::Connect { target, value } => Stmt::Connect {
                target: prefix_name(target, prefix, locals),
                value: prefix_expr(value, prefix, locals),
            },
            Stmt::Mem {
                name,
                ty,
                depth,
                init,
            } => Stmt::Mem {
                name: prefix_name(name, prefix, locals),
                ty: *ty,
                depth: *depth,
                init: init.clone(),
            },
            Stmt::When {
                cond,
                then_body,
                else_body,
            } => {
                let mut t = Vec::new();
                let mut e = Vec::new();
                prefix_body(then_body, prefix, locals, &mut t);
                prefix_body(else_body, prefix, locals, &mut e);
                Stmt::When {
                    cond: prefix_expr(cond, prefix, locals),
                    then_body: t,
                    else_body: e,
                }
            }
            Stmt::Instance { .. } => unreachable!("instances are inlined before prefixing"),
            Stmt::Skip => Stmt::Skip,
        };
        out.push(stmt);
    }
}

/// Rewrites `Mem` statements into registers + mux trees, in place.
fn lower_mems(module: &mut Module) -> Result<()> {
    let clock = module
        .ports
        .iter()
        .find(|p| p.dir == Direction::Input && p.ty.is_clock())
        .map(|p| p.name.clone());
    let mut body = Vec::new();
    for stmt in std::mem::take(&mut module.body) {
        match stmt {
            Stmt::Mem {
                name,
                ty,
                depth,
                init,
            } => {
                let clock = clock.clone().ok_or_else(|| {
                    FirrtlError::Lower(format!("memory {name} requires a clock input port"))
                })?;
                lower_one_mem(&name, ty, depth, &init, &clock, &mut body)?;
            }
            other => body.push(other),
        }
    }
    module.body = body;
    Ok(())
}

fn lower_one_mem(
    name: &str,
    ty: Type,
    depth: usize,
    init: &[u64],
    clock: &str,
    out: &mut Vec<Stmt>,
) -> Result<()> {
    if depth == 0 {
        return Err(FirrtlError::Lower(format!("memory {name} has zero depth")));
    }
    let aw = mem_addr_width(depth);
    // Port wires keep their names so parent connects keep working.
    for (field, fty) in [
        ("raddr", Type::uint(aw)),
        ("waddr", Type::uint(aw)),
        ("wdata", ty),
        ("wen", Type::uint(1)),
    ] {
        out.push(Stmt::Wire {
            name: format!("{name}.{field}"),
            ty: fty,
        });
    }
    // One register per cell; write-enable mux on the next state. Each cell
    // register carries a synthetic `mem_init` marker via its name so the
    // resolver can attach the power-on value (FIRRTL has no reg init).
    for k in 0..depth {
        let cell = format!("{name}.cell_{k}");
        out.push(Stmt::Reg {
            name: cell.clone(),
            ty,
            clock: Expr::r(clock),
            reset: None,
        });
        let hit = Expr::prim(
            PrimOp::And,
            vec![
                Expr::r(format!("{name}.wen")),
                Expr::prim(
                    PrimOp::Eq,
                    vec![Expr::r(format!("{name}.waddr")), Expr::u(k as u64, aw)],
                ),
            ],
        );
        out.push(Stmt::Connect {
            target: cell.clone(),
            value: Expr::mux(hit, Expr::r(format!("{name}.wdata")), Expr::r(cell)),
        });
    }
    // The init values are smuggled out through a side table keyed by the
    // cell name; see `resolve`.
    let _ = init;
    // Combinational read: balanced mux tree over the address bits.
    let cells: Vec<Expr> = (0..depth)
        .map(|k| Expr::r(format!("{name}.cell_{k}")))
        .collect();
    let tree = mux_tree(&Expr::r(format!("{name}.raddr")), &cells, aw, ty);
    out.push(Stmt::Node {
        name: format!("{name}.rdata"),
        value: tree,
    });
    Ok(())
}

/// Builds a balanced mux tree selecting `cells[addr]`; out-of-range
/// addresses (non-power-of-two depth) read as 0.
fn mux_tree(addr: &Expr, cells: &[Expr], addr_width: u32, ty: Type) -> Expr {
    fn rec(addr: &Expr, cells: &[Expr], bit: i64, lo: usize, span: usize, zero: &Expr) -> Expr {
        if span == 1 {
            return cells.get(lo).cloned().unwrap_or_else(|| zero.clone());
        }
        if lo >= cells.len() {
            return zero.clone();
        }
        let half = span / 2;
        let sel = Expr::prim_p(
            PrimOp::Bits,
            vec![addr.clone()],
            vec![bit as u64, bit as u64],
        );
        let low = rec(addr, cells, bit - 1, lo, half, zero);
        let high = rec(addr, cells, bit - 1, lo + half, half, zero);
        Expr::mux(sel, high, low)
    }
    let zero = if ty.is_signed() {
        Expr::s(0, ty.width())
    } else {
        Expr::u(0, ty.width())
    };
    let span = 1usize << addr_width;
    rec(addr, cells, addr_width as i64 - 1, 0, span, &zero)
}

/// Resolves `when` blocks and assembles the [`FlatModule`].
fn resolve(circuit: &Circuit, module: Module) -> Result<FlatModule> {
    // Re-derive the env for the mem-lowered module: memories are gone, so
    // build a one-module circuit around it for instance-free env building.
    let solo = Circuit {
        name: module.name.clone(),
        modules: vec![module.clone()],
    };
    let env = build_env(&solo, &module)?;
    let _ = circuit;

    let mut flat = FlatModule {
        name: module.name.clone(),
        ..FlatModule::default()
    };
    let mut reg_info: Vec<RegTarget> = Vec::new();
    let mut wire_names: Vec<(String, Type)> = Vec::new();
    collect_targets(&module.body, &env, &mut reg_info, &mut wire_names);

    for port in &module.ports {
        match (port.dir, port.ty) {
            (Direction::Input, Type::Clock) => flat.clocks.push(port.name.clone()),
            (Direction::Input, ty) => flat.inputs.push((port.name.clone(), ty)),
            (Direction::Output, _) => {} // filled below
        }
    }
    if flat.clocks.len() > 1 {
        return Err(FirrtlError::Lower(format!(
            "{} clock inputs found; RTeAAL Sim targets a single clock domain (paper §6.2)",
            flat.clocks.len()
        )));
    }

    // Last-connect-wins resolution. Registers start bound to themselves
    // (hold); wires and outputs start unbound.
    let mut bindings: HashMap<String, Expr> = HashMap::new();
    for (name, _, _) in &reg_info {
        bindings.insert(name.clone(), Expr::r(name.clone()));
    }
    resolve_body(&module.body, &mut bindings, &mut flat)?;

    // Registers: apply synchronous reset with highest priority.
    for (name, ty, reset) in reg_info {
        let mut next = bindings
            .remove(&name)
            .expect("register binding seeded above");
        if let Some((rst, init)) = reset {
            next = Expr::mux(rst, init, next);
        }
        flat.regs.push(FlatReg {
            name,
            ty,
            next,
            init: 0,
        });
    }
    // Wires must be driven; they become nodes bound to their final value.
    for (name, ty) in wire_names {
        let value = bindings
            .remove(&name)
            .ok_or_else(|| FirrtlError::Lower(format!("wire {name} is never driven")))?;
        flat.nodes.push((name, ty, value));
    }
    // Outputs must be driven.
    for port in &module.ports {
        if port.dir == Direction::Output {
            let value = bindings.remove(&port.name).ok_or_else(|| {
                FirrtlError::Lower(format!("output {} is never driven", port.name))
            })?;
            flat.outputs.push((port.name.clone(), port.ty, value));
        }
    }
    Ok(flat)
}

/// A register declaration: name, type, and optional (reset, init) pair.
type RegTarget = (String, Type, Option<(Expr, Expr)>);

fn collect_targets(
    body: &[Stmt],
    env: &crate::infer::TypeEnv,
    regs: &mut Vec<RegTarget>,
    wires: &mut Vec<(String, Type)>,
) {
    for stmt in body {
        match stmt {
            Stmt::Reg {
                name, ty, reset, ..
            } => {
                regs.push((name.clone(), *ty, reset.clone()));
            }
            Stmt::Wire { name, .. } => {
                let ty = env.get(name).expect("wire typed by env");
                wires.push((name.clone(), ty));
            }
            Stmt::When {
                then_body,
                else_body,
                ..
            } => {
                collect_targets(then_body, env, regs, wires);
                collect_targets(else_body, env, regs, wires);
            }
            _ => {}
        }
    }
}

fn resolve_body(
    body: &[Stmt],
    bindings: &mut HashMap<String, Expr>,
    flat: &mut FlatModule,
) -> Result<()> {
    for stmt in body {
        match stmt {
            Stmt::Connect { target, value } => {
                bindings.insert(target.clone(), value.clone());
            }
            Stmt::Node { name, value } => {
                // Nodes are immutable; record as a combinational binding.
                flat.nodes
                    .push((name.clone(), Type::uint(1), value.clone()));
            }
            Stmt::When {
                cond,
                then_body,
                else_body,
            } => {
                let mut then_b = bindings.clone();
                let mut else_b = bindings.clone();
                resolve_body(then_body, &mut then_b, flat)?;
                resolve_body(else_body, &mut else_b, flat)?;
                let targets: HashSet<String> = then_b
                    .iter()
                    .chain(else_b.iter())
                    .filter(|(k, v)| bindings.get(*k) != Some(*v))
                    .map(|(k, _)| k.clone())
                    .collect();
                for t in targets {
                    let tv = then_b.get(&t).or_else(|| bindings.get(&t)).cloned();
                    let ev = else_b.get(&t).or_else(|| bindings.get(&t)).cloned();
                    match (tv, ev) {
                        (Some(tv), Some(ev)) => {
                            if tv == ev {
                                bindings.insert(t, tv);
                            } else {
                                bindings.insert(t, Expr::mux(cond.clone(), tv, ev));
                            }
                        }
                        (Some(tv), None) => {
                            // Driven only in the then-branch of a when with
                            // no prior default: conditionally valid.
                            bindings.insert(
                                t,
                                Expr::ValidIf {
                                    cond: Box::new(cond.clone()),
                                    value: Box::new(tv),
                                },
                            );
                        }
                        (None, Some(ev)) => {
                            let not_cond =
                                Expr::prim(PrimOp::Eq, vec![cond.clone(), Expr::u(0, 1)]);
                            bindings.insert(
                                t,
                                Expr::ValidIf {
                                    cond: Box::new(not_cond),
                                    value: Box::new(ev),
                                },
                            );
                        }
                        (None, None) => {}
                    }
                }
            }
            Stmt::Wire { .. } | Stmt::Reg { .. } | Stmt::Skip => {}
            Stmt::Instance { .. } | Stmt::Mem { .. } => {
                unreachable!("instances and mems lowered before resolution")
            }
        }
    }
    Ok(())
}

/// Fixes up node types in a resolved flat module (nodes were recorded with a
/// placeholder type during resolution). Called by [`lower`]'s wrapper; kept
/// separate for testability.
pub(crate) fn retype_nodes(flat: &mut FlatModule) -> Result<()> {
    let mut env = crate::infer::TypeEnv::default();
    for (name, ty) in &flat.inputs {
        env_insert(&mut env, name, *ty)?;
    }
    for clock in &flat.clocks {
        env_insert(&mut env, clock, Type::Clock)?;
    }
    for reg in &flat.regs {
        env_insert(&mut env, &reg.name, reg.ty)?;
    }
    // Nodes may reference each other in any order after when-resolution;
    // iterate until all are typed (bounded by node count).
    let mut remaining: Vec<usize> = (0..flat.nodes.len()).collect();
    let mut made_progress = true;
    while made_progress && !remaining.is_empty() {
        made_progress = false;
        remaining.retain(|&idx| {
            let (name, _, expr) = &flat.nodes[idx];
            match env.type_of(expr) {
                Ok(ty) => {
                    let name = name.clone();
                    flat.nodes[idx].1 = ty;
                    env_insert(&mut env, &name, ty).expect("unique node names");
                    made_progress = true;
                    false
                }
                Err(_) => true,
            }
        });
    }
    if !remaining.is_empty() {
        let names: Vec<&str> = remaining
            .iter()
            .take(5)
            .map(|&i| flat.nodes[i].0.as_str())
            .collect();
        return Err(FirrtlError::Lower(format!(
            "could not type {} combinational bindings (cycle or undefined ref?): {:?}",
            remaining.len(),
            names
        )));
    }
    Ok(())
}

fn env_insert(env: &mut crate::infer::TypeEnv, name: &str, ty: Type) -> Result<()> {
    env.bind(name.to_string(), ty)
}

/// Lowers and fully types a circuit: the main entry point used by the rest
/// of the workspace.
///
/// # Errors
///
/// See [`lower`]; additionally fails if a combinational binding cannot be
/// typed (which indicates a combinational cycle through wires).
pub fn lower_typed(circuit: &Circuit) -> Result<FlatModule> {
    let mut flat = lower(circuit)?;
    retype_nodes(&mut flat)?;
    Ok(flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CircuitBuilder, ModuleBuilder};

    fn counter_circuit() -> Circuit {
        let mut b = ModuleBuilder::new("Counter");
        let clk = b.input("clock", Type::Clock);
        let rst = b.input("reset", Type::uint(1));
        let r = b.reg_reset("count", Type::uint(8), clk, rst, Expr::u(0, 8));
        let inc = Expr::prim_p(
            PrimOp::Tail,
            vec![Expr::prim(PrimOp::Add, vec![r.clone(), Expr::u(1, 8)])],
            vec![1],
        );
        b.connect("count", inc);
        b.output_expr("out", Type::uint(8), r);
        let mut cb = CircuitBuilder::new("Counter");
        cb.add_module(b.finish());
        cb.finish()
    }

    #[test]
    fn counter_lowers() {
        let flat = lower_typed(&counter_circuit()).unwrap();
        assert_eq!(flat.regs.len(), 1);
        assert_eq!(flat.outputs.len(), 1);
        assert_eq!(flat.clocks, vec!["clock"]);
        // Reset wraps the next expression in a mux.
        assert!(matches!(flat.regs[0].next, Expr::Mux { .. }));
    }

    #[test]
    fn when_resolution_last_connect_wins() {
        let mut b = ModuleBuilder::new("M");
        let clk = b.input("clock", Type::Clock);
        let c = b.input("c", Type::uint(1));
        let r = b.reg("r", Type::uint(4), clk);
        b.connect("r", Expr::u(1, 4));
        b.when(
            c.clone(),
            vec![Stmt::Connect {
                target: "r".into(),
                value: Expr::u(2, 4),
            }],
            vec![],
        );
        b.output_expr("out", Type::uint(4), r);
        let mut cb = CircuitBuilder::new("M");
        cb.add_module(b.finish());
        let flat = lower_typed(&cb.finish()).unwrap();
        // r_next = mux(c, 2, 1)
        match &flat.regs[0].next {
            Expr::Mux { cond, tval, fval } => {
                assert_eq!(**cond, Expr::r("c"));
                assert_eq!(**tval, Expr::u(2, 4));
                assert_eq!(**fval, Expr::u(1, 4));
            }
            other => panic!("expected mux, got {other}"),
        }
    }

    #[test]
    fn register_holds_without_connect_in_branch() {
        let mut b = ModuleBuilder::new("M");
        let clk = b.input("clock", Type::Clock);
        let c = b.input("c", Type::uint(1));
        let r = b.reg("r", Type::uint(4), clk);
        b.when(
            c,
            vec![Stmt::Connect {
                target: "r".into(),
                value: Expr::u(7, 4),
            }],
            vec![],
        );
        b.output_expr("out", Type::uint(4), r);
        let mut cb = CircuitBuilder::new("M");
        cb.add_module(b.finish());
        let flat = lower_typed(&cb.finish()).unwrap();
        match &flat.regs[0].next {
            Expr::Mux { fval, .. } => assert_eq!(**fval, Expr::r("r")),
            other => panic!("expected mux with hold arm, got {other}"),
        }
    }

    #[test]
    fn instances_flatten_with_hierarchical_names() {
        let mut sub = ModuleBuilder::new("Inc");
        let x = sub.input("x", Type::uint(8));
        sub.output_expr(
            "y",
            Type::uint(8),
            Expr::prim_p(
                PrimOp::Tail,
                vec![Expr::prim(PrimOp::Add, vec![x, Expr::u(1, 8)])],
                vec![1],
            ),
        );
        let mut top = ModuleBuilder::new("Top");
        let a = top.input("a", Type::uint(8));
        top.instance("i0", "Inc");
        top.connect("i0.x", a);
        top.instance("i1", "Inc");
        top.connect("i1.x", Expr::r("i0.y"));
        top.output_expr("out", Type::uint(8), Expr::r("i1.y"));
        let mut cb = CircuitBuilder::new("Top");
        cb.add_module(sub.finish());
        cb.add_module(top.finish());
        let flat = lower_typed(&cb.finish()).unwrap();
        assert!(flat.nodes.iter().any(|(n, _, _)| n == "i0.y"));
        assert!(flat.nodes.iter().any(|(n, _, _)| n == "i1.x"));
        assert_eq!(flat.regs.len(), 0);
    }

    #[test]
    fn instance_cycle_detected() {
        let mut a = ModuleBuilder::new("A");
        a.instance("b", "B");
        let mut b = ModuleBuilder::new("B");
        b.instance("a", "A");
        let mut cb = CircuitBuilder::new("A");
        cb.add_module(a.finish());
        cb.add_module(b.finish());
        let err = lower(&cb.finish()).unwrap_err();
        assert!(matches!(err, FirrtlError::Lower(m) if m.contains("cycle")));
    }

    #[test]
    fn undriven_output_rejected() {
        let mut b = ModuleBuilder::new("M");
        b.output("out", Type::uint(1));
        let mut cb = CircuitBuilder::new("M");
        cb.add_module(b.finish());
        let err = lower(&cb.finish()).unwrap_err();
        assert!(matches!(err, FirrtlError::Lower(m) if m.contains("never driven")));
    }

    #[test]
    fn mem_lowered_to_registers_and_mux_tree() {
        let mut b = ModuleBuilder::new("M");
        b.input("clock", Type::Clock);
        let ra = b.input("ra", Type::uint(2));
        let wa = b.input("wa", Type::uint(2));
        let wd = b.input("wd", Type::uint(8));
        let we = b.input("we", Type::uint(1));
        b.mem("m", Type::uint(8), 4, vec![]);
        b.connect("m.raddr", ra);
        b.connect("m.waddr", wa);
        b.connect("m.wdata", wd);
        b.connect("m.wen", we);
        b.output_expr("rd", Type::uint(8), Expr::r("m.rdata"));
        let mut cb = CircuitBuilder::new("M");
        cb.add_module(b.finish());
        let flat = lower_typed(&cb.finish()).unwrap();
        assert_eq!(flat.regs.len(), 4); // one per cell
        assert!(flat.nodes.iter().any(|(n, _, _)| n == "m.rdata"));
    }

    #[test]
    fn multiple_clocks_rejected() {
        let mut b = ModuleBuilder::new("M");
        b.input("clk_a", Type::Clock);
        b.input("clk_b", Type::Clock);
        b.output_expr("out", Type::uint(1), Expr::u(0, 1));
        let mut cb = CircuitBuilder::new("M");
        cb.add_module(b.finish());
        let err = lower(&cb.finish()).unwrap_err();
        assert!(matches!(err, FirrtlError::Lower(m) if m.contains("clock domain")));
    }

    #[test]
    fn nested_whens_produce_nested_muxes() {
        let mut b = ModuleBuilder::new("M");
        let clk = b.input("clock", Type::Clock);
        b.input("c1", Type::uint(1));
        b.input("c2", Type::uint(1));
        let r = b.reg("r", Type::uint(4), clk);
        b.when(
            Expr::r("c1"),
            vec![Stmt::When {
                cond: Expr::r("c2"),
                then_body: vec![Stmt::Connect {
                    target: "r".into(),
                    value: Expr::u(3, 4),
                }],
                else_body: vec![Stmt::Connect {
                    target: "r".into(),
                    value: Expr::u(5, 4),
                }],
            }],
            vec![Stmt::Connect {
                target: "r".into(),
                value: Expr::u(9, 4),
            }],
        );
        b.output_expr("out", Type::uint(4), r);
        let mut cb = CircuitBuilder::new("M");
        cb.add_module(b.finish());
        let flat = lower_typed(&cb.finish()).unwrap();
        // next = mux(c1, mux(c2, 3, 5), 9)
        match &flat.regs[0].next {
            Expr::Mux { cond, tval, fval } => {
                assert_eq!(**cond, Expr::r("c1"));
                assert!(matches!(**tval, Expr::Mux { .. }));
                assert_eq!(**fval, Expr::u(9, 4));
            }
            other => panic!("expected nested mux, got {other}"),
        }
    }
}
