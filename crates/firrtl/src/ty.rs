//! Ground types of the FIRRTL subset: unsigned/signed integers and clocks.
//!
//! Widths are restricted to `1..=64` bits so that every signal value fits in
//! a masked `u64`. FIRRTL width-growth rules that would exceed 64 bits
//! *saturate* at 64 (the result is truncated to its low 64 bits); see
//! `DESIGN.md` §4.7 for why this substitution is behavior-preserving for the
//! paper's experiments.

use std::fmt;

/// Maximum supported signal width in bits.
pub const MAX_WIDTH: u32 = 64;

/// A ground type in the FIRRTL subset.
///
/// # Examples
///
/// ```
/// use rteaal_firrtl::ty::Type;
/// let t = Type::uint(8);
/// assert_eq!(t.width(), 8);
/// assert!(!t.is_signed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// Unsigned integer of the given width (1..=64).
    UInt(u32),
    /// Signed two's-complement integer of the given width (1..=64).
    SInt(u32),
    /// Clock signal (1 bit, only usable as a register clock).
    Clock,
}

impl Type {
    /// Shorthand constructor for `Type::UInt`, clamping the width into
    /// `1..=MAX_WIDTH`.
    pub fn uint(width: u32) -> Self {
        Type::UInt(width.clamp(1, MAX_WIDTH))
    }

    /// Shorthand constructor for `Type::SInt`, clamping the width into
    /// `1..=MAX_WIDTH`.
    pub fn sint(width: u32) -> Self {
        Type::SInt(width.clamp(1, MAX_WIDTH))
    }

    /// Bit width of the type. A clock is 1 bit wide.
    pub fn width(&self) -> u32 {
        match self {
            Type::UInt(w) | Type::SInt(w) => *w,
            Type::Clock => 1,
        }
    }

    /// Whether values of this type are interpreted as two's complement.
    pub fn is_signed(&self) -> bool {
        matches!(self, Type::SInt(_))
    }

    /// Whether this is a clock type.
    pub fn is_clock(&self) -> bool {
        matches!(self, Type::Clock)
    }

    /// Returns the same kind of type (UInt/SInt) with a new width, saturated
    /// at [`MAX_WIDTH`]. Clock stays Clock.
    pub fn with_width(&self, width: u32) -> Self {
        let w = width.clamp(1, MAX_WIDTH);
        match self {
            Type::UInt(_) => Type::UInt(w),
            Type::SInt(_) => Type::SInt(w),
            Type::Clock => Type::Clock,
        }
    }

    /// Bit mask with the low `width()` bits set.
    pub fn mask(&self) -> u64 {
        mask(self.width())
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::UInt(w) => write!(f, "UInt<{w}>"),
            Type::SInt(w) => write!(f, "SInt<{w}>"),
            Type::Clock => write!(f, "Clock"),
        }
    }
}

/// Bit mask with the low `width` bits set (`width` in `0..=64`).
///
/// # Examples
///
/// ```
/// assert_eq!(rteaal_firrtl::ty::mask(8), 0xff);
/// assert_eq!(rteaal_firrtl::ty::mask(64), u64::MAX);
/// assert_eq!(rteaal_firrtl::ty::mask(0), 0);
/// ```
#[inline]
pub fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Sign-extends the low `width` bits of `v` to a full `i64`.
///
/// # Examples
///
/// ```
/// assert_eq!(rteaal_firrtl::ty::sext(0xff, 8), -1);
/// assert_eq!(rteaal_firrtl::ty::sext(0x7f, 8), 127);
/// ```
#[inline]
pub fn sext(v: u64, width: u32) -> i64 {
    if width == 0 || width >= 64 {
        return v as i64;
    }
    let shift = 64 - width;
    ((v << shift) as i64) >> shift
}

/// Number of bits needed to represent `v` as an unsigned value (at least 1).
pub fn bits_for(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_clamp() {
        assert_eq!(Type::uint(0).width(), 1);
        assert_eq!(Type::uint(100).width(), MAX_WIDTH);
        assert_eq!(Type::sint(12).width(), 12);
    }

    #[test]
    fn masks() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(16), 0xffff);
        assert_eq!(Type::uint(4).mask(), 0xf);
        assert_eq!(Type::Clock.mask(), 1);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sext(0b1000, 4), -8);
        assert_eq!(sext(0b0111, 4), 7);
        assert_eq!(sext(u64::MAX, 64), -1);
        assert_eq!(sext(1, 1), -1);
    }

    #[test]
    fn display() {
        assert_eq!(Type::uint(8).to_string(), "UInt<8>");
        assert_eq!(Type::sint(3).to_string(), "SInt<3>");
        assert_eq!(Type::Clock.to_string(), "Clock");
    }

    #[test]
    fn bits_for_values() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }
}
