//! # rteaal-designs
//!
//! RTL designs for the RTeAAL Sim evaluation (paper §7.1), as documented
//! substitutions for the Chipyard designs (DESIGN.md §4.1):
//!
//! - [`chip`]: synthetic RocketChip-like and SmallBOOM-like multicores
//!   (calibrated to Table 1 op-count ratios) and a *real* Gemmini-like
//!   weight-stationary systolic MAC array.
//! - [`sha3`]: a *real* Keccak-f[1600] round datapath validated against
//!   a software golden model.
//! - [`rv32i`]: a single-cycle RV32I-subset core with an ISA-level golden
//!   model and a tiny assembler (used by the examples).
//! - [`blocks`]: the reusable logic blocks (ALUs, mux trees/chains,
//!   decoders, LFSRs) the generators are built from.
//! - [`workload`]: the designs × benchmarks grid with Table 3 cycle
//!   budgets and deterministic stimulus.

pub mod blocks;
pub mod chip;
pub mod rv32i;
pub mod sha3;
pub mod workload;

pub use chip::{gemmini, pipeline, rocket, small_boom, ChipConfig};
pub use sha3::{keccak_f, sha3};
pub use workload::{Stimulus, Workload};
