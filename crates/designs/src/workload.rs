//! Workload definitions: the designs × benchmarks grid of paper §7.1.
//!
//! Table 3 gives the simulation cycle counts (dhrystone on RocketChip and
//! BOOM, `matrix_add` on Gemmini, `sha3-rocc` on SHA3). The real
//! testbenches need a software stack we cannot ship, so each workload
//! pairs a design with a deterministic stimulus driver (reset followed by
//! pseudo-random input toggling from a splitmix generator) and a *scaled*
//! cycle budget (`cycles = table3 / divisor`), per DESIGN.md §4.2.

use crate::chip::{gemmini, rocket, small_boom, ChipConfig};
use crate::rv32i::{asm, rv32i};
use crate::sha3::sha3;
use rteaal_firrtl::ast::Circuit;

/// Table 3 simulation cycle counts (thousands).
pub const TABLE3_KCYCLES: [(&str, u64); 6] = [
    ("rocket", 540),
    ("boom", 750),
    ("gemmini-8", 160),
    ("gemmini-16", 350),
    ("gemmini-32", 1100),
    ("sha3", 1200),
];

/// A design paired with its benchmark stimulus.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short id (`r1`, `s8`, `g16`, `sha3`, …).
    pub id: String,
    /// Human-readable description.
    pub description: String,
    /// The design.
    pub circuit: Circuit,
    /// Full (paper-scale) cycle budget.
    pub full_cycles: u64,
    /// Output that goes high when a lane's benchmark is architecturally
    /// finished — the probe lane-liveness early exit watches. `None` for
    /// free-running workloads.
    pub halt_signal: Option<&'static str>,
    /// Architectural state pokes applied through the DMI path before the
    /// benchmark starts (after power-on / per-lane reset). This is how
    /// one compiled circuit serves jobs of many lengths: the parameter
    /// lives in a register, not in the ROM (see
    /// [`rv32i_param_sum`](Self::rv32i_param_sum)).
    pub state_pokes: Vec<(String, u64)>,
    /// Stimulus generator state.
    seed: u64,
}

impl Workload {
    fn new(id: impl Into<String>, desc: impl Into<String>, circuit: Circuit, kcycles: u64) -> Self {
        let id = id.into();
        let seed = 0x5eed
            ^ id.bytes()
                .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64));
        Workload {
            id,
            description: desc.into(),
            circuit,
            full_cycles: kcycles * 1000,
            halt_signal: None,
            state_pokes: Vec::new(),
            seed,
        }
    }

    /// The RV32I core running its sum-loop benchmark to completion: sum
    /// `1..=20` into `a0`, then spin on a self-jump that raises the
    /// `halt` output — the workload that exercises lane-liveness early
    /// exit (per-lane completion around cycle 65 after reset release).
    pub fn rv32i_sum_loop() -> Workload {
        let program = vec![
            asm::addi(1, 0, 0),
            asm::addi(2, 0, 20),
            asm::add(1, 1, 2),
            asm::addi(2, 2, -1),
            asm::bne(2, 0, -2),
            asm::add(10, 1, 0),
            asm::jal(0, 6),
        ];
        let mut w = Workload::new("rv32i", "RV32I core, sum loop to halt", rv32i(&program), 1);
        w.halt_signal = Some("halt");
        w
    }

    /// A *parameterized* sum loop: sum `k..=1` into `a0`, where the loop
    /// bound `k` is read from register `x15` instead of being baked into
    /// the ROM. Every job produced by this constructor shares the exact
    /// same circuit — `k` arrives as a DMI state poke (`state_pokes`) at
    /// admission — which is what lets a continuously-batched scheduler
    /// pack jobs of different lengths into the lanes of ONE compiled
    /// design. Runs ~`3k + 5` cycles to halt; `a0 = k(k+1)/2`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero (the loop decrements before testing, so a
    /// zero bound would wrap through 2^32 iterations).
    pub fn rv32i_param_sum(k: u64) -> Workload {
        assert!(k > 0, "parameterized sum loop needs k >= 1");
        let mut w = Workload::new(
            format!("rv32i-k{k}"),
            format!("RV32I core, parameterized sum loop (k = {k})"),
            Self::param_sum_circuit(),
            1,
        );
        w.halt_signal = Some("halt");
        w.state_pokes = vec![("x15".to_string(), k)];
        // Tight per-job budget.
        w.full_cycles = Self::param_sum_budget(k);
        w
    }

    /// Expected `a0` of [`rv32i_param_sum`](Self::rv32i_param_sum)`(k)`.
    pub fn param_sum_expected(k: u64) -> u64 {
        (k * (k + 1) / 2) & 0xffff_ffff
    }

    /// The loop bounds of [`corpus`](Self::corpus)`(n, seed)`, without
    /// building any circuit: short loops (`k` in 1..=8) interleaved with
    /// long ones (`k` in 24..=63), deterministically seeded. This is the
    /// client-side corpus helper — a serving client only needs the `k`
    /// parameters (the server owns the one compiled circuit), so it
    /// should not pay `n` circuit constructions to enumerate its jobs.
    pub fn corpus_params(n: usize, seed: u64) -> Vec<u64> {
        let mut stream = Stimulus::from_seed(seed);
        (0..n)
            .map(|i| {
                let r = stream.next_value();
                if i % 2 == 0 {
                    1 + r % 8
                } else {
                    24 + r % 40
                }
            })
            .collect()
    }

    /// The one circuit every [`rv32i_param_sum`](Self::rv32i_param_sum)
    /// job runs on (the loop bound arrives through the DMI poke, never
    /// the ROM) — compile this once to serve a whole corpus.
    pub fn param_sum_circuit() -> Circuit {
        rv32i(&param_sum_program())
    }

    /// The cycle budget [`rv32i_param_sum`](Self::rv32i_param_sum)`(k)`
    /// declares: 3 cycles per iteration plus prologue, epilogue, and the
    /// halt-observation cycle.
    pub fn param_sum_budget(k: u64) -> u64 {
        3 * k + 12
    }

    /// A mixed-length job corpus for scheduler benches and tests: `n`
    /// parameterized sum-loop jobs with the bounds of
    /// [`corpus_params`](Self::corpus_params). All jobs share one
    /// circuit (see [`rv32i_param_sum`](Self::rv32i_param_sum)), so a
    /// static batch's wall time is dominated by its longest member —
    /// exactly the utilization gap continuous batching closes.
    pub fn corpus(n: usize, seed: u64) -> Vec<Workload> {
        Self::corpus_params(n, seed)
            .into_iter()
            .map(Workload::rv32i_param_sum)
            .collect()
    }

    /// RocketChip running the dhrystone analog.
    pub fn rocket(cores: usize) -> Workload {
        Workload::new(
            format!("r{cores}"),
            format!("{cores}-core RocketChip, dhrystone"),
            rocket(ChipConfig::new(cores)),
            540,
        )
    }

    /// SmallBOOM running the dhrystone analog.
    pub fn small_boom(cores: usize) -> Workload {
        Workload::new(
            format!("s{cores}"),
            format!("{cores}-core SmallBOOM, dhrystone"),
            small_boom(ChipConfig::new(cores)),
            750,
        )
    }

    /// Gemmini running `matrix_add` on a `dim × dim` mesh.
    pub fn gemmini(dim: usize) -> Workload {
        let kcycles = match dim {
            d if d <= 8 => 160,
            d if d <= 16 => 350,
            _ => 1100,
        };
        Workload::new(
            format!("g{dim}"),
            format!("{dim}x{dim} Gemmini, matrix_add"),
            gemmini(dim.min(16)), // mesh capped for laptop-scale runs
            kcycles,
        )
    }

    /// SHA3 running `sha3-rocc`.
    pub fn sha3() -> Workload {
        Workload::new("sha3", "SHA3 accelerator, sha3-rocc", sha3(), 1200)
    }

    /// The paper's main-evaluation grid (Figure 20 x-axis): RocketChips,
    /// SmallBOOMs, Gemminis, SHA3.
    pub fn main_grid() -> Vec<Workload> {
        vec![
            Workload::rocket(1),
            Workload::rocket(4),
            Workload::rocket(8),
            Workload::small_boom(1),
            Workload::small_boom(4),
            Workload::small_boom(8),
            Workload::gemmini(8),
            Workload::gemmini(16),
            Workload::sha3(),
        ]
    }

    /// Scaled cycle budget for a given divisor (CI-friendly runs).
    pub fn cycles(&self, divisor: u64) -> u64 {
        (self.full_cycles / divisor.max(1)).max(10)
    }

    /// Advances the stimulus generator and returns the next input vector
    /// value (splitmix64 — deterministic across all simulators).
    pub fn next_stimulus(&mut self) -> u64 {
        let mut stream = Stimulus { seed: self.seed };
        let value = stream.next_value();
        self.seed = stream.seed;
        value
    }

    /// An independent deterministic stimulus stream for one batch lane.
    ///
    /// Lane 0 reproduces this workload's own stream (`next_stimulus`);
    /// other lanes decorrelate the seed, so a `B`-lane batch run sees `B`
    /// distinct but reproducible testbenches — the batched analog of
    /// running the benchmark grid `B` times with different seeds.
    pub fn lane_stimulus(&self, lane: usize) -> Stimulus {
        let mut seed = self.seed;
        if lane > 0 {
            seed ^= (lane as u64)
                .wrapping_mul(0xd6e8_feb8_6659_fd93)
                .rotate_left(17);
        }
        Stimulus { seed }
    }
}

/// The parameterized sum-loop program behind
/// [`Workload::rv32i_param_sum`]: sum `x15..=1` into `a0`, then halt on
/// a self-jump. One function so the circuit and the ISA-golden-model
/// test run the identical program.
fn param_sum_program() -> Vec<u32> {
    vec![
        asm::addi(1, 0, 0),  // sum = 0
        asm::add(2, 15, 0),  // counter = x15 (poked at admission)
        asm::add(1, 1, 2),   // loop: sum += counter
        asm::addi(2, 2, -1), //       counter -= 1
        asm::bne(2, 0, -2),  //       until counter == 0
        asm::add(10, 1, 0),  // a0 = sum
        asm::jal(0, 6),      // halt: jump-to-self
    ]
}

/// A deterministic splitmix64 stimulus stream (one batch lane's
/// testbench input sequence).
#[derive(Debug, Clone)]
pub struct Stimulus {
    seed: u64,
}

impl Stimulus {
    /// A stream from a raw seed (for testbenches not tied to a
    /// [`Workload`]).
    pub fn from_seed(seed: u64) -> Self {
        Stimulus { seed }
    }

    /// The next input vector value.
    pub fn next_value(&mut self) -> u64 {
        self.seed = self.seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_budgets() {
        assert_eq!(Workload::rocket(1).full_cycles, 540_000);
        assert_eq!(Workload::small_boom(8).full_cycles, 750_000);
        assert_eq!(Workload::gemmini(8).full_cycles, 160_000);
        assert_eq!(Workload::sha3().full_cycles, 1_200_000);
    }

    #[test]
    fn cycle_scaling() {
        let w = Workload::sha3();
        assert_eq!(w.cycles(1000), 1200);
        assert_eq!(w.cycles(0), w.full_cycles);
        assert!(w.cycles(u64::MAX) >= 10);
    }

    #[test]
    fn stimulus_is_deterministic_per_workload() {
        let mut a = Workload::rocket(1);
        let mut b = Workload::rocket(1);
        let xs: Vec<u64> = (0..10).map(|_| a.next_stimulus()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_stimulus()).collect();
        assert_eq!(xs, ys);
        // Different workloads diverge.
        let mut c = Workload::rocket(4);
        assert_ne!(xs[0], c.next_stimulus());
    }

    #[test]
    fn lane_streams_are_deterministic_and_distinct() {
        let w = Workload::sha3();
        // Lane 0 reproduces the workload's own stream.
        let mut own = Workload::sha3();
        let mut lane0 = w.lane_stimulus(0);
        for _ in 0..20 {
            assert_eq!(lane0.next_value(), own.next_stimulus());
        }
        // Lanes are reproducible and pairwise distinct.
        for lane in 0..8 {
            let mut a = w.lane_stimulus(lane);
            let mut b = w.lane_stimulus(lane);
            let xs: Vec<u64> = (0..10).map(|_| a.next_value()).collect();
            let ys: Vec<u64> = (0..10).map(|_| b.next_value()).collect();
            assert_eq!(xs, ys);
        }
        let firsts: std::collections::HashSet<u64> = (0..8)
            .map(|lane| w.lane_stimulus(lane).next_value())
            .collect();
        assert_eq!(firsts.len(), 8, "lane streams should decorrelate");
    }

    #[test]
    fn rv32i_workload_declares_its_halt_probe() {
        let w = Workload::rv32i_sum_loop();
        assert_eq!(w.halt_signal, Some("halt"));
        assert!(w.circuit.modules[0].name.contains("Rv32i"));
        // The grid workloads are free-running.
        for w in Workload::main_grid() {
            assert_eq!(w.halt_signal, None, "{}", w.id);
        }
    }

    #[test]
    fn param_sum_matches_the_isa_golden_model() {
        use crate::rv32i::GoldenCpu;
        for k in [1u64, 2, 7, 31, 63] {
            let w = Workload::rv32i_param_sum(k);
            assert_eq!(w.halt_signal, Some("halt"));
            assert_eq!(w.state_pokes, vec![("x15".to_string(), k)]);
            // Run the ISA model on the *same* program the circuit was
            // built from, with the same architectural poke.
            let mut sw = GoldenCpu::new(&param_sum_program());
            sw.x[15] = k as u32;
            for _ in 0..w.full_cycles {
                sw.step();
            }
            assert_eq!(sw.pc, 6, "k={k} halted on the self-jump");
            assert_eq!(
                u64::from(sw.x[10]),
                Workload::param_sum_expected(k),
                "k={k}"
            );
        }
    }

    #[test]
    fn corpus_params_match_the_built_corpus() {
        let ks = Workload::corpus_params(12, 0xfeed);
        let corpus = Workload::corpus(12, 0xfeed);
        assert_eq!(ks.len(), 12);
        for (k, w) in ks.iter().zip(&corpus) {
            assert_eq!(w.state_pokes, vec![("x15".to_string(), *k)]);
            assert_eq!(w.full_cycles, Workload::param_sum_budget(*k));
        }
        // The shared-circuit helper is the corpus circuit.
        assert_eq!(
            format!("{:?}", Workload::param_sum_circuit()),
            format!("{:?}", corpus[0].circuit)
        );
    }

    #[test]
    fn corpus_is_deterministic_mixed_and_single_circuit() {
        let a = Workload::corpus(8, 0xc0ffee);
        let b = Workload::corpus(8, 0xc0ffee);
        assert_eq!(a.len(), 8);
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.id, wb.id);
            assert_eq!(wa.state_pokes, wb.state_pokes);
            assert_eq!(wa.full_cycles, wb.full_cycles);
        }
        // Different seeds give a different mix.
        let c = Workload::corpus(8, 1);
        assert!(a.iter().zip(&c).any(|(x, y)| x.id != y.id));
        // Short jobs interleave with long ones.
        let ks: Vec<u64> = a.iter().map(|w| w.state_pokes[0].1).collect();
        assert!(ks.iter().step_by(2).all(|&k| (1..=8).contains(&k)));
        assert!(ks
            .iter()
            .skip(1)
            .step_by(2)
            .all(|&k| (24..=63).contains(&k)));
        // Every job shares the same circuit — the parameter travels in
        // the state poke, never in the ROM.
        let body = format!("{:?}", a[0].circuit);
        for w in &a[1..] {
            assert_eq!(format!("{:?}", w.circuit), body, "{} circuit differs", w.id);
        }
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn param_sum_rejects_zero() {
        let _ = Workload::rv32i_param_sum(0);
    }

    #[test]
    fn main_grid_covers_all_designs() {
        let grid = Workload::main_grid();
        assert_eq!(grid.len(), 9);
        let ids: Vec<&str> = grid.iter().map(|w| w.id.as_str()).collect();
        assert!(ids.contains(&"r8"));
        assert!(ids.contains(&"s4"));
        assert!(ids.contains(&"g16"));
        assert!(ids.contains(&"sha3"));
    }
}
