//! Workload definitions: the designs × benchmarks grid of paper §7.1.
//!
//! Table 3 gives the simulation cycle counts (dhrystone on RocketChip and
//! BOOM, `matrix_add` on Gemmini, `sha3-rocc` on SHA3). The real
//! testbenches need a software stack we cannot ship, so each workload
//! pairs a design with a deterministic stimulus driver (reset followed by
//! pseudo-random input toggling from a splitmix generator) and a *scaled*
//! cycle budget (`cycles = table3 / divisor`), per DESIGN.md §4.2.

use crate::chip::{gemmini, rocket, small_boom, ChipConfig};
use crate::rv32i::{asm, rv32i};
use crate::sha3::sha3;
use rteaal_firrtl::ast::Circuit;

/// Table 3 simulation cycle counts (thousands).
pub const TABLE3_KCYCLES: [(&str, u64); 6] = [
    ("rocket", 540),
    ("boom", 750),
    ("gemmini-8", 160),
    ("gemmini-16", 350),
    ("gemmini-32", 1100),
    ("sha3", 1200),
];

/// A design paired with its benchmark stimulus.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short id (`r1`, `s8`, `g16`, `sha3`, …).
    pub id: String,
    /// Human-readable description.
    pub description: String,
    /// The design.
    pub circuit: Circuit,
    /// Full (paper-scale) cycle budget.
    pub full_cycles: u64,
    /// Output that goes high when a lane's benchmark is architecturally
    /// finished — the probe lane-liveness early exit watches. `None` for
    /// free-running workloads.
    pub halt_signal: Option<&'static str>,
    /// Stimulus generator state.
    seed: u64,
}

impl Workload {
    fn new(id: impl Into<String>, desc: impl Into<String>, circuit: Circuit, kcycles: u64) -> Self {
        let id = id.into();
        let seed = 0x5eed
            ^ id.bytes()
                .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64));
        Workload {
            id,
            description: desc.into(),
            circuit,
            full_cycles: kcycles * 1000,
            halt_signal: None,
            seed,
        }
    }

    /// The RV32I core running its sum-loop benchmark to completion: sum
    /// `1..=20` into `a0`, then spin on a self-jump that raises the
    /// `halt` output — the workload that exercises lane-liveness early
    /// exit (per-lane completion around cycle 65 after reset release).
    pub fn rv32i_sum_loop() -> Workload {
        let program = vec![
            asm::addi(1, 0, 0),
            asm::addi(2, 0, 20),
            asm::add(1, 1, 2),
            asm::addi(2, 2, -1),
            asm::bne(2, 0, -2),
            asm::add(10, 1, 0),
            asm::jal(0, 6),
        ];
        let mut w = Workload::new("rv32i", "RV32I core, sum loop to halt", rv32i(&program), 1);
        w.halt_signal = Some("halt");
        w
    }

    /// RocketChip running the dhrystone analog.
    pub fn rocket(cores: usize) -> Workload {
        Workload::new(
            format!("r{cores}"),
            format!("{cores}-core RocketChip, dhrystone"),
            rocket(ChipConfig::new(cores)),
            540,
        )
    }

    /// SmallBOOM running the dhrystone analog.
    pub fn small_boom(cores: usize) -> Workload {
        Workload::new(
            format!("s{cores}"),
            format!("{cores}-core SmallBOOM, dhrystone"),
            small_boom(ChipConfig::new(cores)),
            750,
        )
    }

    /// Gemmini running `matrix_add` on a `dim × dim` mesh.
    pub fn gemmini(dim: usize) -> Workload {
        let kcycles = match dim {
            d if d <= 8 => 160,
            d if d <= 16 => 350,
            _ => 1100,
        };
        Workload::new(
            format!("g{dim}"),
            format!("{dim}x{dim} Gemmini, matrix_add"),
            gemmini(dim.min(16)), // mesh capped for laptop-scale runs
            kcycles,
        )
    }

    /// SHA3 running `sha3-rocc`.
    pub fn sha3() -> Workload {
        Workload::new("sha3", "SHA3 accelerator, sha3-rocc", sha3(), 1200)
    }

    /// The paper's main-evaluation grid (Figure 20 x-axis): RocketChips,
    /// SmallBOOMs, Gemminis, SHA3.
    pub fn main_grid() -> Vec<Workload> {
        vec![
            Workload::rocket(1),
            Workload::rocket(4),
            Workload::rocket(8),
            Workload::small_boom(1),
            Workload::small_boom(4),
            Workload::small_boom(8),
            Workload::gemmini(8),
            Workload::gemmini(16),
            Workload::sha3(),
        ]
    }

    /// Scaled cycle budget for a given divisor (CI-friendly runs).
    pub fn cycles(&self, divisor: u64) -> u64 {
        (self.full_cycles / divisor.max(1)).max(10)
    }

    /// Advances the stimulus generator and returns the next input vector
    /// value (splitmix64 — deterministic across all simulators).
    pub fn next_stimulus(&mut self) -> u64 {
        let mut stream = Stimulus { seed: self.seed };
        let value = stream.next_value();
        self.seed = stream.seed;
        value
    }

    /// An independent deterministic stimulus stream for one batch lane.
    ///
    /// Lane 0 reproduces this workload's own stream (`next_stimulus`);
    /// other lanes decorrelate the seed, so a `B`-lane batch run sees `B`
    /// distinct but reproducible testbenches — the batched analog of
    /// running the benchmark grid `B` times with different seeds.
    pub fn lane_stimulus(&self, lane: usize) -> Stimulus {
        let mut seed = self.seed;
        if lane > 0 {
            seed ^= (lane as u64)
                .wrapping_mul(0xd6e8_feb8_6659_fd93)
                .rotate_left(17);
        }
        Stimulus { seed }
    }
}

/// A deterministic splitmix64 stimulus stream (one batch lane's
/// testbench input sequence).
#[derive(Debug, Clone)]
pub struct Stimulus {
    seed: u64,
}

impl Stimulus {
    /// A stream from a raw seed (for testbenches not tied to a
    /// [`Workload`]).
    pub fn from_seed(seed: u64) -> Self {
        Stimulus { seed }
    }

    /// The next input vector value.
    pub fn next_value(&mut self) -> u64 {
        self.seed = self.seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_budgets() {
        assert_eq!(Workload::rocket(1).full_cycles, 540_000);
        assert_eq!(Workload::small_boom(8).full_cycles, 750_000);
        assert_eq!(Workload::gemmini(8).full_cycles, 160_000);
        assert_eq!(Workload::sha3().full_cycles, 1_200_000);
    }

    #[test]
    fn cycle_scaling() {
        let w = Workload::sha3();
        assert_eq!(w.cycles(1000), 1200);
        assert_eq!(w.cycles(0), w.full_cycles);
        assert!(w.cycles(u64::MAX) >= 10);
    }

    #[test]
    fn stimulus_is_deterministic_per_workload() {
        let mut a = Workload::rocket(1);
        let mut b = Workload::rocket(1);
        let xs: Vec<u64> = (0..10).map(|_| a.next_stimulus()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_stimulus()).collect();
        assert_eq!(xs, ys);
        // Different workloads diverge.
        let mut c = Workload::rocket(4);
        assert_ne!(xs[0], c.next_stimulus());
    }

    #[test]
    fn lane_streams_are_deterministic_and_distinct() {
        let w = Workload::sha3();
        // Lane 0 reproduces the workload's own stream.
        let mut own = Workload::sha3();
        let mut lane0 = w.lane_stimulus(0);
        for _ in 0..20 {
            assert_eq!(lane0.next_value(), own.next_stimulus());
        }
        // Lanes are reproducible and pairwise distinct.
        for lane in 0..8 {
            let mut a = w.lane_stimulus(lane);
            let mut b = w.lane_stimulus(lane);
            let xs: Vec<u64> = (0..10).map(|_| a.next_value()).collect();
            let ys: Vec<u64> = (0..10).map(|_| b.next_value()).collect();
            assert_eq!(xs, ys);
        }
        let firsts: std::collections::HashSet<u64> = (0..8)
            .map(|lane| w.lane_stimulus(lane).next_value())
            .collect();
        assert_eq!(firsts.len(), 8, "lane streams should decorrelate");
    }

    #[test]
    fn rv32i_workload_declares_its_halt_probe() {
        let w = Workload::rv32i_sum_loop();
        assert_eq!(w.halt_signal, Some("halt"));
        assert!(w.circuit.modules[0].name.contains("Rv32i"));
        // The grid workloads are free-running.
        for w in Workload::main_grid() {
            assert_eq!(w.halt_signal, None, "{}", w.id);
        }
    }

    #[test]
    fn main_grid_covers_all_designs() {
        let grid = Workload::main_grid();
        assert_eq!(grid.len(), 9);
        let ids: Vec<&str> = grid.iter().map(|w| w.id.as_str()).collect();
        assert!(ids.contains(&"r8"));
        assert!(ids.contains(&"s4"));
        assert!(ids.contains(&"g16"));
        assert!(ids.contains(&"sha3"));
    }
}
