//! A real Keccak-f[1600] round datapath (the paper's SHA3 accelerator,
//! [Schmidt & Izraelevitz 2013]).
//!
//! Unlike the synthetic multicores, SHA3 is small enough to build
//! faithfully: 25 64-bit lane registers, one full Keccak round
//! (θ, ρ, π, χ, ι) of combinational logic per cycle, a round counter, and
//! an absorb interface. The [`keccak_f`] software permutation is the
//! golden model the hardware is validated against.

// Keccak is (x, y) lane-matrix math; explicit indices mirror the spec.
#![allow(clippy::needless_range_loop)]

use crate::blocks::{mux_tree, rotl, xor_tree};
use rteaal_firrtl::ast::{Circuit, Expr};
use rteaal_firrtl::builder::{CircuitBuilder, ModuleBuilder};
use rteaal_firrtl::ops::PrimOp;
use rteaal_firrtl::ty::Type;

/// Keccak round constants (ι step).
pub const ROUND_CONSTANTS: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// ρ-step rotation offsets, indexed `[y][x]`.
pub const RHO_OFFSETS: [[u32; 5]; 5] = [
    [0, 1, 62, 28, 27],
    [36, 44, 6, 55, 20],
    [3, 10, 43, 25, 39],
    [41, 45, 15, 21, 8],
    [18, 2, 61, 56, 14],
];

/// The reference software Keccak-f[1600] permutation (golden model).
pub fn keccak_f(state: &mut [[u64; 5]; 5]) {
    for rc in ROUND_CONSTANTS {
        keccak_round(state, rc);
    }
}

/// One software Keccak round.
pub fn keccak_round(s: &mut [[u64; 5]; 5], rc: u64) {
    // θ
    let mut c = [0u64; 5];
    for x in 0..5 {
        c[x] = s[0][x] ^ s[1][x] ^ s[2][x] ^ s[3][x] ^ s[4][x];
    }
    let mut d = [0u64; 5];
    for x in 0..5 {
        d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
    }
    for y in 0..5 {
        for x in 0..5 {
            s[y][x] ^= d[x];
        }
    }
    // ρ and π
    let mut b = [[0u64; 5]; 5];
    for y in 0..5 {
        for x in 0..5 {
            b[(2 * x + 3 * y) % 5][y] = s[y][x].rotate_left(RHO_OFFSETS[y][x]);
        }
    }
    // χ
    for y in 0..5 {
        for x in 0..5 {
            s[y][x] = b[y][x] ^ (!b[y][(x + 1) % 5] & b[y][(x + 2) % 5]);
        }
    }
    // ι
    s[0][0] ^= rc;
}

/// Builds the SHA3 round-per-cycle circuit.
///
/// Interface: assert `start` with the 17 rate lanes on `in0..in16` to
/// absorb a block; the state permutes one round per cycle for 24 cycles;
/// `done` goes high and `out0..out3` expose the first digest lanes.
pub fn sha3() -> Circuit {
    let mut b = ModuleBuilder::new("Sha3");
    let clock = b.input("clock", Type::Clock);
    let start = b.input("start", Type::uint(1));
    let ins: Vec<Expr> = (0..17)
        .map(|i| b.input(format!("in{i}"), Type::uint(64)))
        .collect();

    // State lanes and the round counter.
    for y in 0..5 {
        for x in 0..5 {
            b.reg(format!("s_{y}_{x}"), Type::uint(64), clock.clone());
        }
    }
    let round = b.reg("round", Type::uint(5), clock.clone());
    let running = b.reg("running", Type::uint(1), clock.clone());
    let lane = |y: usize, x: usize| Expr::r(format!("s_{y}_{x}"));

    // θ: column parities and the D mask.
    let mut c = Vec::with_capacity(5);
    for x in 0..5 {
        let col: Vec<Expr> = (0..5).map(|y| lane(y, x)).collect();
        c.push(xor_tree(&mut b, &col));
    }
    let mut d = Vec::with_capacity(5);
    for x in 0..5 {
        let rot1 = rotl(&mut b, c[(x + 1) % 5].clone(), 1, 64);
        d.push(b.binop(PrimOp::Xor, c[(x + 4) % 5].clone(), rot1));
    }
    // θ apply + ρ + π into B.
    let mut bmat: Vec<Vec<Option<Expr>>> = vec![vec![None; 5]; 5];
    for y in 0..5 {
        for x in 0..5 {
            let t = b.binop(PrimOp::Xor, lane(y, x), d[x].clone());
            let r = rotl(&mut b, t, RHO_OFFSETS[y][x], 64);
            bmat[(2 * x + 3 * y) % 5][y] = Some(r);
        }
    }
    // χ + ι.
    let rc = mux_tree(
        &mut b,
        &round.clone(),
        &ROUND_CONSTANTS
            .iter()
            .map(|&v| Expr::u(v, 64))
            .collect::<Vec<_>>(),
        5,
    );
    for y in 0..5 {
        for x in 0..5 {
            let b0 = bmat[y][x].clone().unwrap();
            let b1 = bmat[y][(x + 1) % 5].clone().unwrap();
            let b2 = bmat[y][(x + 2) % 5].clone().unwrap();
            let not1 = b.unop(PrimOp::Not, b1);
            let and12 = b.binop(PrimOp::And, not1, b2);
            let mut chi = b.binop(PrimOp::Xor, b0, and12);
            if y == 0 && x == 0 {
                chi = b.binop(PrimOp::Xor, chi, rc.clone());
            }
            // Next state: absorb on start, permute while running, else
            // hold. Absorption xors the rate lanes into the state
            // (lane index = 5*y + x < 17).
            let idx = 5 * y + x;
            let absorbed = if idx < 17 {
                b.binop(PrimOp::Xor, lane(y, x), ins[idx].clone())
            } else {
                lane(y, x)
            };
            let held = Expr::mux(Expr::r("running"), chi, lane(y, x));
            b.connect(
                format!("s_{y}_{x}"),
                Expr::mux(start.clone(), absorbed, held),
            );
        }
    }
    // Control.
    let last = b.node(
        "last_round",
        Expr::prim(PrimOp::Eq, vec![round.clone(), Expr::u(23, 5)]),
    );
    let round_inc = b.node_fresh(
        "rinc",
        Expr::prim_p(
            PrimOp::Tail,
            vec![Expr::prim(PrimOp::Add, vec![round.clone(), Expr::u(1, 5)])],
            vec![1],
        ),
    );
    let next_round = Expr::mux(
        start.clone(),
        Expr::u(0, 5),
        Expr::mux(
            Expr::r("running"),
            Expr::mux(last.clone(), Expr::u(0, 5), round_inc),
            round.clone(),
        ),
    );
    b.connect("round", next_round);
    let next_running = Expr::mux(
        start,
        Expr::u(1, 1),
        Expr::mux(
            Expr::r("running"),
            Expr::prim(PrimOp::Eq, vec![last, Expr::u(0, 1)]),
            Expr::u(0, 1),
        ),
    );
    b.connect("running", next_running);
    let not_running = b.node_fresh("nr", Expr::prim(PrimOp::Eq, vec![running, Expr::u(0, 1)]));
    b.output_expr("done", Type::uint(1), not_running);
    for i in 0..4 {
        b.output_expr(format!("out{i}"), Type::uint(64), lane(i / 5, i % 5));
    }
    let mut cb = CircuitBuilder::new("Sha3");
    cb.add_module(b.finish());
    cb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rteaal_dfg::interp::Interpreter;
    use rteaal_firrtl::lower::lower_typed;

    /// Known-answer test: Keccak-f[1600] on the zero state (first lanes
    /// of the standard KAT).
    #[test]
    fn software_keccak_known_answer() {
        let mut s = [[0u64; 5]; 5];
        keccak_f(&mut s);
        assert_eq!(s[0][0], 0xf1258f7940e1dde7);
        assert_eq!(s[0][1], 0x84d5ccf933c0478a);
        assert_eq!(s[0][2], 0xd598261ea65aa9ee);
        assert_eq!(s[1][0], 0xff97a42d7f8e6fd4);
        // Second application (regression against aliasing bugs).
        keccak_f(&mut s);
        assert_eq!(s[0][0], 0x2d5c954df96ecb3c);
    }

    #[test]
    fn hardware_round_matches_software() {
        let c = sha3();
        let g = rteaal_dfg::build(&lower_typed(&c).unwrap()).unwrap();
        let mut sim = Interpreter::new(&g);
        // Absorb a message into the zero state.
        let msg: Vec<u64> = (0..17)
            .map(|i| 0x0123_4567_89ab_cdefu64.rotate_left(i))
            .collect();
        sim.set_input_by_name("start", 1);
        for (i, m) in msg.iter().enumerate() {
            sim.set_input_by_name(&format!("in{i}"), *m);
        }
        sim.step();
        sim.set_input_by_name("start", 0);
        // Software model of the absorbed state.
        let mut sw = [[0u64; 5]; 5];
        for (i, m) in msg.iter().enumerate() {
            sw[i / 5][i % 5] ^= m;
        }
        // Step the hardware one round at a time and compare.
        for round in 0..24 {
            sim.step();
            keccak_round(&mut sw, ROUND_CONSTANTS[round]);
            for y in 0..5 {
                for x in 0..5 {
                    assert_eq!(
                        sim.peek_by_name(&format!("s_{y}_{x}")),
                        Some(sw[y][x]),
                        "lane ({y},{x}) after round {round}"
                    );
                }
            }
        }
        // Done goes high after round 24.
        sim.step();
        assert_eq!(sim.output_by_name("done"), Some(1));
        assert_eq!(sim.output_by_name("out0"), Some(sw[0][0]));
    }

    #[test]
    fn state_holds_when_idle() {
        let c = sha3();
        let g = rteaal_dfg::build(&lower_typed(&c).unwrap()).unwrap();
        let mut sim = Interpreter::new(&g);
        sim.step();
        let before = sim.peek_by_name("s_2_2");
        sim.step();
        sim.step();
        assert_eq!(sim.peek_by_name("s_2_2"), before);
        assert_eq!(sim.output_by_name("done"), Some(1));
    }
}
