//! Reusable synchronous logic blocks for the design generators.
//!
//! These produce *connected, typed* FIRRTL logic — ALU slices, balanced
//! mux trees, priority mux chains, decoders, xor-reduction trees, LFSRs —
//! so the synthetic Chipyard-like designs exercise realistic op mixes,
//! fan-out, and levelization depth rather than random DAG noise
//! (DESIGN.md §4.1).

use rteaal_firrtl::ast::Expr;
use rteaal_firrtl::builder::ModuleBuilder;
use rteaal_firrtl::ops::PrimOp;
use rteaal_firrtl::ty::Type;

/// Truncating add: `tail(add(a, b), 1)` — keeps the operand width.
pub fn add_w(b: &mut ModuleBuilder, a: Expr, x: Expr) -> Expr {
    b.node_fresh(
        "addw",
        Expr::prim_p(
            PrimOp::Tail,
            vec![Expr::prim(PrimOp::Add, vec![a, x])],
            vec![1],
        ),
    )
}

/// Truncating subtract.
pub fn sub_w(b: &mut ModuleBuilder, a: Expr, x: Expr) -> Expr {
    b.node_fresh(
        "subw",
        Expr::prim_p(
            PrimOp::Tail,
            vec![Expr::prim(PrimOp::Sub, vec![a, x])],
            vec![1],
        ),
    )
}

/// Rotate-left of a `width`-bit value by a constant.
pub fn rotl(b: &mut ModuleBuilder, v: Expr, r: u32, width: u32) -> Expr {
    let r = r % width;
    if r == 0 {
        return v;
    }
    let hi = Expr::prim_p(
        PrimOp::Bits,
        vec![v.clone()],
        vec![(width - r - 1) as u64, 0],
    );
    let lo = Expr::prim_p(
        PrimOp::Bits,
        vec![v],
        vec![(width - 1) as u64, (width - r) as u64],
    );
    b.node_fresh("rotl", Expr::prim(PrimOp::Cat, vec![hi, lo]))
}

/// A balanced select tree: `items[sel]` for a `sel` of `ceil(log2(n))`
/// bits (out-of-range selects resolve to the last item).
pub fn mux_tree(b: &mut ModuleBuilder, sel: &Expr, items: &[Expr], sel_width: u32) -> Expr {
    fn rec(b: &mut ModuleBuilder, sel: &Expr, items: &[Expr], bit: i64) -> Expr {
        if items.len() == 1 || bit < 0 {
            return items[0].clone();
        }
        let half = 1usize << bit;
        if items.len() <= half {
            return rec(b, sel, items, bit - 1);
        }
        let s = Expr::prim_p(
            PrimOp::Bits,
            vec![sel.clone()],
            vec![bit as u64, bit as u64],
        );
        let lo = rec(b, sel, &items[..half], bit - 1);
        let hi = rec(b, sel, &items[half..], bit - 1);
        b.node_fresh("mt", Expr::mux(s, hi, lo))
    }
    assert!(!items.is_empty());
    rec(b, sel, items, sel_width as i64 - 1)
}

/// A priority mux chain (the structure operator fusion targets, Box 1):
/// `conds[0] ? vals[0] : conds[1] ? vals[1] : … : default`.
pub fn mux_chain(b: &mut ModuleBuilder, conds: &[Expr], vals: &[Expr], default: Expr) -> Expr {
    assert_eq!(conds.len(), vals.len());
    let mut acc = default;
    for (c, v) in conds.iter().rev().zip(vals.iter().rev()) {
        acc = Expr::mux(c.clone(), v.clone(), acc);
    }
    b.node_fresh("chain", acc)
}

/// A one-hot decoder: `n` outputs, output `i` = (`sel == i`).
pub fn decoder(b: &mut ModuleBuilder, sel: &Expr, n: usize, sel_width: u32) -> Vec<Expr> {
    (0..n)
        .map(|i| {
            b.node_fresh(
                "dec",
                Expr::prim(PrimOp::Eq, vec![sel.clone(), Expr::u(i as u64, sel_width)]),
            )
        })
        .collect()
}

/// A balanced xor-reduction tree over equal-width values.
pub fn xor_tree(b: &mut ModuleBuilder, items: &[Expr]) -> Expr {
    assert!(!items.is_empty());
    let mut level: Vec<Expr> = items.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(if pair.len() == 2 {
                b.node_fresh(
                    "xt",
                    Expr::prim(PrimOp::Xor, vec![pair[0].clone(), pair[1].clone()]),
                )
            } else {
                pair[0].clone()
            });
        }
        level = next;
    }
    level.pop().unwrap()
}

/// An ALU slice: given two `width`-bit operands and a 3-bit opcode,
/// computes add/sub/and/or/xor/slt/shifted variants through a mux tree.
/// Returns the result expression. Roughly 10 effectual ops per slice.
pub fn alu(b: &mut ModuleBuilder, op: &Expr, a: Expr, x: Expr, width: u32) -> Expr {
    let sum = add_w(b, a.clone(), x.clone());
    let diff = sub_w(b, a.clone(), x.clone());
    let and = b.binop(PrimOp::And, a.clone(), x.clone());
    let or = b.binop(PrimOp::Or, a.clone(), x.clone());
    let xor = b.binop(PrimOp::Xor, a.clone(), x.clone());
    let slt = b.node_fresh(
        "slt",
        Expr::prim_p(
            PrimOp::Pad,
            vec![Expr::prim(PrimOp::Lt, vec![a.clone(), x.clone()])],
            vec![width as u64],
        ),
    );
    let sll = b.node_fresh(
        "sll",
        Expr::prim_p(
            PrimOp::Tail,
            vec![Expr::prim_p(PrimOp::Shl, vec![a.clone()], vec![1])],
            vec![1],
        ),
    );
    let srl = b.node_fresh(
        "srl",
        Expr::prim_p(
            PrimOp::Pad,
            vec![Expr::prim_p(PrimOp::Shr, vec![a], vec![1])],
            vec![width as u64],
        ),
    );
    mux_tree(b, op, &[sum, diff, and, or, xor, slt, sll, srl], 3)
}

/// A Fibonacci LFSR register of the given width; returns the state
/// expression. Used by workload drivers for deterministic stimulus.
pub fn lfsr(b: &mut ModuleBuilder, name: &str, clock: Expr, width: u32, seed: u64) -> Expr {
    let ty = Type::uint(width);
    let r = b.reg(name, ty, clock.clone());
    // Feedback from the top two bits.
    let t1 = Expr::prim_p(
        PrimOp::Bits,
        vec![r.clone()],
        vec![(width - 1) as u64, (width - 1) as u64],
    );
    let t2 = Expr::prim_p(
        PrimOp::Bits,
        vec![r.clone()],
        vec![(width - 2) as u64, (width - 2) as u64],
    );
    let fb = b.node_fresh("fb", Expr::prim(PrimOp::Xor, vec![t1, t2]));
    let shifted = Expr::prim_p(PrimOp::Bits, vec![r.clone()], vec![(width - 2) as u64, 0]);
    let next = b.node_fresh("lfsr_next", Expr::prim(PrimOp::Cat, vec![shifted, fb]));
    // Seed via a self-clearing "first cycle" flag so the LFSR never
    // sticks at zero.
    let boot = b.reg(format!("{name}_boot"), Type::uint(1), clock);
    b.connect(format!("{name}_boot"), Expr::u(1, 1));
    let seeded = b.node_fresh(
        "seeded",
        Expr::mux(
            Expr::prim(PrimOp::Eq, vec![boot, Expr::u(0, 1)]),
            Expr::u(seed & rteaal_firrtl::ty::mask(width), width),
            next,
        ),
    );
    b.connect(name, seeded);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use rteaal_dfg::interp::Interpreter;
    use rteaal_firrtl::builder::CircuitBuilder;
    use rteaal_firrtl::lower::lower_typed;

    fn finish(b: ModuleBuilder, name: &str) -> rteaal_dfg::Graph {
        let mut cb = CircuitBuilder::new(name);
        cb.add_module(b.finish());
        rteaal_dfg::build(&lower_typed(&cb.finish()).unwrap()).unwrap()
    }

    #[test]
    fn alu_computes_all_ops() {
        let mut b = ModuleBuilder::new("T");
        let a = b.input("a", Type::uint(8));
        let x = b.input("x", Type::uint(8));
        let op = b.input("op", Type::uint(3));
        let r = alu(&mut b, &op.clone(), a, x, 8);
        b.output_expr("out", Type::uint(8), r);
        let g = finish(b, "T");
        let mut sim = Interpreter::new(&g);
        let cases: [(u64, u64, u64, u64); 8] = [
            (0, 200, 100, 44), // add wraps
            (1, 10, 3, 7),     // sub
            (2, 0b1100, 0b1010, 0b1000),
            (3, 0b1100, 0b1010, 0b1110),
            (4, 0b1100, 0b1010, 0b0110),
            (5, 3, 9, 1),       // slt
            (6, 0x81, 0, 0x02), // sll by 1 drops the MSB
            (7, 0x81, 0, 0x40), // srl
        ];
        for (op, a, x, want) in cases {
            sim.set_input_by_name("a", a);
            sim.set_input_by_name("x", x);
            sim.set_input_by_name("op", op);
            sim.step();
            assert_eq!(sim.output_by_name("out"), Some(want), "op {op}");
        }
    }

    #[test]
    fn mux_tree_selects() {
        let mut b = ModuleBuilder::new("T");
        let sel = b.input("sel", Type::uint(3));
        let items: Vec<Expr> = (0..6).map(|i| Expr::u(i * 11, 8)).collect();
        let r = mux_tree(&mut b, &sel.clone(), &items, 3);
        b.output_expr("out", Type::uint(8), r);
        let g = finish(b, "T");
        let mut sim = Interpreter::new(&g);
        for i in 0..6u64 {
            sim.set_input(0, i);
            sim.step();
            assert_eq!(sim.output(0), i * 11, "index {i}");
        }
    }

    #[test]
    fn mux_chain_is_priority_ordered() {
        let mut b = ModuleBuilder::new("T");
        let c0 = b.input("c0", Type::uint(1));
        let c1 = b.input("c1", Type::uint(1));
        let r = mux_chain(
            &mut b,
            &[c0, c1],
            &[Expr::u(1, 4), Expr::u(2, 4)],
            Expr::u(9, 4),
        );
        b.output_expr("out", Type::uint(4), r);
        let g = finish(b, "T");
        let mut sim = Interpreter::new(&g);
        for (c0, c1, want) in [(1, 1, 1), (1, 0, 1), (0, 1, 2), (0, 0, 9)] {
            sim.set_input(0, c0);
            sim.set_input(1, c1);
            sim.step();
            assert_eq!(sim.output(0), want);
        }
    }

    #[test]
    fn decoder_is_one_hot() {
        let mut b = ModuleBuilder::new("T");
        let sel = b.input("sel", Type::uint(2));
        let outs = decoder(&mut b, &sel.clone(), 4, 2);
        for (i, o) in outs.into_iter().enumerate() {
            b.output_expr(format!("o{i}"), Type::uint(1), o);
        }
        let g = finish(b, "T");
        let mut sim = Interpreter::new(&g);
        for s in 0..4u64 {
            sim.set_input(0, s);
            sim.step();
            for i in 0..4 {
                assert_eq!(sim.output(i), (i as u64 == s) as u64);
            }
        }
    }

    #[test]
    fn rotl_matches_u64_rotate() {
        let mut b = ModuleBuilder::new("T");
        let v = b.input("v", Type::uint(64));
        let r = rotl(&mut b, v, 13, 64);
        b.output_expr("out", Type::uint(64), r);
        let g = finish(b, "T");
        let mut sim = Interpreter::new(&g);
        for x in [1u64, 0xdead_beef_cafe_f00d, u64::MAX, 0] {
            sim.set_input(0, x);
            sim.step();
            assert_eq!(sim.output(0), x.rotate_left(13));
        }
    }

    #[test]
    fn xor_tree_reduces() {
        let mut b = ModuleBuilder::new("T");
        let xs: Vec<Expr> = (0..5)
            .map(|i| b.input(format!("x{i}"), Type::uint(8)))
            .collect();
        let r = xor_tree(&mut b, &xs);
        b.output_expr("out", Type::uint(8), r);
        let g = finish(b, "T");
        let mut sim = Interpreter::new(&g);
        let vals = [0x11u64, 0x22, 0x44, 0x88, 0xff];
        for (i, v) in vals.iter().enumerate() {
            sim.set_input(i, *v);
        }
        sim.step();
        assert_eq!(sim.output(0), vals.iter().fold(0, |a, b| a ^ b));
    }

    #[test]
    fn lfsr_cycles_without_sticking() {
        let mut b = ModuleBuilder::new("T");
        b.input("clock", Type::Clock);
        let r = lfsr(&mut b, "rng", Expr::r("clock"), 16, 0xace1);
        b.output_expr("out", Type::uint(16), r);
        let g = finish(b, "T");
        let mut sim = Interpreter::new(&g);
        sim.step(); // seeds
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            sim.step();
            let v = sim.output(0);
            assert_ne!(v, 0, "LFSR stuck at zero");
            seen.insert(v);
        }
        assert!(seen.len() > 150, "LFSR not cycling: {} states", seen.len());
    }
}
