//! Synthetic Chipyard-like design generators (DESIGN.md §4.1).
//!
//! The paper evaluates RocketChip (in-order cores), SmallBOOM
//! (out-of-order cores), and Gemmini (a systolic array). We cannot ship
//! Chipyard RTL, so these generators emit *connected synchronous logic
//! with representative structure*: per-core pipelines built from ALU
//! clusters, decoders, register files, bypass mux chains, and multiplier
//! trees, scaled so the per-core effectual-op counts track the Table 1
//! ratios (SmallBOOM ≈ 1.6× RocketChip per core) at a configurable
//! `scale`. Every experiment in the paper's evaluation measures
//! *simulator* properties — compile cost, code footprint, cache behavior
//! — which depend on the dataflow graph's size and shape, not the ISA
//! semantics of the simulated design.

use crate::blocks::{add_w, alu, decoder, mux_chain, mux_tree, sub_w, xor_tree};
use rteaal_firrtl::ast::{Circuit, Expr};
use rteaal_firrtl::builder::{CircuitBuilder, ModuleBuilder};
use rteaal_firrtl::ops::PrimOp;
use rteaal_firrtl::ty::Type;

/// Scale knob for the synthetic designs: `1.0` approximates the paper's
/// per-core op counts (Table 1); the default used by tests and benches is
/// far smaller so the suite runs on a laptop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipConfig {
    /// Number of cores.
    pub cores: usize,
    /// Size scale in `(0, 1]` relative to the paper's designs.
    pub scale: f64,
}

impl ChipConfig {
    /// `cores` cores at the bench-default scale.
    pub fn new(cores: usize) -> Self {
        ChipConfig { cores, scale: 0.03 }
    }

    /// Same config at a different scale.
    pub fn with_scale(self, scale: f64) -> Self {
        ChipConfig { scale, ..self }
    }

    fn units(&self, per_core_at_full: usize) -> usize {
        ((per_core_at_full as f64 * self.scale).round() as usize).max(1)
    }
}

/// One synthetic in-order pipeline stage cluster: fetch-ish decode,
/// ALU, bypass network, and writeback select. Returns the writeback
/// value.
fn core_stage(
    b: &mut ModuleBuilder,
    clock: &Expr,
    stim: &Expr,
    width: u32,
    alus: usize,
    regfile_words: usize,
    tag: &str,
) -> Expr {
    // Architectural state: a small register file updated through a
    // one-hot write decoder (mux per word), read through mux trees.
    let sel_w = rteaal_firrtl::ty::bits_for(regfile_words.saturating_sub(1) as u64);
    let words: Vec<Expr> = (0..regfile_words)
        .map(|i| b.reg(format!("{tag}_rf{i}"), Type::uint(width), clock.clone()))
        .collect();
    let raddr = b.node_fresh(
        "raddr",
        Expr::prim_p(
            PrimOp::Bits,
            vec![stim.clone()],
            vec![(sel_w - 1) as u64, 0],
        ),
    );
    let rs1 = mux_tree(b, &raddr, &words, sel_w);
    let rot = b.node_fresh(
        "rot",
        Expr::prim(
            PrimOp::Cat,
            vec![
                Expr::prim_p(PrimOp::Bits, vec![stim.clone()], vec![0, 0]),
                Expr::prim_p(
                    PrimOp::Bits,
                    vec![stim.clone()],
                    vec![(width - 1) as u64, 1],
                ),
            ],
        ),
    );
    let rs2 = b.binop(PrimOp::Xor, rs1.clone(), rot);
    // Decode: opcode field drives the ALU cluster.
    let opcode = b.node_fresh(
        "op",
        Expr::prim_p(PrimOp::Bits, vec![stim.clone()], vec![2, 0]),
    );
    let mut results = Vec::with_capacity(alus);
    let mut acc = rs1.clone();
    for k in 0..alus {
        let operand = if k % 2 == 0 {
            rs2.clone()
        } else {
            stim.clone()
        };
        let r = alu(b, &opcode, acc.clone(), operand, width);
        results.push(r.clone());
        acc = r;
    }
    // A multiply unit (every core has one).
    let mul = b.node_fresh(
        "mul",
        Expr::prim_p(
            PrimOp::Tail,
            vec![Expr::prim(PrimOp::Mul, vec![rs1.clone(), rs2.clone()])],
            vec![width as u64],
        ),
    );
    results.push(mul);
    // Bypass network: a priority mux chain over hazard comparators (the
    // shape operator fusion targets).
    let hazards: Vec<Expr> = results
        .iter()
        .enumerate()
        .map(|(k, r)| {
            b.node_fresh(
                "hz",
                Expr::prim(
                    PrimOp::Eq,
                    vec![
                        Expr::prim_p(PrimOp::Bits, vec![r.clone()], vec![1, 0]),
                        Expr::u((k % 4) as u64, 2),
                    ],
                ),
            )
        })
        .collect();
    let wb = mux_chain(b, &hazards, &results, rs2.clone());
    // Writeback: one-hot decoded register-file update.
    let wsel = b.node_fresh(
        "wsel",
        Expr::prim_p(PrimOp::Bits, vec![wb.clone()], vec![(sel_w - 1) as u64, 0]),
    );
    let onehot = decoder(b, &wsel, regfile_words, sel_w);
    for (i, word) in words.iter().enumerate() {
        let upd = Expr::mux(onehot[i].clone(), wb.clone(), word.clone());
        b.connect(format!("{tag}_rf{i}"), upd);
    }
    wb
}

fn build_chip(
    name: &str,
    cfg: ChipConfig,
    alus_full: usize,
    rf_full: usize,
    width: u32,
) -> Circuit {
    let mut b = ModuleBuilder::new(name);
    let clock = b.input("clock", Type::Clock);
    let stim = b.input("stim", Type::uint(width));
    let alus = cfg.units(alus_full);
    let rf = cfg.units(rf_full).max(4);
    let mut digests = Vec::with_capacity(cfg.cores);
    for c in 0..cfg.cores {
        // Per-core stimulus decorrelation.
        let seed = b.node_fresh(
            "seed",
            Expr::prim(
                PrimOp::Xor,
                vec![
                    stim.clone(),
                    Expr::u(
                        (c as u64).wrapping_mul(0x9e37_79b9) & rteaal_firrtl::ty::mask(width),
                        width,
                    ),
                ],
            ),
        );
        let wb = core_stage(&mut b, &clock, &seed, width, alus, rf, &format!("c{c}"));
        // A small cross-core interconnect hop (xor into a shared digest).
        digests.push(wb);
    }
    let digest = xor_tree(&mut b, &digests);
    let acc = b.reg("digest_acc", Type::uint(width), clock);
    let nxt = add_w(&mut b, acc.clone(), digest);
    b.connect("digest_acc", nxt);
    b.output_expr("digest", Type::uint(width), acc);
    let mut cb = CircuitBuilder::new(name);
    cb.add_module(b.finish());
    cb.finish()
}

/// A RocketChip-like in-order multicore (paper designs `rocket-N`).
pub fn rocket(cfg: ChipConfig) -> Circuit {
    // Full scale targets ~60K effectual ops per core (Table 1).
    build_chip("RocketChip", cfg, 600, 320, 32)
}

/// A SmallBOOM-like out-of-order multicore (`small-N`): ~1.6x RocketChip
/// per core with deeper select structures (issue window analogs).
pub fn small_boom(cfg: ChipConfig) -> Circuit {
    build_chip("SmallBOOM", cfg, 950, 550, 32)
}

/// A Gemmini-like weight-stationary systolic MAC array (`gemmini-N` for
/// an `N×N` mesh): real dataflow — weights preloaded, activations stream
/// west→east, partial sums stream north→south.
#[allow(clippy::needless_range_loop)] // mesh code reads as (r, c) indices
pub fn gemmini(dim: usize) -> Circuit {
    let mut b = ModuleBuilder::new("Gemmini");
    let clock = b.input("clock", Type::Clock);
    let wen = b.input("wen", Type::uint(1));
    let wval = b.input("wval", Type::uint(8));
    let acts: Vec<Expr> = (0..dim)
        .map(|r| b.input(format!("act_in{r}"), Type::uint(8)))
        .collect();
    // PE state.
    for r in 0..dim {
        for c in 0..dim {
            b.reg(format!("w_{r}_{c}"), Type::uint(8), clock.clone());
            b.reg(format!("a_{r}_{c}"), Type::uint(8), clock.clone());
            b.reg(format!("ps_{r}_{c}"), Type::uint(32), clock.clone());
        }
    }
    for r in 0..dim {
        for c in 0..dim {
            let w = Expr::r(format!("w_{r}_{c}"));
            let a_in = if c == 0 {
                acts[r].clone()
            } else {
                Expr::r(format!("a_{r}_{}", c - 1))
            };
            let ps_in = if r == 0 {
                Expr::u(0, 32)
            } else {
                Expr::r(format!("ps_{}_{c}", r - 1))
            };
            // Weight preload shifts values down the column.
            let w_above = if r == 0 {
                wval.clone()
            } else {
                Expr::r(format!("w_{}_{c}", r - 1))
            };
            b.connect(
                format!("w_{r}_{c}"),
                Expr::mux(wen.clone(), w_above, w.clone()),
            );
            // MAC: ps_out = ps_in + w * a_in.
            let prod = b.node_fresh(
                "prod",
                Expr::prim_p(
                    PrimOp::Pad,
                    vec![Expr::prim(PrimOp::Mul, vec![w, a_in.clone()])],
                    vec![32],
                ),
            );
            let mac = add_w(&mut b, ps_in, prod);
            b.connect(format!("ps_{r}_{c}"), mac);
            b.connect(format!("a_{r}_{c}"), a_in);
        }
    }
    for c in 0..dim {
        b.output_expr(
            "ps_out".to_string() + &c.to_string(),
            Type::uint(32),
            Expr::r(format!("ps_{}_{c}", dim - 1)),
        );
    }
    let mut cb = CircuitBuilder::new("Gemmini");
    cb.add_module(b.finish());
    cb.finish()
}

/// Convenience: an arithmetic pipeline used as a mid-size test design.
pub fn pipeline(stages: usize, width: u32) -> Circuit {
    let mut b = ModuleBuilder::new("Pipeline");
    let clock = b.input("clock", Type::Clock);
    let x = b.input("x", Type::uint(width));
    let mut prev = x;
    for s in 0..stages {
        let r = b.reg(format!("p{s}"), Type::uint(width), clock.clone());
        let mixed = if s % 3 == 0 {
            add_w(&mut b, r.clone(), prev)
        } else if s % 3 == 1 {
            sub_w(&mut b, r.clone(), prev)
        } else {
            b.binop(PrimOp::Xor, r.clone(), prev)
        };
        b.connect(format!("p{s}"), mixed.clone());
        prev = mixed;
    }
    b.output_expr("out", Type::uint(width), prev);
    let mut cb = CircuitBuilder::new("Pipeline");
    cb.add_module(b.finish());
    cb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rteaal_dfg::level::levelize;
    use rteaal_dfg::passes::{optimize, PassOptions};
    use rteaal_firrtl::lower::lower_typed;

    fn graph_of(c: &Circuit) -> rteaal_dfg::Graph {
        rteaal_dfg::build(&lower_typed(c).unwrap()).unwrap()
    }

    #[test]
    fn rocket_scales_with_cores() {
        let g1 = graph_of(&rocket(ChipConfig::new(1)));
        let g4 = graph_of(&rocket(ChipConfig::new(4)));
        let r = g4.effectual_ops() as f64 / g1.effectual_ops() as f64;
        assert!(r > 3.0 && r < 5.0, "scaling ratio {r}");
    }

    #[test]
    fn boom_is_bigger_than_rocket_per_core() {
        // Table 1: small-1c / rocket-1c ≈ 94K / 60K ≈ 1.57.
        let r = graph_of(&rocket(ChipConfig::new(1))).effectual_ops() as f64;
        let s = graph_of(&small_boom(ChipConfig::new(1))).effectual_ops() as f64;
        let ratio = s / r;
        assert!(ratio > 1.3 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn identity_ops_dominate_effectual_as_in_table_1() {
        let g = graph_of(&rocket(ChipConfig::new(1)));
        let lv = levelize(&g);
        let identity = lv.identities.total();
        let effectual = lv.effectual_ops();
        // Table 1: 414K identities vs 60K effectual (≈ 6.9x).
        let ratio = identity as f64 / effectual as f64;
        assert!(ratio > 2.0, "identity/effectual = {ratio}");
    }

    #[test]
    fn designs_simulate_and_produce_activity() {
        for circuit in [
            rocket(ChipConfig::new(1)),
            small_boom(ChipConfig::new(1)),
            gemmini(4),
            pipeline(8, 16),
        ] {
            let g = graph_of(&circuit);
            let mut sim = rteaal_dfg::interp::Interpreter::new(&g);
            for i in 0..g.inputs.len() {
                sim.set_input(i, (0x1234_5678 + i as u64) | 1);
            }
            let mut outputs = std::collections::HashSet::new();
            for _ in 0..30 {
                sim.step();
                outputs.insert(sim.output(0));
            }
            assert!(outputs.len() > 1, "{}: output never changes", g.name);
        }
    }

    #[test]
    fn gemmini_mac_semantics() {
        // Preload weights column-wise, stream one activation, check MAC.
        let c = gemmini(2);
        let g = graph_of(&c);
        let mut sim = rteaal_dfg::interp::Interpreter::new(&g);
        // Two wen cycles shift `3` then `5` down column weights.
        sim.set_input_by_name("wen", 1);
        sim.set_input_by_name("wval", 5);
        sim.step();
        sim.set_input_by_name("wval", 3);
        sim.step();
        // Rows now: w[0][*] = 3, w[1][*] = 5.
        sim.set_input_by_name("wen", 0);
        sim.set_input_by_name("act_in0", 2);
        sim.set_input_by_name("act_in1", 4);
        sim.step(); // ps[0][0] = 3*2 = 6; a propagates
        assert_eq!(sim.peek_by_name("ps_0_0"), Some(6));
        sim.step(); // ps[1][0] = 6 (from above) + 5*4 = 26
        assert_eq!(sim.peek_by_name("ps_1_0"), Some(26));
    }

    #[test]
    fn mux_chains_are_fusable() {
        // The generated bypass networks must be visible to the fusion
        // pass (Box 1 operator fusion).
        let g = graph_of(&rocket(ChipConfig::new(1)));
        let (_, stats) = optimize(&g, &PassOptions::default());
        assert!(stats.chains_fused > 0, "no chains fused");
    }

    #[test]
    fn scale_knob_changes_size() {
        let small = graph_of(&rocket(ChipConfig::new(1).with_scale(0.01)));
        let large = graph_of(&rocket(ChipConfig::new(1).with_scale(0.05)));
        assert!(large.effectual_ops() > 2 * small.effectual_ops());
    }
}
