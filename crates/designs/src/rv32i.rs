//! A single-cycle RV32I-subset core, plus its ISA-level golden model.
//!
//! Used by the `riscv_core` example and the cross-simulator integration
//! tests: a real (if small) CPU whose architectural state can be checked
//! instruction-by-instruction against a software model. Supported
//! instructions: `LUI`, `ADDI/ANDI/ORI/XORI/SLTI/SLTIU/SLLI/SRLI`,
//! `ADD/SUB/AND/OR/XOR/SLT/SLTU/SLL/SRL`, `BEQ/BNE/BLT/BGE`, `JAL`,
//! `LW/SW` against a small data memory, and program memory preloaded at
//! construction.

use crate::blocks::{decoder, mux_tree};
use rteaal_firrtl::ast::{Circuit, Expr};
use rteaal_firrtl::builder::{CircuitBuilder, ModuleBuilder};
use rteaal_firrtl::ops::PrimOp;
use rteaal_firrtl::ty::Type;

/// Number of architectural registers modeled (x0..x15; the assembler
/// below only uses these).
pub const NUM_REGS: usize = 16;
/// Instruction-memory depth (words).
pub const IMEM_WORDS: usize = 64;
/// Data-memory depth (words).
pub const DMEM_WORDS: usize = 32;

/// Builds the core with `program` preloaded into instruction memory.
///
/// Outputs: `pc` (current program counter, word-addressed), `x10`
/// (the RISC-V a0 return register), and `halt` (PC stuck on a
/// self-jump).
pub fn rv32i(program: &[u32]) -> Circuit {
    assert!(program.len() <= IMEM_WORDS, "program too large");
    let mut b = ModuleBuilder::new("Rv32i");
    let clock = b.input("clock", Type::Clock);
    let reset = b.input("reset", Type::uint(1));

    // Program counter (word-addressed to keep the mux trees small).
    let pc = b.reg_reset(
        "pc",
        Type::uint(6),
        clock.clone(),
        reset.clone(),
        Expr::u(0, 6),
    );

    // Instruction fetch: a ROM as a mux tree over the PC.
    let rom: Vec<Expr> = (0..IMEM_WORDS)
        .map(|i| Expr::u(*program.get(i).unwrap_or(&0x0000_0013) as u64, 32)) // default NOP
        .collect();
    let instr = mux_tree(&mut b, &pc.clone(), &rom, 6);
    let instr = b.node("instr", instr);

    // Decode fields.
    let f = |hi: u64, lo: u64| Expr::prim_p(PrimOp::Bits, vec![instr.clone()], vec![hi, lo]);
    let opcode = b.node("opcode", f(6, 0));
    let rd = b.node("rd", f(10, 7)); // 4-bit register file
    let funct3 = b.node("funct3", f(14, 12));
    let rs1i = b.node("rs1i", f(18, 15));
    let rs2i = b.node("rs2i", f(23, 20));
    let funct7b5 = b.node("funct7b5", f(30, 30));
    // Immediates (sign-extended to 32 bits).
    let imm_i = b.node(
        "imm_i",
        Expr::prim_p(
            PrimOp::AsUInt,
            vec![Expr::prim_p(
                PrimOp::Pad,
                vec![Expr::prim_p(PrimOp::AsSInt, vec![f(31, 20)], vec![])],
                vec![32],
            )],
            vec![],
        ),
    );
    let imm_s_raw = Expr::prim(PrimOp::Cat, vec![f(31, 25), f(11, 7)]);
    let imm_s = b.node(
        "imm_s",
        Expr::prim_p(
            PrimOp::AsUInt,
            vec![Expr::prim_p(
                PrimOp::Pad,
                vec![Expr::prim_p(PrimOp::AsSInt, vec![imm_s_raw], vec![])],
                vec![32],
            )],
            vec![],
        ),
    );
    let imm_u = b.node(
        "imm_u",
        Expr::prim_p(PrimOp::Shl, vec![f(31, 12)], vec![12]),
    );

    // Register file: explicit registers with mux-tree reads (x0 = 0).
    let mut regs = vec![Expr::u(0, 32)];
    for i in 1..NUM_REGS {
        regs.push(b.reg(format!("x{i}"), Type::uint(32), clock.clone()));
    }
    let rs1_tree = mux_tree(&mut b, &rs1i, &regs, 4);
    let rs1 = b.node("rs1", rs1_tree);
    let rs2_tree = mux_tree(&mut b, &rs2i, &regs, 4);
    let rs2 = b.node("rs2", rs2_tree);

    // Opcode classes.
    let is = |v: u64| Expr::prim(PrimOp::Eq, vec![opcode.clone(), Expr::u(v, 7)]);
    let op_imm = b.node("op_imm", is(0x13));
    let op_reg = b.node("op_reg", is(0x33));
    let op_lui = b.node("op_lui", is(0x37));
    let op_br = b.node("op_br", is(0x63));
    let op_jal = b.node("op_jal", is(0x6f));
    let op_lw = b.node("op_lw", is(0x03));
    let op_sw = b.node("op_sw", is(0x23));

    // ALU operand B: immediates for OP-IMM/LW (I-type) and SW (S-type),
    // rs2 for register-register ops.
    let use_imm_i = b.node(
        "use_imm_i",
        Expr::prim(PrimOp::Or, vec![op_imm.clone(), op_lw.clone()]),
    );
    let alu_b = b.node(
        "alu_b",
        Expr::mux(
            op_sw.clone(),
            imm_s.clone(),
            Expr::mux(use_imm_i, imm_i.clone(), rs2.clone()),
        ),
    );
    let sum = b.node(
        "sum",
        Expr::prim_p(
            PrimOp::Tail,
            vec![Expr::prim(PrimOp::Add, vec![rs1.clone(), alu_b.clone()])],
            vec![1],
        ),
    );
    let diff = b.node(
        "diff",
        Expr::prim_p(
            PrimOp::Tail,
            vec![Expr::prim(PrimOp::Sub, vec![rs1.clone(), alu_b.clone()])],
            vec![1],
        ),
    );
    let and = b.binop(PrimOp::And, rs1.clone(), alu_b.clone());
    let or = b.binop(PrimOp::Or, rs1.clone(), alu_b.clone());
    let xor = b.binop(PrimOp::Xor, rs1.clone(), alu_b.clone());
    let sltu = b.node_fresh(
        "sltu",
        Expr::prim_p(
            PrimOp::Pad,
            vec![Expr::prim(PrimOp::Lt, vec![rs1.clone(), alu_b.clone()])],
            vec![32],
        ),
    );
    let slt = {
        let s1 = Expr::prim_p(PrimOp::AsSInt, vec![rs1.clone()], vec![]);
        let s2 = Expr::prim_p(PrimOp::AsSInt, vec![alu_b.clone()], vec![]);
        b.node_fresh(
            "slt",
            Expr::prim_p(
                PrimOp::Pad,
                vec![Expr::prim(PrimOp::Lt, vec![s1, s2])],
                vec![32],
            ),
        )
    };
    let shamt = b.node(
        "shamt",
        Expr::prim_p(PrimOp::Bits, vec![alu_b.clone()], vec![4, 0]),
    );
    let sll = b.node(
        "sll",
        Expr::prim_p(
            PrimOp::Tail,
            vec![Expr::prim(PrimOp::Dshl, vec![rs1.clone(), shamt.clone()])],
            vec![31],
        ),
    );
    let srl = b.node(
        "srl",
        Expr::prim_p(
            PrimOp::Pad,
            vec![Expr::prim(PrimOp::Dshr, vec![rs1.clone(), shamt])],
            vec![32],
        ),
    );
    // funct3 dispatch: 0 add/sub, 1 sll, 2 slt, 3 sltu, 4 xor, 5 srl,
    // 6 or, 7 and.
    let add_or_sub = b.node(
        "add_or_sub",
        Expr::mux(
            Expr::prim(PrimOp::And, vec![op_reg.clone(), funct7b5.clone()]),
            diff.clone(),
            sum.clone(),
        ),
    );
    let alu_out = mux_tree(
        &mut b,
        &funct3.clone(),
        &[add_or_sub, sll, slt, sltu, xor, srl, or, and],
        3,
    );
    let alu_out = b.node("alu_out", alu_out);

    // Data memory.
    b.mem("dmem", Type::uint(32), DMEM_WORDS, vec![]);
    let word_addr = b.node(
        "word_addr",
        Expr::prim_p(PrimOp::Bits, vec![sum.clone()], vec![6, 2]),
    );
    b.connect("dmem.raddr", word_addr.clone());
    b.connect("dmem.waddr", word_addr);
    b.connect("dmem.wdata", rs2.clone());
    b.connect("dmem.wen", op_sw.clone());

    // Branch/jump resolution.
    let eq = b.binop(PrimOp::Eq, rs1.clone(), rs2.clone());
    let ne = b.unop(PrimOp::Not, eq.clone());
    let lt_s = {
        let s1 = Expr::prim_p(PrimOp::AsSInt, vec![rs1.clone()], vec![]);
        let s2 = Expr::prim_p(PrimOp::AsSInt, vec![rs2.clone()], vec![]);
        b.node_fresh("blt", Expr::prim(PrimOp::Lt, vec![s1, s2]))
    };
    let ge_s = b.unop(PrimOp::Not, lt_s.clone());
    let br_take = mux_tree(
        &mut b,
        &funct3.clone(),
        &[
            eq,
            Expr::prim_p(PrimOp::Bits, vec![ne], vec![0, 0]),
            Expr::u(0, 1),
            Expr::u(0, 1),
            lt_s,
            Expr::prim_p(PrimOp::Bits, vec![ge_s], vec![0, 0]),
            Expr::u(0, 1),
            Expr::u(0, 1),
        ],
        3,
    );
    let br_take = b.node(
        "br_take",
        Expr::prim(PrimOp::And, vec![op_br.clone(), br_take]),
    );
    // Branch offset in *words*, encoded directly in imm[7:1] by the
    // assembler (simplified B-type), sign-extended.
    let br_off_raw = f(11, 8);
    let br_off = b.node(
        "br_off",
        Expr::prim_p(
            PrimOp::AsUInt,
            vec![Expr::prim_p(
                PrimOp::Pad,
                vec![Expr::prim_p(PrimOp::AsSInt, vec![br_off_raw], vec![])],
                vec![6],
            )],
            vec![],
        ),
    );
    let jal_target = b.node("jal_target", f(25, 20)); // absolute word target
    let pc_plus1 = b.node(
        "pc_plus1",
        Expr::prim_p(
            PrimOp::Tail,
            vec![Expr::prim(PrimOp::Add, vec![pc.clone(), Expr::u(1, 6)])],
            vec![1],
        ),
    );
    let pc_br = b.node(
        "pc_br",
        Expr::prim_p(
            PrimOp::Tail,
            vec![Expr::prim(PrimOp::Add, vec![pc.clone(), br_off])],
            vec![1],
        ),
    );
    let next_pc = b.node(
        "next_pc",
        Expr::mux(
            op_jal.clone(),
            jal_target,
            Expr::mux(br_take, pc_br, pc_plus1.clone()),
        ),
    );
    b.connect("pc", next_pc);

    // Writeback.
    let wb_val = b.node(
        "wb_val",
        Expr::mux(
            op_lui.clone(),
            imm_u,
            Expr::mux(
                op_lw.clone(),
                Expr::r("dmem.rdata"),
                Expr::mux(
                    op_jal.clone(),
                    Expr::prim_p(PrimOp::Pad, vec![pc_plus1], vec![32]),
                    alu_out,
                ),
            ),
        ),
    );
    let wb_en = b.node(
        "wb_en",
        Expr::prim(
            PrimOp::Or,
            vec![
                Expr::prim(PrimOp::Or, vec![op_imm, op_reg]),
                Expr::prim(
                    PrimOp::Or,
                    vec![op_lui, Expr::prim(PrimOp::Or, vec![op_lw, op_jal.clone()])],
                ),
            ],
        ),
    );
    let onehot = decoder(&mut b, &rd.clone(), NUM_REGS, 4);
    for i in 1..NUM_REGS {
        let we = Expr::prim(PrimOp::And, vec![wb_en.clone(), onehot[i].clone()]);
        b.connect(
            format!("x{i}"),
            Expr::mux(we, wb_val.clone(), regs[i].clone()),
        );
    }
    // Halt detection: JAL to the current PC.
    let halt = b.node(
        "is_halt",
        Expr::prim(
            PrimOp::And,
            vec![
                op_jal,
                Expr::prim(PrimOp::Eq, vec![Expr::r("jal_target"), pc.clone()]),
            ],
        ),
    );
    b.output_expr("pc_out", Type::uint(6), pc);
    b.output_expr("a0", Type::uint(32), regs[10].clone());
    b.output_expr("halt", Type::uint(1), halt);
    let mut cb = CircuitBuilder::new("Rv32i");
    cb.add_module(b.finish());
    cb.finish()
}

/// A tiny assembler for the subset (simplified encodings documented in
/// [`rv32i`]'s decode logic).
pub mod asm {
    /// `addi rd, rs1, imm` (12-bit signed immediate).
    pub fn addi(rd: u32, rs1: u32, imm: i32) -> u32 {
        itype(0x13, rd, 0, rs1, imm)
    }
    /// `andi rd, rs1, imm`.
    pub fn andi(rd: u32, rs1: u32, imm: i32) -> u32 {
        itype(0x13, rd, 7, rs1, imm)
    }
    /// `xori rd, rs1, imm`.
    pub fn xori(rd: u32, rs1: u32, imm: i32) -> u32 {
        itype(0x13, rd, 4, rs1, imm)
    }
    /// `slli rd, rs1, shamt`.
    pub fn slli(rd: u32, rs1: u32, shamt: u32) -> u32 {
        itype(0x13, rd, 1, rs1, shamt as i32)
    }
    /// `add rd, rs1, rs2`.
    pub fn add(rd: u32, rs1: u32, rs2: u32) -> u32 {
        rtype(0x33, rd, 0, rs1, rs2, 0)
    }
    /// `sub rd, rs1, rs2`.
    pub fn sub(rd: u32, rs1: u32, rs2: u32) -> u32 {
        rtype(0x33, rd, 0, rs1, rs2, 0x20)
    }
    /// `xor rd, rs1, rs2`.
    pub fn xor(rd: u32, rs1: u32, rs2: u32) -> u32 {
        rtype(0x33, rd, 4, rs1, rs2, 0)
    }
    /// `and rd, rs1, rs2`.
    pub fn and(rd: u32, rs1: u32, rs2: u32) -> u32 {
        rtype(0x33, rd, 7, rs1, rs2, 0)
    }
    /// `or rd, rs1, rs2`.
    pub fn or(rd: u32, rs1: u32, rs2: u32) -> u32 {
        rtype(0x33, rd, 6, rs1, rs2, 0)
    }
    /// `sltu rd, rs1, rs2`.
    pub fn sltu(rd: u32, rs1: u32, rs2: u32) -> u32 {
        rtype(0x33, rd, 3, rs1, rs2, 0)
    }
    /// `lui rd, imm20`.
    pub fn lui(rd: u32, imm20: u32) -> u32 {
        (imm20 << 12) | (rd << 7) | 0x37
    }
    /// `beq rs1, rs2, word_offset` (simplified: signed word offset in
    /// bits 11:8).
    pub fn beq(rs1: u32, rs2: u32, off: i32) -> u32 {
        btype(0, rs1, rs2, off)
    }
    /// `bne rs1, rs2, word_offset`.
    pub fn bne(rs1: u32, rs2: u32, off: i32) -> u32 {
        btype(1, rs1, rs2, off)
    }
    /// `blt rs1, rs2, word_offset` (signed compare).
    pub fn blt(rs1: u32, rs2: u32, off: i32) -> u32 {
        btype(4, rs1, rs2, off)
    }
    /// `jal word_target` (simplified: absolute word target in bits
    /// 25:20; `rd` receives the return PC).
    pub fn jal(rd: u32, target: u32) -> u32 {
        (target << 20) | (rd << 7) | 0x6f
    }
    /// `lw rd, imm(rs1)`.
    pub fn lw(rd: u32, rs1: u32, imm: i32) -> u32 {
        itype(0x03, rd, 2, rs1, imm)
    }
    /// `sw rs2, imm(rs1)` (simplified S-type: low imm bits in 11:7).
    pub fn sw(rs2: u32, rs1: u32, imm: i32) -> u32 {
        ((rs2 & 0x1f) << 20)
            | ((rs1 & 0x1f) << 15)
            | (2 << 12)
            | (((imm as u32) & 0x1f) << 7)
            | 0x23
    }
    /// The canonical `nop`.
    pub fn nop() -> u32 {
        addi(0, 0, 0)
    }

    fn itype(op: u32, rd: u32, f3: u32, rs1: u32, imm: i32) -> u32 {
        (((imm as u32) & 0xfff) << 20) | ((rs1 & 0x1f) << 15) | (f3 << 12) | ((rd & 0x1f) << 7) | op
    }
    fn rtype(op: u32, rd: u32, f3: u32, rs1: u32, rs2: u32, f7: u32) -> u32 {
        (f7 << 25)
            | ((rs2 & 0x1f) << 20)
            | ((rs1 & 0x1f) << 15)
            | (f3 << 12)
            | ((rd & 0x1f) << 7)
            | op
    }
    fn btype(f3: u32, rs1: u32, rs2: u32, off: i32) -> u32 {
        ((rs2 & 0x1f) << 20)
            | ((rs1 & 0x1f) << 15)
            | (f3 << 12)
            | (((off as u32) & 0xf) << 8)
            | 0x63
    }
}

/// ISA-level golden model of the same subset.
#[derive(Debug, Clone)]
pub struct GoldenCpu {
    /// Architectural registers.
    pub x: [u32; NUM_REGS],
    /// Program counter (word-addressed).
    pub pc: u32,
    /// Data memory.
    pub dmem: [u32; DMEM_WORDS],
    program: Vec<u32>,
}

impl GoldenCpu {
    /// Creates a golden CPU over the same program.
    pub fn new(program: &[u32]) -> Self {
        GoldenCpu {
            x: [0; NUM_REGS],
            pc: 0,
            dmem: [0; DMEM_WORDS],
            program: program.to_vec(),
        }
    }

    /// Executes one instruction.
    pub fn step(&mut self) {
        let instr = *self.program.get(self.pc as usize).unwrap_or(&0x13);
        let op = instr & 0x7f;
        let rd = ((instr >> 7) & 0xf) as usize;
        let f3 = (instr >> 12) & 7;
        let rs1 = self.x[((instr >> 15) & 0xf) as usize];
        let rs2 = self.x[((instr >> 20) & 0xf) as usize];
        let imm_i = ((instr as i32) >> 20) as u32;
        let mut next_pc = (self.pc + 1) & 0x3f;
        let mut wb: Option<u32> = None;
        match op {
            0x13 | 0x33 => {
                let b = if op == 0x13 { imm_i } else { rs2 };
                let sub = op == 0x33 && (instr >> 30) & 1 == 1;
                wb = Some(match f3 {
                    0 => {
                        if sub {
                            rs1.wrapping_sub(b)
                        } else {
                            rs1.wrapping_add(b)
                        }
                    }
                    1 => rs1.wrapping_shl(b & 31),
                    2 => ((rs1 as i32) < (b as i32)) as u32,
                    3 => (rs1 < b) as u32,
                    4 => rs1 ^ b,
                    5 => rs1.wrapping_shr(b & 31),
                    6 => rs1 | b,
                    7 => rs1 & b,
                    _ => unreachable!(),
                });
            }
            0x37 => wb = Some(instr & 0xffff_f000),
            0x63 => {
                let take = match f3 {
                    0 => rs1 == rs2,
                    1 => rs1 != rs2,
                    4 => (rs1 as i32) < (rs2 as i32),
                    5 => (rs1 as i32) >= (rs2 as i32),
                    _ => false,
                };
                if take {
                    let off = (((instr >> 8) & 0xf) as i32) << 28 >> 28;
                    next_pc = (self.pc as i32 + off) as u32 & 0x3f;
                }
            }
            0x6f => {
                wb = Some((self.pc + 1) & 0x3f);
                next_pc = (instr >> 20) & 0x3f;
            }
            0x03 => {
                let addr = (rs1.wrapping_add(imm_i) >> 2) as usize % DMEM_WORDS;
                wb = Some(self.dmem[addr]);
            }
            0x23 => {
                let imm_s = (instr >> 7) & 0x1f;
                let addr = (rs1.wrapping_add(imm_s) >> 2) as usize % DMEM_WORDS;
                self.dmem[addr] = rs2;
            }
            _ => {}
        }
        if let Some(v) = wb {
            if rd != 0 {
                self.x[rd] = v;
            }
        }
        self.pc = next_pc;
    }
}

#[cfg(test)]
mod tests {
    use super::asm::*;
    use super::*;
    use rteaal_dfg::interp::Interpreter;
    use rteaal_firrtl::lower::lower_typed;

    fn run_both(program: &[u32], cycles: usize) -> (Interpreter<'static>, GoldenCpu) {
        let circuit = rv32i(program);
        let graph = Box::leak(Box::new(
            rteaal_dfg::build(&lower_typed(&circuit).unwrap()).unwrap(),
        ));
        let mut hw = Interpreter::new(graph);
        let mut sw = GoldenCpu::new(program);
        for c in 0..cycles {
            hw.step();
            sw.step();
            assert_eq!(
                hw.output_by_name("pc_out"),
                Some(sw.pc as u64),
                "pc at cycle {c}"
            );
            for i in 1..NUM_REGS {
                assert_eq!(
                    hw.peek_by_name(&format!("x{i}")),
                    Some(sw.x[i] as u64),
                    "x{i} at cycle {c}"
                );
            }
        }
        (hw, sw)
    }

    #[test]
    fn arithmetic_program() {
        let program = [
            addi(1, 0, 100),
            addi(2, 0, -3),
            add(3, 1, 2),
            sub(4, 1, 2),
            xor(5, 3, 4),
            and(6, 5, 1),
            or(7, 6, 2),
            sltu(8, 1, 2),
            slli(9, 1, 4),
            lui(10, 0xabcd),
        ];
        let (hw, sw) = run_both(&program, 12);
        assert_eq!(sw.x[3], 97);
        assert_eq!(sw.x[4], 103);
        assert_eq!(sw.x[8], 1); // 100 < 0xfffffffd unsigned
        assert_eq!(sw.x[9], 1600);
        assert_eq!(hw.output_by_name("a0"), Some((0xabcdu64) << 12));
    }

    #[test]
    fn fibonacci_loop() {
        // a0 = fib(10) via a bne loop.
        let program = [
            addi(1, 0, 0),  // f0
            addi(2, 0, 1),  // f1
            addi(3, 0, 10), // counter
            // loop:
            add(4, 1, 2), // f2 = f0 + f1
            add(1, 2, 0), // f0 = f1
            add(2, 4, 0), // f1 = f2
            addi(3, 3, -1),
            bne(3, 0, -4),
            add(10, 1, 0), // a0 = f0
            jal(0, 9),     // halt: jump-to-self at pc 9
        ];
        let circuit = rv32i(&program);
        let graph = rteaal_dfg::build(&lower_typed(&circuit).unwrap()).unwrap();
        let mut hw = Interpreter::new(&graph);
        let mut sw = GoldenCpu::new(&program);
        for _ in 0..60 {
            hw.step();
            sw.step();
        }
        assert_eq!(sw.x[10], 55); // fib(10)
        assert_eq!(hw.output_by_name("a0"), Some(55));
        assert_eq!(hw.output_by_name("halt"), Some(1));
    }

    #[test]
    fn load_store_roundtrip() {
        let program = [addi(1, 0, 0x7a), sw(1, 0, 8), lw(2, 0, 8), add(10, 2, 0)];
        let (hw, sw) = run_both(&program, 6);
        assert_eq!(sw.dmem[2], 0x7a);
        assert_eq!(hw.output_by_name("a0"), Some(0x7a));
    }

    #[test]
    fn branches_taken_and_not_taken() {
        let program = [
            addi(1, 0, 5),
            addi(2, 0, 5),
            beq(1, 2, 2),    // taken: skip next
            addi(10, 0, 99), // skipped
            addi(3, 0, -1),
            blt(3, 0, 2),    // taken (signed)
            addi(10, 0, 98), // skipped
            addi(4, 0, 1),
        ];
        let (_, sw) = run_both(&program, 8);
        assert_eq!(sw.x[10], 0);
        assert_eq!(sw.x[4], 1);
    }
}
