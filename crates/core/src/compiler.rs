//! The RTeAAL Sim compiler front door (paper Figure 14).
//!
//! Drives the full flow: FIRRTL input (text or AST) → dataflow-graph
//! construction → dataflow-graph optimization → layer formation →
//! coordinate assignment → `OIM` generation (JSON) → kernel generation.
//! Every stage's wall-clock time is recorded; the kernel's own compile
//! report (code/data footprint, peak memory) comes from
//! [`rteaal_kernels::Kernel::compile`].

use rteaal_dfg::analyze::{analyze_design, analyze_graph, AnalysisReport};
use rteaal_dfg::passes::{optimize, PassOptions, PassStats};
use rteaal_dfg::plan::{plan, PlanStats, SimPlan};
use rteaal_firrtl::ast::Circuit;
use rteaal_firrtl::lower::lower_typed;
use rteaal_firrtl::parser;
use rteaal_kernels::{CompileReport, Kernel, KernelConfig};
use std::time::Instant;

/// Errors from any stage of the flow.
#[derive(Debug)]
pub enum CompileError {
    /// Parse/type/lower failure in the FIRRTL front end.
    Firrtl(rteaal_firrtl::FirrtlError),
    /// Graph-construction failure (combinational cycle etc.).
    Dfg(rteaal_dfg::DfgError),
    /// The static plan verifier found Error-level diagnostics — the
    /// transformed graph or plan violates a structural invariant the
    /// execution engines assume.
    Verify(AnalysisReport),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Firrtl(e) => write!(f, "firrtl: {e}"),
            CompileError::Dfg(e) => write!(f, "dfg: {e}"),
            CompileError::Verify(report) => write!(f, "verify: {report}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<rteaal_firrtl::FirrtlError> for CompileError {
    fn from(e: rteaal_firrtl::FirrtlError) -> Self {
        CompileError::Firrtl(e)
    }
}

impl From<rteaal_dfg::DfgError> for CompileError {
    fn from(e: rteaal_dfg::DfgError) -> Self {
        CompileError::Dfg(e)
    }
}

/// Per-stage wall-clock timings (seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// FIRRTL lowering (flatten, mem lowering, when resolution, typing).
    pub lower: f64,
    /// Dataflow-graph construction.
    pub graph: f64,
    /// Optimization passes.
    pub optimize: f64,
    /// Levelization + coordinate assignment + OIM generation.
    pub plan: f64,
    /// Static plan verification (schedule legality, kernel bounds, …).
    pub verify: f64,
    /// Kernel generation.
    pub kernel: f64,
}

impl StageTimings {
    /// Total front-end + kernel time.
    pub fn total(&self) -> f64 {
        self.lower + self.graph + self.optimize + self.plan + self.verify + self.kernel
    }
}

/// The compiler: configuration + entry points.
#[derive(Debug, Clone)]
pub struct Compiler {
    /// Kernel configuration (loop order / format / unrolling, §6.1).
    pub kernel: KernelConfig,
    /// Dataflow-graph optimization options.
    pub passes: PassOptions,
    /// Waveform mode: keep every named signal observable (§6.2 disables
    /// signal-eliminating optimizations when waveforms are requested).
    pub keep_signals: bool,
}

impl Compiler {
    /// A compiler for the given kernel configuration with default passes.
    pub fn new(kernel: KernelConfig) -> Self {
        Compiler {
            kernel,
            passes: PassOptions::default(),
            keep_signals: false,
        }
    }

    /// Enables waveform mode (disables signal-eliminating optimizations).
    pub fn with_waveforms(mut self) -> Self {
        self.keep_signals = true;
        // Copy propagation and constant folding can remove named
        // signals; keep the graph intact.
        self.passes = PassOptions::none();
        self
    }

    /// Overrides the pass options.
    pub fn with_passes(mut self, passes: PassOptions) -> Self {
        self.passes = passes;
        self
    }

    /// Compiles FIRRTL source text.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] for parse, type, lower, or graph errors.
    pub fn compile_str(&self, src: &str) -> Result<Compiled, CompileError> {
        self.compile(&parser::parse(src)?)
    }

    /// Compiles a circuit AST.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] for type, lower, or graph errors.
    pub fn compile(&self, circuit: &Circuit) -> Result<Compiled, CompileError> {
        let mut t = StageTimings::default();
        let t0 = Instant::now();
        let flat = lower_typed(circuit)?;
        t.lower = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let graph = rteaal_dfg::build(&flat)?;
        t.graph = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let (graph, pass_stats) = optimize(&graph, &self.passes);
        t.optimize = t0.elapsed().as_secs_f64();

        // The builder already rejects combinational cycles, but a buggy
        // pass could reintroduce one and `topo_order` would panic deep in
        // levelization — verify before planning so corruption surfaces as
        // a typed diagnostic instead.
        let t0 = Instant::now();
        let graph_report = analyze_graph(&graph);
        if !graph_report.is_clean() {
            return Err(CompileError::Verify(graph_report));
        }

        let sim_plan = plan(&graph);
        t.plan = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let mut analysis = graph_report;
        analysis.merge(analyze_design(&sim_plan));
        if !analysis.is_clean() {
            return Err(CompileError::Verify(analysis));
        }
        t.verify = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let kernel = Kernel::compile(&sim_plan, self.kernel);
        t.kernel = t0.elapsed().as_secs_f64();

        Ok(Compiled {
            plan: sim_plan,
            kernel,
            timings: t,
            pass_stats,
            analysis,
        })
    }
}

/// The result of a compile: the plan (OIM content), the kernel, and
/// reports.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The coordinate-assigned plan (logical OIM).
    pub plan: SimPlan,
    /// The executable kernel.
    pub kernel: Kernel,
    /// Per-stage timings.
    pub timings: StageTimings,
    /// What the optimizer did.
    pub pass_stats: PassStats,
    /// The static verifier's report (clean by construction — a compile
    /// that produced Error-level diagnostics returns
    /// [`CompileError::Verify`] instead). Carries the dataflow stats
    /// (activity, dead ops, never-toggling signals) downstream.
    pub analysis: AnalysisReport,
}

impl Compiled {
    /// Plan-level statistics (ops, layers, slots, identity count).
    pub fn plan_stats(&self) -> PlanStats {
        self.plan.stats
    }

    /// The kernel's compile report (code/data bytes, generation time).
    pub fn kernel_report(&self) -> CompileReport {
        self.kernel.compile_report()
    }

    /// Serializes the OIM tensor to JSON (the Figure 14 artifact: "OIM
    /// tensors stored in JSON files, which are loaded at runtime").
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error if serialization fails (it cannot for
    /// this type, but the signature is honest).
    pub fn oim_json(&self) -> serde_json::Result<String> {
        let oim = rteaal_tensor::oim::OimOptimized::from_plan(&self.plan);
        serde_json::to_string(&oim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rteaal_kernels::KernelKind;

    const SRC: &str = "\
circuit T :
  module T :
    input clock : Clock
    input x : UInt<8>
    output out : UInt<8>
    reg r : UInt<8>, clock
    r <= tail(add(r, x), 1)
    out <= r
";

    #[test]
    fn end_to_end_compile_and_run() {
        let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu))
            .compile_str(SRC)
            .unwrap();
        let mut k = compiled.kernel;
        k.set_input(0, 5);
        k.run(3);
        assert_eq!(k.output(0), 15);
        assert!(compiled.timings.total() > 0.0);
    }

    #[test]
    fn oim_json_artifact() {
        let compiled = Compiler::new(KernelConfig::new(KernelKind::Ru))
            .compile_str(SRC)
            .unwrap();
        let json = compiled.oim_json().unwrap();
        assert!(json.contains("s_coords"));
        assert!(json.contains("\"name\":\"T\""));
    }

    #[test]
    fn waveform_mode_preserves_signals() {
        let plain = Compiler::new(KernelConfig::new(KernelKind::Nu));
        let wave = plain.clone().with_waveforms();
        let p1 = plain.compile_str(SRC).unwrap();
        let p2 = wave.compile_str(SRC).unwrap();
        assert!(p2.plan.probes.len() >= p1.plan.probes.len());
        assert!(!p2.pass_stats.const_folded > 0 || p2.pass_stats.const_folded == 0);
    }

    #[test]
    fn errors_are_reported() {
        let c = Compiler::new(KernelConfig::new(KernelKind::Su));
        assert!(matches!(
            c.compile_str("garbage"),
            Err(CompileError::Firrtl(_))
        ));
    }
}
