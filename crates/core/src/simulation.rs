//! The user-facing simulation handle: named I/O, XMR-style probing,
//! waveforms, and DMI.

use crate::compiler::Compiled;
use crate::waveform::VcdWriter;
use rteaal_dfg::plan::SimPlan;
use rteaal_kernels::Kernel;
use std::collections::HashMap;

/// A running simulation of one compiled design.
///
/// # Examples
///
/// ```
/// use rteaal_core::{Compiler, Simulation};
/// use rteaal_kernels::{KernelConfig, KernelKind};
///
/// let src = "\
/// circuit Acc :
///   module Acc :
///     input clock : Clock
///     input x : UInt<8>
///     output out : UInt<8>
///     reg acc : UInt<8>, clock
///     acc <= tail(add(acc, x), 1)
///     out <= acc
/// ";
/// let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu)).compile_str(src)?;
/// let mut sim = Simulation::new(compiled);
/// sim.poke("x", 7)?;
/// sim.step_cycles(3);
/// assert_eq!(sim.peek("out"), Some(21));
/// assert_eq!(sim.peek("acc"), Some(21)); // internal signal (XMR)
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulation {
    kernel: Kernel,
    plan: SimPlan,
    input_index: HashMap<String, usize>,
    probe_index: HashMap<String, (u32, u8)>,
    vcd: Option<VcdWriter>,
}

/// Error for unknown signal names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSignal(pub String);

impl std::fmt::Display for UnknownSignal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown signal: {}", self.0)
    }
}

impl std::error::Error for UnknownSignal {}

impl Simulation {
    /// Wraps a compile result.
    pub fn new(compiled: Compiled) -> Self {
        let plan = compiled.plan;
        let mut input_index = HashMap::new();
        for (idx, &slot) in plan.input_slots.iter().enumerate() {
            if let Some((name, _, _)) = plan.probes.iter().find(|(_, s, _)| *s == slot) {
                input_index.insert(name.clone(), idx);
            }
        }
        let probe_index = plan
            .probes
            .iter()
            .map(|(n, s, w)| (n.clone(), (*s, *w)))
            .collect();
        Simulation {
            kernel: compiled.kernel,
            plan,
            input_index,
            probe_index,
            vcd: None,
        }
    }

    /// Drives an input port by name.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSignal`] if no input port has this name.
    pub fn poke(&mut self, name: &str, value: u64) -> Result<(), UnknownSignal> {
        let idx = *self
            .input_index
            .get(name)
            .ok_or_else(|| UnknownSignal(name.to_string()))?;
        self.kernel.set_input(idx, value);
        Ok(())
    }

    /// Reads any probed signal — output ports, registers, inputs, or named
    /// internal nodes (the XMR front door, §6.2).
    pub fn peek(&self, name: &str) -> Option<u64> {
        if let Some(&(slot, _)) = self.probe_index.get(name) {
            return Some(self.kernel.slot(slot));
        }
        self.kernel.output_by_name(name)
    }

    /// Advances one clock cycle (and records waveform changes if enabled).
    pub fn step(&mut self) {
        self.kernel.step();
        if let Some(vcd) = &mut self.vcd {
            vcd.sample(self.kernel.cycle(), |slot| self.kernel.slot(slot));
        }
    }

    /// Advances `n` cycles.
    pub fn step_cycles(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.kernel.cycle()
    }

    /// Enables VCD waveform capture over all probed signals.
    pub fn enable_waveforms(&mut self) {
        let signals: Vec<(String, u32, u8)> = self.plan.probes.clone();
        let mut vcd = VcdWriter::new(&self.plan.name, &signals);
        vcd.sample(self.kernel.cycle(), |slot| self.kernel.slot(slot));
        self.vcd = Some(vcd);
    }

    /// Finishes waveform capture and returns the VCD text.
    pub fn take_vcd(&mut self) -> Option<String> {
        self.vcd.take().map(VcdWriter::finish)
    }

    /// The underlying kernel (for profiled runs).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// The plan (OIM content) this simulation executes.
    pub fn plan(&self) -> &SimPlan {
        &self.plan
    }

    /// All probe names (sorted) — the visible signal namespace.
    pub fn signals(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.probe_index.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

/// The Debug Module Interface analog (§6.2 "Host–DUT Communication"):
/// reads and updates DTM-like signals in the `LI` at cycle boundaries.
#[derive(Debug)]
pub struct DebugModule<'sim> {
    sim: &'sim mut Simulation,
}

impl<'sim> DebugModule<'sim> {
    /// Attaches to a simulation.
    pub fn new(sim: &'sim mut Simulation) -> Self {
        DebugModule { sim }
    }

    /// Writes a register's architectural state directly (between cycles).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSignal`] if the name is not a probed register.
    pub fn poke_reg(&mut self, name: &str, value: u64) -> Result<(), UnknownSignal> {
        let &(slot, _) = self
            .sim
            .probe_index
            .get(name)
            .ok_or_else(|| UnknownSignal(name.to_string()))?;
        self.sim.kernel.poke_slot(slot, value);
        Ok(())
    }

    /// Reads a register or signal.
    pub fn peek_reg(&self, name: &str) -> Option<u64> {
        self.sim.peek(name)
    }

    /// Runs the DUT until `signal` becomes nonzero or `max_cycles`
    /// elapse; returns the cycle count if the condition was met.
    pub fn run_until(&mut self, signal: &str, max_cycles: u64) -> Option<u64> {
        for _ in 0..max_cycles {
            if self.sim.peek(signal).unwrap_or(0) != 0 {
                return Some(self.sim.cycle());
            }
            self.sim.step();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use rteaal_kernels::{KernelConfig, KernelKind};

    const SRC: &str = "\
circuit S :
  module S :
    input clock : Clock
    input x : UInt<8>
    output out : UInt<8>
    output big : UInt<1>
    reg acc : UInt<8>, clock
    node sum = tail(add(acc, x), 1)
    acc <= sum
    out <= acc
    big <= gt(acc, UInt<8>(100))
";

    fn sim(kind: KernelKind) -> Simulation {
        Simulation::new(
            Compiler::new(KernelConfig::new(kind))
                .compile_str(SRC)
                .unwrap(),
        )
    }

    #[test]
    fn poke_peek_roundtrip() {
        let mut s = sim(KernelKind::Psu);
        s.poke("x", 10).unwrap();
        s.step_cycles(5);
        assert_eq!(s.peek("out"), Some(50));
        assert_eq!(s.peek("acc"), Some(50));
        assert!(s.poke("nope", 1).is_err());
        assert_eq!(s.peek("ghost"), None);
    }

    #[test]
    fn signals_enumerates_namespace() {
        let s = sim(KernelKind::Ti);
        let names = s.signals();
        assert!(names.contains(&"acc"));
        assert!(names.contains(&"x"));
    }

    #[test]
    fn dmi_poke_and_run_until() {
        let mut s = sim(KernelKind::Nu);
        s.poke("x", 1).unwrap();
        let mut dmi = DebugModule::new(&mut s);
        dmi.poke_reg("acc", 95).unwrap();
        // acc crosses 100 within a few cycles.
        let cycle = dmi.run_until("big", 20).expect("condition reached");
        assert!(cycle <= 10);
        assert!(dmi.peek_reg("acc").unwrap() > 100);
    }

    #[test]
    fn vcd_capture_produces_transitions() {
        let mut s = sim(KernelKind::Su);
        s.enable_waveforms();
        s.poke("x", 3).unwrap();
        s.step_cycles(4);
        let vcd = s.take_vcd().unwrap();
        assert!(vcd.contains("$var"));
        assert!(vcd.contains("acc"));
        assert!(vcd.contains("#1"));
        assert!(vcd.contains("#4"));
    }
}
