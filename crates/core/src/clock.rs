//! Clock-domain inspection (paper §6.2, "Multiple Clock Domains").
//!
//! RTeAAL Sim targets a single clock domain; the paper sketches the
//! multi-clock extension as "partitioning the circuit according to clock
//! domain and adding a synchronization step at the end of each cycle" —
//! structurally the same move as the RepCut cascade
//! (`rteaal_einsum::repcut`), with partitions keyed by clock instead of by
//! register ownership. This module provides the inspection half: it
//! reports the clock domains of a circuit so front ends can reject or
//! pre-partition multi-clock designs.

use rteaal_firrtl::ast::{Circuit, Stmt};
use rteaal_firrtl::Direction;

/// A clock domain: the clock port name and how many registers it drives
/// in the top module (pre-flattening).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockDomain {
    /// Clock signal name.
    pub clock: String,
    /// Registers directly clocked by it in the top module.
    pub registers: usize,
}

/// Enumerates the clock domains of a circuit's top module.
pub fn clock_domains(circuit: &Circuit) -> Vec<ClockDomain> {
    let Some(top) = circuit.top() else {
        return Vec::new();
    };
    let mut domains: Vec<ClockDomain> = top
        .ports
        .iter()
        .filter(|p| p.dir == Direction::Input && p.ty.is_clock())
        .map(|p| ClockDomain {
            clock: p.name.clone(),
            registers: 0,
        })
        .collect();
    fn count(body: &[Stmt], domains: &mut [ClockDomain]) {
        for stmt in body {
            match stmt {
                Stmt::Reg {
                    clock: rteaal_firrtl::ast::Expr::Ref(name),
                    ..
                } => {
                    if let Some(d) = domains.iter_mut().find(|d| &d.clock == name) {
                        d.registers += 1;
                    }
                }
                Stmt::When {
                    then_body,
                    else_body,
                    ..
                } => {
                    count(then_body, domains);
                    count(else_body, domains);
                }
                _ => {}
            }
        }
    }
    count(&top.body, &mut domains);
    domains
}

/// Whether a circuit is within the supported single-clock subset.
pub fn is_single_clock(circuit: &Circuit) -> bool {
    clock_domains(circuit).len() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rteaal_firrtl::parser::parse;

    #[test]
    fn single_clock_design() {
        let c = parse(
            "\
circuit C :
  module C :
    input clock : Clock
    output o : UInt<1>
    reg a : UInt<1>, clock
    reg b : UInt<1>, clock
    a <= b
    b <= a
    o <= a
",
        )
        .unwrap();
        let domains = clock_domains(&c);
        assert_eq!(domains.len(), 1);
        assert_eq!(domains[0].registers, 2);
        assert!(is_single_clock(&c));
    }

    #[test]
    fn multi_clock_detected() {
        let c = parse(
            "\
circuit M :
  module M :
    input clk_a : Clock
    input clk_b : Clock
    output o : UInt<1>
    reg a : UInt<1>, clk_a
    reg b : UInt<1>, clk_b
    a <= b
    b <= a
    o <= a
",
        )
        .unwrap();
        let domains = clock_domains(&c);
        assert_eq!(domains.len(), 2);
        assert!(!is_single_clock(&c));
        // The lowering path also rejects it (paper §6.2: single domain).
        assert!(rteaal_firrtl::lower_typed(&c).is_err());
    }

    #[test]
    fn no_clock_is_fine() {
        let c = parse(
            "\
circuit P :
  module P :
    input a : UInt<1>
    output o : UInt<1>
    o <= not(a)
",
        )
        .unwrap();
        assert!(clock_domains(&c).is_empty());
        assert!(is_single_clock(&c));
    }
}
