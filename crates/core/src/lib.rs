//! # rteaal-core
//!
//! The public API of the RTeAAL Sim reproduction: a tensor-algebra RTL
//! simulator (ASPLOS 2026).
//!
//! RTeAAL Sim reformulates full-cycle RTL simulation as a sparse tensor
//! algebra problem: the dataflow graph becomes the 5-rank `OIM` tensor
//! and a cycle of simulation becomes a cascade of extended Einsums
//! evaluated by one of seven progressively unrolled kernels
//! (RU/OU/NU/PSU/IU/SU/TI). This crate is the front door:
//!
//! - [`compiler::Compiler`] — FIRRTL in, compiled kernel + OIM JSON out
//!   (the full Figure 14 flow, with per-stage timings).
//! - [`simulation::Simulation`] — named poke/peek (including internal
//!   signals, the XMR path), cycle stepping, and profiled runs.
//! - [`batch::BatchSimulation`] — the same design over `B` independent
//!   stimulus lanes at once, with layer-parallel thread execution and an
//!   optional RepCut decomposition ([`batch::Partitioning`]) that splits
//!   each cycle's ops across partitions for per-job latency.
//! - [`waveform::VcdWriter`] — change-detecting VCD generation (§6.2).
//! - [`simulation::DebugModule`] — the DMI-style host↔DUT channel (§6.2).
//!
//! ## Quickstart
//!
//! ```
//! use rteaal_core::{Compiler, Simulation};
//! use rteaal_kernels::{KernelConfig, KernelKind};
//!
//! let src = "\
//! circuit Counter :
//!   module Counter :
//!     input clock : Clock
//!     input reset : UInt<1>
//!     output out : UInt<8>
//!     regreset count : UInt<8>, clock, reset, UInt<8>(0)
//!     count <= tail(add(count, UInt<8>(1)), 1)
//!     out <= count
//! ";
//! let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu)).compile_str(src)?;
//! let mut sim = Simulation::new(compiled);
//! sim.step_cycles(41);
//! assert_eq!(sim.peek("out"), Some(41));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod batch;
pub mod clock;
pub mod compiler;
pub mod simulation;
pub mod waveform;

pub use batch::{BatchSimulation, Partitioning};
pub use clock::{clock_domains, is_single_clock, ClockDomain};
pub use compiler::{CompileError, Compiled, Compiler, StageTimings};
pub use rteaal_dfg::analyze::{
    analyze_design, analyze_graph, analyze_partitioned, analyze_plan, AnalysisReport,
    AnalysisStats, DiagKind, Diagnostic, Severity,
};
pub use rteaal_dfg::partition::PartitionedPlan;
pub use rteaal_dfg::specialize::{SpecStats, Specialization};
pub use simulation::{DebugModule, Simulation, UnknownSignal};
pub use waveform::VcdWriter;
