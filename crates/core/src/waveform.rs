//! VCD waveform generation (paper §6.2).
//!
//! "Waveform generation requires (1) exposing both internal and I/O
//! signals and (2) recording signal values when they change." The probes
//! of the [`SimPlan`](rteaal_dfg::SimPlan) give every signal a unique
//! slot that persists across cycles, so change detection is a per-cycle
//! compare against the previous value — exactly the mechanism the paper
//! describes.

use std::fmt::Write as _;

/// An incremental VCD (Value Change Dump) writer.
#[derive(Debug)]
pub struct VcdWriter {
    header: String,
    body: String,
    /// `(slot, width, vcd id)` per signal.
    signals: Vec<(u32, u8, String)>,
    /// Last dumped value per signal (`None` before the first sample).
    last: Vec<Option<u64>>,
}

/// Generates the short VCD identifier for signal `i`.
fn vcd_id(mut i: usize) -> String {
    let mut id = String::new();
    loop {
        id.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    id
}

impl VcdWriter {
    /// Starts a VCD for the given `(name, slot, width)` signals.
    pub fn new(design: &str, signals: &[(String, u32, u8)]) -> Self {
        let mut header = String::new();
        let _ = writeln!(header, "$date RTeAAL Sim $end");
        let _ = writeln!(header, "$version rteaal-sim reproduction $end");
        let _ = writeln!(header, "$timescale 1ns $end");
        let _ = writeln!(header, "$scope module {design} $end");
        let mut sigs = Vec::with_capacity(signals.len());
        for (i, (name, slot, width)) in signals.iter().enumerate() {
            let id = vcd_id(i);
            // VCD identifiers cannot contain whitespace; hierarchical
            // dots become underscores for display.
            let display = name.replace('.', "_");
            let _ = writeln!(header, "$var wire {width} {id} {display} $end");
            sigs.push((*slot, *width, id));
        }
        let _ = writeln!(header, "$upscope $end");
        let _ = writeln!(header, "$enddefinitions $end");
        let last_len = sigs.len();
        VcdWriter {
            header,
            body: String::new(),
            signals: sigs,
            last: vec![None; last_len],
        }
    }

    /// Samples all signals at time `t`, emitting changes only.
    pub fn sample(&mut self, t: u64, read: impl Fn(u32) -> u64) {
        let mut changes = String::new();
        for (k, (slot, width, id)) in self.signals.iter().enumerate() {
            let v = read(*slot);
            if self.last[k] == Some(v) {
                continue;
            }
            self.last[k] = Some(v);
            if *width == 1 {
                let _ = writeln!(changes, "{}{}", v & 1, id);
            } else {
                let _ = writeln!(changes, "b{:b} {}", v, id);
            }
        }
        if !changes.is_empty() {
            let _ = writeln!(self.body, "#{t}");
            self.body.push_str(&changes);
        }
    }

    /// Number of signals tracked.
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// Finishes and returns the complete VCD text.
    pub fn finish(self) -> String {
        format!("{}{}", self.header, self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_compact() {
        let ids: Vec<String> = (0..200).map(vcd_id).collect();
        let set: std::collections::HashSet<&String> = ids.iter().collect();
        assert_eq!(set.len(), 200);
        assert_eq!(vcd_id(0), "!");
        assert_eq!(vcd_id(93), "~");
        assert_eq!(vcd_id(94).len(), 2);
    }

    #[test]
    fn only_changes_are_dumped() {
        let signals = vec![("a".to_string(), 0u32, 4u8), ("b".to_string(), 1u32, 1u8)];
        let mut w = VcdWriter::new("T", &signals);
        let values = [[3u64, 0], [3, 1], [3, 1], [7, 1]];
        for (t, vals) in values.iter().enumerate() {
            w.sample(t as u64, |slot| vals[slot as usize]);
        }
        let vcd = w.finish();
        // t0: both dump; t1: only b; t2: nothing; t3: only a.
        assert!(vcd.contains("#0\nb11 !\n1\"") || vcd.contains("#0\nb11 !\n0\""));
        assert!(!vcd.contains("#2"));
        assert!(vcd.contains("#3\nb111 !"));
    }

    #[test]
    fn header_declares_vars() {
        let signals = vec![("core.alu.out".to_string(), 5u32, 16u8)];
        let w = VcdWriter::new("Chip", &signals);
        let text = w.finish();
        assert!(text.contains("$scope module Chip $end"));
        assert!(text.contains("$var wire 16 ! core_alu_out $end"));
        assert!(text.contains("$enddefinitions"));
    }
}
