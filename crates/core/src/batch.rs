//! The user-facing batched simulation handle: one compiled design, `B`
//! independent stimulus lanes, named per-lane poke/peek, and
//! thread-parallel cycle stepping.
//!
//! [`BatchSimulation`] is the throughput front door: where
//! [`Simulation`](crate::Simulation) answers "what does this design do
//! under this stimulus", `BatchSimulation` answers it for `B` stimulus
//! vectors at once — regression suites, fuzz corpora, or parameter
//! sweeps — while paying the compile and coordinate-traversal cost once.
//!
//! Workloads with a halt condition (the RV32I core's `halt` output, or
//! any probed signal) can additionally enable **lane-liveness early
//! exit** via [`BatchSimulation::watch_halt`]: after every cycle the
//! engine probes the halt row, records each finished lane's completion
//! cycle, and compacts it out of the evaluated lane window, so the
//! remaining cycles are spent only on lanes still running. Lane indices
//! seen by [`poke`](BatchSimulation::poke) /
//! [`peek`](BatchSimulation::peek) stay stable across compaction; a
//! finished lane's state is frozen at its halt cycle.

use crate::compiler::Compiled;
use crate::simulation::UnknownSignal;
use rteaal_dfg::plan::SimPlan;
use rteaal_kernels::{BatchKernel, BatchLiState, LanePoker};
use std::collections::HashMap;

/// A running batched simulation of one compiled design.
///
/// # Examples
///
/// ```
/// use rteaal_core::{BatchSimulation, Compiler};
/// use rteaal_kernels::{KernelConfig, KernelKind};
///
/// let src = "\
/// circuit Acc :
///   module Acc :
///     input clock : Clock
///     input x : UInt<8>
///     output out : UInt<8>
///     reg acc : UInt<8>, clock
///     acc <= tail(add(acc, x), 1)
///     out <= acc
/// ";
/// let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu)).compile_str(src)?;
/// let mut sim = BatchSimulation::new(&compiled, 4);
/// for lane in 0..4 {
///     sim.poke("x", lane, lane as u64 + 1)?;
/// }
/// sim.step_cycles(3);
/// for lane in 0..4 {
///     assert_eq!(sim.peek("out", lane), Some(3 * (lane as u64 + 1)));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct BatchSimulation {
    kernel: BatchKernel,
    state: BatchLiState,
    plan: SimPlan,
    input_index: HashMap<String, usize>,
    probe_index: HashMap<String, (u32, u8)>,
    threads: usize,
    liveness: Option<LaneLiveness>,
}

/// Lane-liveness bookkeeping for halt-condition early exit.
///
/// The engine evaluates the live *prefix* of the physical lane columns;
/// when a lane's halt probe fires it is swapped past the prefix and the
/// prefix shrinks. These tables keep the user-facing lane numbering
/// stable across those swaps.
#[derive(Debug)]
struct LaneLiveness {
    /// Slot whose nonzero value marks a finished lane.
    halt_slot: u32,
    /// Physical column of each original lane.
    phys_of: Vec<usize>,
    /// Original lane of each physical column.
    orig_of: Vec<usize>,
    /// Cycle at which each original lane halted (by original index).
    done_at: Vec<Option<u64>>,
}

impl LaneLiveness {
    fn new(halt_slot: u32, lanes: usize) -> Self {
        LaneLiveness {
            halt_slot,
            phys_of: (0..lanes).collect(),
            orig_of: (0..lanes).collect(),
            done_at: vec![None; lanes],
        }
    }
}

impl BatchSimulation {
    /// Builds a `lanes`-wide simulation from a compile result. Runs
    /// single-threaded until [`with_threads`](Self::with_threads).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(compiled: &Compiled, lanes: usize) -> Self {
        let plan = compiled.plan.clone();
        let kernel = BatchKernel::compile(&plan, compiled.kernel.config());
        let state = BatchLiState::new(&plan, lanes);
        let mut input_index = HashMap::new();
        for (idx, &slot) in plan.input_slots.iter().enumerate() {
            if let Some((name, _, _)) = plan.probes.iter().find(|(_, s, _)| *s == slot) {
                input_index.insert(name.clone(), idx);
            }
        }
        let probe_index = plan
            .probes
            .iter()
            .map(|(n, s, w)| (n.clone(), (*s, *w)))
            .collect();
        BatchSimulation {
            kernel,
            state,
            plan,
            input_index,
            probe_index,
            threads: 1,
            liveness: None,
        }
    }

    /// Sets the worker-thread count for subsequent stepping (each layer's
    /// operations are split across the workers; 1 = sequential). Clamped
    /// to the host's available parallelism — oversubscribing a batch run
    /// only adds barrier overhead. Use
    /// [`BatchKernel::run_parallel`](rteaal_kernels::BatchKernel) directly
    /// to force an exact count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        self.threads = threads.clamp(1, cores.max(1));
        self
    }

    /// Number of stimulus lanes.
    pub fn lanes(&self) -> usize {
        self.state.lanes()
    }

    /// Worker threads used per step.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Physical lane column of a user-facing lane index (identity until
    /// liveness compaction starts swapping finished lanes out of the
    /// evaluated window).
    fn phys(&self, lane: usize) -> usize {
        self.liveness.as_ref().map_or(lane, |lv| lv.phys_of[lane])
    }

    /// Drives an input port on one lane, by name.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSignal`] if no input port has this name.
    pub fn poke(&mut self, name: &str, lane: usize, value: u64) -> Result<(), UnknownSignal> {
        let idx = *self
            .input_index
            .get(name)
            .ok_or_else(|| UnknownSignal(name.to_string()))?;
        let phys = self.phys(lane);
        self.state.set_input(idx, phys, value);
        Ok(())
    }

    /// Drives an input port identically on every live lane, by name
    /// (halted lanes keep their state frozen at the halt cycle).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSignal`] if no input port has this name.
    pub fn poke_all(&mut self, name: &str, value: u64) -> Result<(), UnknownSignal> {
        let idx = *self
            .input_index
            .get(name)
            .ok_or_else(|| UnknownSignal(name.to_string()))?;
        if self.liveness.is_some() {
            self.state.set_input_live(idx, value);
        } else {
            self.state.set_input_all(idx, value);
        }
        Ok(())
    }

    /// Reads any probed signal on one lane — output ports, registers,
    /// inputs, or named internal nodes (the XMR path, per lane). A
    /// halted lane reads its state frozen at the halt cycle.
    pub fn peek(&self, name: &str, lane: usize) -> Option<u64> {
        let phys = self.phys(lane);
        if let Some(&(slot, _)) = self.probe_index.get(name) {
            return Some(self.state.slot(slot, phys));
        }
        self.state.output_by_name(name, phys)
    }

    /// Advances one clock cycle on the live lanes, using the configured
    /// worker threads. With a halt watch enabled, finished lanes are
    /// compacted out of the evaluated window after the cycle; once every
    /// lane has halted this is a no-op.
    pub fn step(&mut self) {
        if self.liveness.is_some() && self.state.live() == 0 {
            return;
        }
        if self.threads == 1 {
            self.kernel.step(&mut self.state);
        } else {
            self.kernel.run_parallel(&mut self.state, 1, self.threads);
        }
        self.probe_halts();
    }

    /// Advances `n` cycles on the live lanes, using the configured
    /// worker threads. Inputs hold their last poked values. With a halt
    /// watch enabled, stops early once every lane has halted.
    pub fn step_cycles(&mut self, n: u64) {
        if self.liveness.is_none() {
            self.kernel.run_parallel(&mut self.state, n, self.threads);
            return;
        }
        for _ in 0..n {
            if self.state.live() == 0 {
                break;
            }
            self.step();
        }
    }

    /// Advances `n` cycles, invoking `stimulus` before each cycle so
    /// every lane can be driven independently mid-run (the batched
    /// analog of a per-cycle testbench loop). The poker addresses
    /// physical lane columns and no halt probing happens mid-run, so
    /// combine with [`watch_halt`](Self::watch_halt) only before the
    /// first compaction (or use [`step`](Self::step) /
    /// [`run_until_halt`](Self::run_until_halt) instead).
    pub fn run_with_stimulus(&mut self, n: u64, stimulus: impl FnMut(u64, &mut LanePoker<'_>)) {
        self.kernel
            .run_with_stimulus(&mut self.state, n, self.threads, stimulus);
        self.probe_halts();
    }

    /// Enables lane-liveness early exit: after every cycle, any live lane
    /// whose `signal` probe reads nonzero is recorded as finished at the
    /// current cycle and compacted out of the evaluated lane window.
    ///
    /// Re-arming with a different signal mid-run only switches the
    /// watched probe: the lane permutation, live window, and completion
    /// records all carry over (use [`reset`](Self::reset) to start
    /// fresh).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSignal`] if `signal` names neither a probe nor an
    /// output port.
    pub fn watch_halt(&mut self, signal: &str) -> Result<(), UnknownSignal> {
        let slot = self
            .probe_index
            .get(signal)
            .map(|&(s, _)| s)
            .or_else(|| {
                self.plan
                    .output_slots
                    .iter()
                    .find(|(n, _)| n == signal)
                    .map(|&(_, s)| s)
            })
            .ok_or_else(|| UnknownSignal(signal.to_string()))?;
        match &mut self.liveness {
            // Keep the lane maps and live window: resetting them to
            // identity under already-permuted columns would corrupt
            // every lane-indexed read.
            Some(lv) => lv.halt_slot = slot,
            None => self.liveness = Some(LaneLiveness::new(slot, self.state.lanes())),
        }
        Ok(())
    }

    /// Steps until every lane has halted or `max_cycles` have elapsed,
    /// whichever comes first. Returns the number of cycles stepped.
    ///
    /// # Panics
    ///
    /// Panics unless [`watch_halt`](Self::watch_halt) was enabled.
    pub fn run_until_halt(&mut self, max_cycles: u64) -> u64 {
        assert!(
            self.liveness.is_some(),
            "run_until_halt needs a watch_halt signal"
        );
        let mut stepped = 0;
        while stepped < max_cycles && self.state.live() > 0 {
            self.step();
            stepped += 1;
        }
        stepped
    }

    /// Whether a lane's halt condition has fired (always `false` without
    /// a halt watch).
    pub fn halted(&self, lane: usize) -> bool {
        self.completion_cycle(lane).is_some()
    }

    /// The cycle at which a lane halted, or `None` while it is still
    /// running (or without a halt watch).
    pub fn completion_cycle(&self, lane: usize) -> Option<u64> {
        self.liveness.as_ref().and_then(|lv| lv.done_at[lane])
    }

    /// Number of lanes still being evaluated (all of them without a halt
    /// watch).
    pub fn live_lanes(&self) -> usize {
        self.state.live()
    }

    /// Probes the halt row and compacts finished lanes out of the
    /// evaluated window, keeping the original↔physical lane maps in
    /// sync.
    fn probe_halts(&mut self) {
        let Some(lv) = &mut self.liveness else {
            return;
        };
        let cycle = self.state.cycle();
        let mut phys = 0;
        while phys < self.state.live() {
            if self.state.slot(lv.halt_slot, phys) == 0 {
                phys += 1;
                continue;
            }
            let last = self.state.live() - 1;
            lv.done_at[lv.orig_of[phys]] = Some(cycle);
            self.state.swap_lanes(phys, last);
            lv.orig_of.swap(phys, last);
            lv.phys_of[lv.orig_of[phys]] = phys;
            lv.phys_of[lv.orig_of[last]] = last;
            self.state.set_live(last);
            // The swapped-in occupant of `phys` still needs probing, so
            // don't advance.
        }
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.state.cycle()
    }

    /// Resets every lane to the power-on state (reviving halted lanes
    /// and clearing completion records).
    pub fn reset(&mut self) {
        self.state.reset();
        if let Some(lv) = &mut self.liveness {
            *lv = LaneLiveness::new(lv.halt_slot, self.state.lanes());
        }
    }

    /// Index of a named input port (for driving through a
    /// [`LanePoker`] inside [`run_with_stimulus`](Self::run_with_stimulus)).
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.input_index.get(name).copied()
    }

    /// The plan (OIM content) this simulation executes.
    pub fn plan(&self) -> &SimPlan {
        &self.plan
    }

    /// All probe names (sorted) — the visible signal namespace.
    pub fn signals(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.probe_index.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use crate::simulation::Simulation;
    use rteaal_kernels::{KernelConfig, KernelKind};

    const SRC: &str = "\
circuit S :
  module S :
    input clock : Clock
    input x : UInt<8>
    output out : UInt<8>
    output big : UInt<1>
    reg acc : UInt<8>, clock
    node sum = tail(add(acc, x), 1)
    acc <= sum
    out <= acc
    big <= gt(acc, UInt<8>(100))
";

    fn compiled(kind: KernelKind) -> Compiled {
        Compiler::new(KernelConfig::new(kind))
            .compile_str(SRC)
            .unwrap()
    }

    #[test]
    fn per_lane_poke_peek() {
        let c = compiled(KernelKind::Psu);
        let mut batch = BatchSimulation::new(&c, 3);
        for lane in 0..3 {
            batch.poke("x", lane, 10 * (lane as u64 + 1)).unwrap();
        }
        batch.step_cycles(4);
        for lane in 0..3 {
            assert_eq!(batch.peek("out", lane), Some(40 * (lane as u64 + 1)));
            assert_eq!(batch.peek("acc", lane), Some(40 * (lane as u64 + 1)));
        }
        assert!(batch.poke("nope", 0, 1).is_err());
        assert_eq!(batch.peek("ghost", 0), None);
        assert_eq!(batch.cycle(), 4);
    }

    #[test]
    fn lanes_match_scalar_simulations() {
        let c = compiled(KernelKind::Nu);
        const LANES: usize = 5;
        let mut batch = BatchSimulation::new(&c, LANES).with_threads(2);
        let x_idx = batch.input_index("x").unwrap();
        batch.run_with_stimulus(50, |cycle, poker| {
            for lane in 0..LANES {
                poker.set_input(x_idx, lane, cycle ^ (lane as u64) << 3);
            }
        });
        for lane in 0..LANES {
            let mut single = Simulation::new(compiled(KernelKind::Nu));
            for cycle in 0..50 {
                single.poke("x", cycle ^ (lane as u64) << 3).unwrap();
                single.step();
            }
            for name in ["out", "big", "acc"] {
                assert_eq!(
                    batch.peek(name, lane),
                    single.peek(name),
                    "lane {lane} signal {name}"
                );
            }
        }
    }

    /// A counter that raises `done` once it reaches a per-lane limit —
    /// the minimal halt-condition workload.
    const HALT_SRC: &str = "\
circuit H :
  module H :
    input clock : Clock
    input limit : UInt<8>
    output cnt : UInt<8>
    output done : UInt<1>
    reg acc : UInt<8>, clock
    acc <= tail(add(acc, UInt<8>(1)), 1)
    cnt <= acc
    done <= geq(acc, limit)
";

    #[test]
    fn early_exit_records_per_lane_completion_and_freezes_state() {
        let c = Compiler::new(KernelConfig::new(KernelKind::Psu))
            .compile_str(HALT_SRC)
            .unwrap();
        const LANES: usize = 6;
        let mut sim = BatchSimulation::new(&c, LANES);
        sim.watch_halt("done").unwrap();
        for lane in 0..LANES {
            // `done` compares the committed acc, so lane L's halt is
            // observed at cycle L + 3: acc reaches L + 2 after step
            // L + 2, and the comparison sees it one step later.
            sim.poke("limit", lane, lane as u64 + 2).unwrap();
        }
        assert_eq!(sim.live_lanes(), LANES);
        let stepped = sim.run_until_halt(100);
        assert_eq!(stepped, LANES as u64 + 2);
        assert_eq!(sim.live_lanes(), 0);
        for lane in 0..LANES {
            assert!(sim.halted(lane));
            assert_eq!(sim.completion_cycle(lane), Some(lane as u64 + 3));
            // Frozen at the halt cycle (acc committed once more during
            // the halting step).
            assert_eq!(sim.peek("cnt", lane), Some(lane as u64 + 3), "lane {lane}");
            assert_eq!(sim.peek("done", lane), Some(1));
        }
        // Fully-halted batches no-op instead of burning cycles.
        let cycle = sim.cycle();
        sim.step_cycles(50);
        assert_eq!(sim.cycle(), cycle);
        // Reset revives every lane and clears the completion records.
        sim.reset();
        assert_eq!(sim.live_lanes(), LANES);
        assert!(!sim.halted(0));
        assert_eq!(sim.completion_cycle(3), None);
    }

    #[test]
    fn early_exit_lane_indexing_is_stable_across_compaction() {
        let c = Compiler::new(KernelConfig::new(KernelKind::Nu))
            .compile_str(HALT_SRC)
            .unwrap();
        const LANES: usize = 5;
        let mut sim = BatchSimulation::new(&c, LANES);
        sim.watch_halt("done").unwrap();
        // Lane 0 halts *last*, so compaction reorders the physical
        // columns under every earlier lane.
        for lane in 0..LANES {
            let limit = (LANES - lane) as u64 + 1;
            sim.poke("limit", lane, limit).unwrap();
        }
        sim.run_until_halt(100);
        for lane in 0..LANES {
            let limit = (LANES - lane) as u64 + 1;
            assert_eq!(sim.completion_cycle(lane), Some(limit + 1), "lane {lane}");
            assert_eq!(sim.peek("cnt", lane), Some(limit + 1), "lane {lane}");
            assert_eq!(sim.peek("limit", lane), Some(limit), "lane {lane}");
        }
    }

    #[test]
    fn watch_halt_rejects_unknown_signals() {
        let c = compiled(KernelKind::Psu);
        let mut sim = BatchSimulation::new(&c, 2);
        assert!(sim.watch_halt("no_such_signal").is_err());
        // Output ports resolve even when not probed by name.
        assert!(sim.watch_halt("big").is_ok());
    }

    #[test]
    fn poke_all_and_reset() {
        let c = compiled(KernelKind::Ti);
        let mut batch = BatchSimulation::new(&c, 4).with_threads(4);
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        assert_eq!(batch.threads(), 4.min(cores));
        assert_eq!(batch.lanes(), 4);
        batch.poke_all("x", 5).unwrap();
        batch.step_cycles(3);
        for lane in 0..4 {
            assert_eq!(batch.peek("out", lane), Some(15));
        }
        batch.reset();
        assert_eq!(batch.cycle(), 0);
        assert_eq!(batch.peek("acc", 2), Some(0));
        assert!(batch.signals().contains(&"acc"));
        assert!(batch.plan().stats.layers >= 1);
    }
}
