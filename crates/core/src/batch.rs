//! The user-facing batched simulation handle: one compiled design, `B`
//! independent stimulus lanes, named per-lane poke/peek, and
//! thread-parallel cycle stepping.
//!
//! [`BatchSimulation`] is the throughput front door: where
//! [`Simulation`](crate::Simulation) answers "what does this design do
//! under this stimulus", `BatchSimulation` answers it for `B` stimulus
//! vectors at once — regression suites, fuzz corpora, or parameter
//! sweeps — while paying the compile and coordinate-traversal cost once.

use crate::compiler::Compiled;
use crate::simulation::UnknownSignal;
use rteaal_dfg::plan::SimPlan;
use rteaal_kernels::{BatchKernel, BatchLiState, LanePoker};
use std::collections::HashMap;

/// A running batched simulation of one compiled design.
///
/// # Examples
///
/// ```
/// use rteaal_core::{BatchSimulation, Compiler};
/// use rteaal_kernels::{KernelConfig, KernelKind};
///
/// let src = "\
/// circuit Acc :
///   module Acc :
///     input clock : Clock
///     input x : UInt<8>
///     output out : UInt<8>
///     reg acc : UInt<8>, clock
///     acc <= tail(add(acc, x), 1)
///     out <= acc
/// ";
/// let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu)).compile_str(src)?;
/// let mut sim = BatchSimulation::new(&compiled, 4);
/// for lane in 0..4 {
///     sim.poke("x", lane, lane as u64 + 1)?;
/// }
/// sim.step_cycles(3);
/// for lane in 0..4 {
///     assert_eq!(sim.peek("out", lane), Some(3 * (lane as u64 + 1)));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct BatchSimulation {
    kernel: BatchKernel,
    state: BatchLiState,
    plan: SimPlan,
    input_index: HashMap<String, usize>,
    probe_index: HashMap<String, (u32, u8)>,
    threads: usize,
}

impl BatchSimulation {
    /// Builds a `lanes`-wide simulation from a compile result. Runs
    /// single-threaded until [`with_threads`](Self::with_threads).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(compiled: &Compiled, lanes: usize) -> Self {
        let plan = compiled.plan.clone();
        let kernel = BatchKernel::compile(&plan, compiled.kernel.config());
        let state = BatchLiState::new(&plan, lanes);
        let mut input_index = HashMap::new();
        for (idx, &slot) in plan.input_slots.iter().enumerate() {
            if let Some((name, _, _)) = plan.probes.iter().find(|(_, s, _)| *s == slot) {
                input_index.insert(name.clone(), idx);
            }
        }
        let probe_index = plan
            .probes
            .iter()
            .map(|(n, s, w)| (n.clone(), (*s, *w)))
            .collect();
        BatchSimulation {
            kernel,
            state,
            plan,
            input_index,
            probe_index,
            threads: 1,
        }
    }

    /// Sets the worker-thread count for subsequent stepping (each layer's
    /// operations are split across the workers; 1 = sequential). Clamped
    /// to the host's available parallelism — oversubscribing a batch run
    /// only adds barrier overhead. Use
    /// [`BatchKernel::run_parallel`](rteaal_kernels::BatchKernel) directly
    /// to force an exact count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        self.threads = threads.clamp(1, cores.max(1));
        self
    }

    /// Number of stimulus lanes.
    pub fn lanes(&self) -> usize {
        self.state.lanes()
    }

    /// Worker threads used per step.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Drives an input port on one lane, by name.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSignal`] if no input port has this name.
    pub fn poke(&mut self, name: &str, lane: usize, value: u64) -> Result<(), UnknownSignal> {
        let idx = *self
            .input_index
            .get(name)
            .ok_or_else(|| UnknownSignal(name.to_string()))?;
        self.state.set_input(idx, lane, value);
        Ok(())
    }

    /// Drives an input port identically on every lane, by name.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSignal`] if no input port has this name.
    pub fn poke_all(&mut self, name: &str, value: u64) -> Result<(), UnknownSignal> {
        let idx = *self
            .input_index
            .get(name)
            .ok_or_else(|| UnknownSignal(name.to_string()))?;
        self.state.set_input_all(idx, value);
        Ok(())
    }

    /// Reads any probed signal on one lane — output ports, registers,
    /// inputs, or named internal nodes (the XMR path, per lane).
    pub fn peek(&self, name: &str, lane: usize) -> Option<u64> {
        if let Some(&(slot, _)) = self.probe_index.get(name) {
            return Some(self.state.slot(slot, lane));
        }
        self.state.output_by_name(name, lane)
    }

    /// Advances one clock cycle on every lane, using the configured
    /// worker threads.
    pub fn step(&mut self) {
        if self.threads == 1 {
            self.kernel.step(&mut self.state);
        } else {
            self.kernel.run_parallel(&mut self.state, 1, self.threads);
        }
    }

    /// Advances `n` cycles on every lane, using the configured worker
    /// threads. Inputs hold their last poked values.
    pub fn step_cycles(&mut self, n: u64) {
        self.kernel.run_parallel(&mut self.state, n, self.threads);
    }

    /// Advances `n` cycles, invoking `stimulus` before each cycle so
    /// every lane can be driven independently mid-run (the batched
    /// analog of a per-cycle testbench loop).
    pub fn run_with_stimulus(&mut self, n: u64, stimulus: impl FnMut(u64, &mut LanePoker<'_>)) {
        self.kernel
            .run_with_stimulus(&mut self.state, n, self.threads, stimulus);
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.state.cycle()
    }

    /// Resets every lane to the power-on state.
    pub fn reset(&mut self) {
        self.state.reset();
    }

    /// Index of a named input port (for driving through a
    /// [`LanePoker`] inside [`run_with_stimulus`](Self::run_with_stimulus)).
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.input_index.get(name).copied()
    }

    /// The plan (OIM content) this simulation executes.
    pub fn plan(&self) -> &SimPlan {
        &self.plan
    }

    /// All probe names (sorted) — the visible signal namespace.
    pub fn signals(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.probe_index.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use crate::simulation::Simulation;
    use rteaal_kernels::{KernelConfig, KernelKind};

    const SRC: &str = "\
circuit S :
  module S :
    input clock : Clock
    input x : UInt<8>
    output out : UInt<8>
    output big : UInt<1>
    reg acc : UInt<8>, clock
    node sum = tail(add(acc, x), 1)
    acc <= sum
    out <= acc
    big <= gt(acc, UInt<8>(100))
";

    fn compiled(kind: KernelKind) -> Compiled {
        Compiler::new(KernelConfig::new(kind))
            .compile_str(SRC)
            .unwrap()
    }

    #[test]
    fn per_lane_poke_peek() {
        let c = compiled(KernelKind::Psu);
        let mut batch = BatchSimulation::new(&c, 3);
        for lane in 0..3 {
            batch.poke("x", lane, 10 * (lane as u64 + 1)).unwrap();
        }
        batch.step_cycles(4);
        for lane in 0..3 {
            assert_eq!(batch.peek("out", lane), Some(40 * (lane as u64 + 1)));
            assert_eq!(batch.peek("acc", lane), Some(40 * (lane as u64 + 1)));
        }
        assert!(batch.poke("nope", 0, 1).is_err());
        assert_eq!(batch.peek("ghost", 0), None);
        assert_eq!(batch.cycle(), 4);
    }

    #[test]
    fn lanes_match_scalar_simulations() {
        let c = compiled(KernelKind::Nu);
        const LANES: usize = 5;
        let mut batch = BatchSimulation::new(&c, LANES).with_threads(2);
        let x_idx = batch.input_index("x").unwrap();
        batch.run_with_stimulus(50, |cycle, poker| {
            for lane in 0..LANES {
                poker.set_input(x_idx, lane, cycle ^ (lane as u64) << 3);
            }
        });
        for lane in 0..LANES {
            let mut single = Simulation::new(compiled(KernelKind::Nu));
            for cycle in 0..50 {
                single.poke("x", cycle ^ (lane as u64) << 3).unwrap();
                single.step();
            }
            for name in ["out", "big", "acc"] {
                assert_eq!(
                    batch.peek(name, lane),
                    single.peek(name),
                    "lane {lane} signal {name}"
                );
            }
        }
    }

    #[test]
    fn poke_all_and_reset() {
        let c = compiled(KernelKind::Ti);
        let mut batch = BatchSimulation::new(&c, 4).with_threads(4);
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        assert_eq!(batch.threads(), 4.min(cores));
        assert_eq!(batch.lanes(), 4);
        batch.poke_all("x", 5).unwrap();
        batch.step_cycles(3);
        for lane in 0..4 {
            assert_eq!(batch.peek("out", lane), Some(15));
        }
        batch.reset();
        assert_eq!(batch.cycle(), 0);
        assert_eq!(batch.peek("acc", 2), Some(0));
        assert!(batch.signals().contains(&"acc"));
        assert!(batch.plan().stats.layers >= 1);
    }
}
