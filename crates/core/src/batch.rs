//! The user-facing batched simulation handle: one compiled design, `B`
//! independent stimulus lanes, named per-lane poke/peek, and
//! thread-parallel cycle stepping.
//!
//! [`BatchSimulation`] is the throughput front door: where
//! [`Simulation`](crate::Simulation) answers "what does this design do
//! under this stimulus", `BatchSimulation` answers it for `B` stimulus
//! vectors at once — regression suites, fuzz corpora, or parameter
//! sweeps — while paying the compile and coordinate-traversal cost once.
//!
//! Workloads with a halt condition (the RV32I core's `halt` output, or
//! any probed signal) can additionally enable **lane-liveness early
//! exit** via [`BatchSimulation::watch_halt`]: after every cycle the
//! engine probes the halt row, records each finished lane's completion
//! cycle, and compacts it out of the evaluated lane window, so the
//! remaining cycles are spent only on lanes still running. Lane indices
//! seen by [`poke`](BatchSimulation::poke) /
//! [`peek`](BatchSimulation::peek) stay stable across compaction; a
//! finished lane's state is frozen at its halt cycle.
//!
//! Freed lanes need not stay frozen: [`BatchSimulation::reset_lane`]
//! revives a compacted-out lane at the power-on state and
//! [`BatchSimulation::admit`] binds fresh stimulus to it, so new
//! testbenches can enter mid-run the moment a lane drains — the
//! continuous-batching substrate the `rteaal-sched` scheduler is built
//! on. [`BatchSimulation::enable_lane_waveforms`] additionally records a
//! per-cycle VCD of one chosen lane through the same compaction-stable
//! lane addressing.

use crate::compiler::Compiled;
use crate::simulation::UnknownSignal;
use crate::waveform::VcdWriter;
use rteaal_dfg::analyze::{analyze_partitioned, AnalysisReport};
use rteaal_dfg::partition::PartitionedPlan;
use rteaal_dfg::plan::SimPlan;
use rteaal_dfg::specialize::{specialize, SpecStats, Specialization};
use rteaal_kernels::{BatchKernel, BatchLiState, LanePoker};
use std::collections::HashMap;

/// How a batched simulation decomposes the design across partitions
/// (paper Appendix C, Cascade 2 — the RepCut replication scheme).
///
/// Lane-wise batching is orthogonal: partitioning splits the *ops of one
/// cycle* across workers, so it is the lever for per-job latency on
/// large designs, where lanes are the lever for throughput.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Partitioning {
    /// Classic single-schedule execution (the default).
    #[default]
    None,
    /// Exactly this many RepCut partitions (1 behaves like `None`).
    Fixed(usize),
    /// A host- and design-derived partition count
    /// ([`PartitionedPlan::auto_partitions`]).
    Auto,
}

/// A running batched simulation of one compiled design.
///
/// # Examples
///
/// ```
/// use rteaal_core::{BatchSimulation, Compiler};
/// use rteaal_kernels::{KernelConfig, KernelKind};
///
/// let src = "\
/// circuit Acc :
///   module Acc :
///     input clock : Clock
///     input x : UInt<8>
///     output out : UInt<8>
///     reg acc : UInt<8>, clock
///     acc <= tail(add(acc, x), 1)
///     out <= acc
/// ";
/// let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu)).compile_str(src)?;
/// let mut sim = BatchSimulation::new(&compiled, 4);
/// for lane in 0..4 {
///     sim.poke("x", lane, lane as u64 + 1)?;
/// }
/// sim.step_cycles(3);
/// for lane in 0..4 {
///     assert_eq!(sim.peek("out", lane), Some(3 * (lane as u64 + 1)));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct BatchSimulation {
    kernel: BatchKernel,
    state: BatchLiState,
    plan: SimPlan,
    input_index: HashMap<String, usize>,
    probe_index: HashMap<String, (u32, u8)>,
    threads: usize,
    liveness: Option<LaneLiveness>,
    vcd: Option<LaneVcd>,
    /// RepCut replication factor of the decomposition (1.0 when
    /// unpartitioned).
    replication: f64,
    /// What the specialization transform removed (`None` when built
    /// with [`Specialization::Off`]).
    spec_stats: Option<SpecStats>,
}

/// Single-lane VCD capture state: the chosen user-facing lane and the
/// incremental writer (the batched analog of the scalar
/// [`Simulation`](crate::Simulation) waveform path, scoped to one lane).
#[derive(Debug)]
struct LaneVcd {
    lane: usize,
    writer: VcdWriter,
}

/// Lane-liveness bookkeeping for halt-condition early exit.
///
/// The engine evaluates the live *prefix* of the physical lane columns;
/// when a lane's halt probe fires it is swapped past the prefix and the
/// prefix shrinks. These tables keep the user-facing lane numbering
/// stable across those swaps.
#[derive(Debug)]
struct LaneLiveness {
    /// Slot whose nonzero value marks a finished lane.
    halt_slot: u32,
    /// Physical column of each original lane.
    phys_of: Vec<usize>,
    /// Original lane of each physical column.
    orig_of: Vec<usize>,
    /// Cycle at which each original lane halted (by original index).
    done_at: Vec<Option<u64>>,
}

impl LaneLiveness {
    fn new(halt_slot: u32, lanes: usize) -> Self {
        LaneLiveness {
            halt_slot,
            phys_of: (0..lanes).collect(),
            orig_of: (0..lanes).collect(),
            done_at: vec![None; lanes],
        }
    }

    /// Swaps two physical columns' occupants in the lane maps. The
    /// caller swaps the state columns (`BatchLiState::swap_lanes`) and
    /// adjusts the live window; this keeps the original↔physical
    /// permutation consistent — the one invariant every lane-indexed
    /// read depends on.
    fn swap_phys(&mut self, a: usize, b: usize) {
        self.orig_of.swap(a, b);
        self.phys_of[self.orig_of[a]] = a;
        self.phys_of[self.orig_of[b]] = b;
    }
}

impl BatchSimulation {
    /// Builds a `lanes`-wide simulation from a compile result. Runs
    /// single-threaded until [`with_threads`](Self::with_threads).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(compiled: &Compiled, lanes: usize) -> Self {
        Self::new_with(compiled, lanes, Partitioning::None)
    }

    /// Builds a `lanes`-wide simulation with an explicit RepCut
    /// decomposition. A partitioned simulation is bit-identical to an
    /// unpartitioned one through every public method — lane reset,
    /// admission, halt compaction, pokes and probes are all
    /// partition-aware — it only changes how a cycle's ops divide across
    /// worker threads (pair with [`with_threads`](Self::with_threads)).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero, on `Partitioning::Fixed(0)`, or if the
    /// static verifier rejects the RepCut decomposition (see
    /// [`try_new_with`](Self::try_new_with) for the non-panicking form).
    pub fn new_with(compiled: &Compiled, lanes: usize, partitioning: Partitioning) -> Self {
        match Self::try_new_with(compiled, lanes, partitioning) {
            Ok(sim) => sim,
            Err(report) => panic!("partitioned plan failed verification: {report}"),
        }
    }

    /// Builds a `lanes`-wide simulation with an explicit RepCut
    /// decomposition, running the static verifier
    /// ([`rteaal_dfg::analyze`]) over the partitioned schedule first.
    ///
    /// # Errors
    ///
    /// Returns the verifier's [`AnalysisReport`] if the decomposition
    /// violates a structural invariant (foreign commit, missing RUM
    /// reader, uncovered op, …) — the engine is never constructed over an
    /// unverified partitioning.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero, or on `Partitioning::Fixed(0)`.
    pub fn try_new_with(
        compiled: &Compiled,
        lanes: usize,
        partitioning: Partitioning,
    ) -> Result<Self, AnalysisReport> {
        Self::try_new_full(compiled, lanes, partitioning, Specialization::Off)
    }

    /// Builds a `lanes`-wide simulation with an explicit RepCut
    /// decomposition and specialization tier, panicking on a verifier
    /// rejection (see [`try_new_full`](Self::try_new_full)).
    ///
    /// # Panics
    ///
    /// As [`new_with`](Self::new_with).
    pub fn new_full(
        compiled: &Compiled,
        lanes: usize,
        partitioning: Partitioning,
        spec: Specialization,
    ) -> Self {
        match Self::try_new_full(compiled, lanes, partitioning, spec) {
            Ok(sim) => sim,
            Err(report) => panic!("plan failed verification: {report}"),
        }
    }

    /// The full-control constructor: RepCut decomposition *and* the
    /// whole-design specialization tier.
    ///
    /// [`Specialization::Auto`] first applies the plan transform
    /// ([`rteaal_dfg::specialize`]) — constant folding of
    /// never-toggling cones, value-numbering dedup, dead-code
    /// elimination over the observable roots — and then decides the
    /// execution form: unpartitioned simulations get the superblock
    /// program with bit-packed 64-lanes-per-word bodies when `lanes >=
    /// 32` (below that the pack/unpack boundary costs more than packing
    /// saves), while partitioned simulations execute the transformed
    /// plan through the classic RepCut walk (packing needs
    /// whole-schedule consumer analysis, which replicated fan-in cones
    /// invalidate). Observables — outputs, probes, registers, halt
    /// conditions, DMI pokes — stay bit-identical to
    /// [`Specialization::Off`] in every combination.
    ///
    /// # Errors
    ///
    /// As [`try_new_with`](Self::try_new_with); a partitioned
    /// specialized plan is re-verified after the transform.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero, or on `Partitioning::Fixed(0)`.
    pub fn try_new_full(
        compiled: &Compiled,
        lanes: usize,
        partitioning: Partitioning,
        spec: Specialization,
    ) -> Result<Self, AnalysisReport> {
        let (plan, spec_stats) = match spec {
            Specialization::Off => (compiled.plan.clone(), None),
            Specialization::Auto => {
                let sp = specialize(&compiled.plan);
                (sp.plan, Some(sp.stats))
            }
        };
        let parts = match partitioning {
            Partitioning::None => 1,
            Partitioning::Fixed(p) => {
                assert!(p > 0, "partition count must be nonzero");
                p
            }
            Partitioning::Auto => PartitionedPlan::auto_partitions(&plan),
        };
        let (kernel, state, replication) = if parts > 1 {
            let pp = PartitionedPlan::new(&plan, parts);
            let report = analyze_partitioned(&plan, &pp);
            if !report.is_clean() {
                return Err(report);
            }
            let kernel = BatchKernel::compile_partitioned(&pp, compiled.kernel.config());
            let state = BatchLiState::new_partitioned(&plan, lanes, &pp);
            (kernel, state, pp.replication_factor())
        } else if let Some(stats) = spec_stats {
            let sp = rteaal_dfg::specialize::SpecializedPlan {
                plan: plan.clone(),
                stats,
            };
            let pack = lanes >= 32;
            let kernel = BatchKernel::compile_specialized(&sp, compiled.kernel.config(), pack);
            (kernel, BatchLiState::new(&plan, lanes), 1.0)
        } else {
            let kernel = BatchKernel::compile(&plan, compiled.kernel.config());
            (kernel, BatchLiState::new(&plan, lanes), 1.0)
        };
        let mut input_index = HashMap::new();
        for (idx, &slot) in plan.input_slots.iter().enumerate() {
            if let Some((name, _, _)) = plan.probes.iter().find(|(_, s, _)| *s == slot) {
                input_index.insert(name.clone(), idx);
            }
        }
        let probe_index = plan
            .probes
            .iter()
            .map(|(n, s, w)| (n.clone(), (*s, *w)))
            .collect();
        Ok(BatchSimulation {
            kernel,
            state,
            plan,
            input_index,
            probe_index,
            threads: 1,
            liveness: None,
            vcd: None,
            replication,
            spec_stats,
        })
    }

    /// What the specialization transform removed, when this simulation
    /// was built with [`Specialization::Auto`].
    pub fn specialization_stats(&self) -> Option<SpecStats> {
        self.spec_stats
    }

    /// Number of RepCut partitions this simulation executes (1 =
    /// unpartitioned).
    pub fn partitions(&self) -> usize {
        self.state.partitions()
    }

    /// RepCut replication factor of the decomposition: total scheduled
    /// ops (including replicated fan-in cones) over the plan's ops. 1.0
    /// when unpartitioned.
    pub fn replication_factor(&self) -> f64 {
        self.replication
    }

    /// Sets the worker-thread count for subsequent stepping (each layer's
    /// operations are split across the workers; 1 = sequential). Clamped
    /// to the host's available parallelism — oversubscribing a batch run
    /// only adds barrier overhead. Use
    /// [`BatchKernel::run_parallel`](rteaal_kernels::BatchKernel) directly
    /// to force an exact count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        self.threads = threads.clamp(1, cores.max(1));
        self
    }

    /// Number of stimulus lanes.
    pub fn lanes(&self) -> usize {
        self.state.lanes()
    }

    /// Worker threads used per step.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Physical lane column of a user-facing lane index (identity until
    /// liveness compaction starts swapping finished lanes out of the
    /// evaluated window).
    fn phys(&self, lane: usize) -> usize {
        self.liveness.as_ref().map_or(lane, |lv| lv.phys_of[lane])
    }

    /// Drives an input port on one lane, by name.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSignal`] if no input port has this name.
    pub fn poke(&mut self, name: &str, lane: usize, value: u64) -> Result<(), UnknownSignal> {
        let idx = *self
            .input_index
            .get(name)
            .ok_or_else(|| UnknownSignal(name.to_string()))?;
        let phys = self.phys(lane);
        self.state.set_input(idx, phys, value);
        Ok(())
    }

    /// Drives an input port identically on every live lane, by name
    /// (halted lanes keep their state frozen at the halt cycle).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSignal`] if no input port has this name.
    pub fn poke_all(&mut self, name: &str, value: u64) -> Result<(), UnknownSignal> {
        let idx = *self
            .input_index
            .get(name)
            .ok_or_else(|| UnknownSignal(name.to_string()))?;
        if self.liveness.is_some() {
            self.state.set_input_live(idx, value);
        } else {
            self.state.set_input_all(idx, value);
        }
        Ok(())
    }

    /// Reads any probed signal on one lane — output ports, registers,
    /// inputs, or named internal nodes (the XMR path, per lane). A
    /// halted lane reads its state frozen at the halt cycle.
    pub fn peek(&self, name: &str, lane: usize) -> Option<u64> {
        let phys = self.phys(lane);
        if let Some(&(slot, _)) = self.probe_index.get(name) {
            return Some(self.state.slot(slot, phys));
        }
        self.state.output_by_name(name, phys)
    }

    /// Advances one clock cycle on the live lanes, using the configured
    /// worker threads. With a halt watch enabled, finished lanes are
    /// compacted out of the evaluated window after the cycle; once every
    /// lane has halted this is a no-op.
    pub fn step(&mut self) {
        if self.liveness.is_some() && self.state.live() == 0 {
            return;
        }
        if self.threads == 1 {
            self.kernel.step(&mut self.state);
        } else {
            self.kernel.run_parallel(&mut self.state, 1, self.threads);
        }
        self.probe_halts();
        self.sample_vcd();
    }

    /// Advances `n` cycles on the live lanes, using the configured
    /// worker threads. Inputs hold their last poked values. With a halt
    /// watch enabled, stops early once every lane has halted.
    pub fn step_cycles(&mut self, n: u64) {
        if self.liveness.is_none() && self.vcd.is_none() {
            self.kernel.run_parallel(&mut self.state, n, self.threads);
            return;
        }
        for _ in 0..n {
            if self.liveness.is_some() && self.state.live() == 0 {
                break;
            }
            self.step();
        }
    }

    /// Advances `n` cycles, invoking `stimulus` before each cycle so
    /// every lane can be driven independently mid-run (the batched
    /// analog of a per-cycle testbench loop). The poker addresses
    /// physical lane columns and no halt probing happens mid-run, so
    /// combine with [`watch_halt`](Self::watch_halt) only before the
    /// first compaction (or use [`step`](Self::step) /
    /// [`run_until_halt`](Self::run_until_halt) instead). With lane
    /// waveform capture enabled the run is driven cycle-by-cycle so
    /// every cycle gets sampled, but halt probing still happens only at
    /// the end — enabling capture never changes which physical columns
    /// the stimulus closure drives.
    pub fn run_with_stimulus(&mut self, n: u64, mut stimulus: impl FnMut(u64, &mut LanePoker<'_>)) {
        if self.vcd.is_none() {
            self.kernel
                .run_with_stimulus(&mut self.state, n, self.threads, stimulus);
            self.probe_halts();
            return;
        }
        for _ in 0..n {
            self.kernel
                .run_with_stimulus(&mut self.state, 1, self.threads, &mut stimulus);
            self.sample_vcd();
        }
        self.probe_halts();
    }

    /// Enables lane-liveness early exit: after every cycle, any live lane
    /// whose `signal` probe reads nonzero is recorded as finished at the
    /// current cycle and compacted out of the evaluated lane window.
    ///
    /// Re-arming with a different signal mid-run only switches the
    /// watched probe: the lane permutation, live window, and completion
    /// records all carry over (use [`reset`](Self::reset) to start
    /// fresh).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSignal`] if `signal` names neither a probe nor an
    /// output port.
    pub fn watch_halt(&mut self, signal: &str) -> Result<(), UnknownSignal> {
        let slot = self
            .plan
            .signal_slot(signal)
            .ok_or_else(|| UnknownSignal(signal.to_string()))?;
        match &mut self.liveness {
            // Keep the lane maps and live window: resetting them to
            // identity under already-permuted columns would corrupt
            // every lane-indexed read.
            Some(lv) => lv.halt_slot = slot,
            None => self.liveness = Some(LaneLiveness::new(slot, self.state.lanes())),
        }
        Ok(())
    }

    /// Re-evaluates the combinational network on the live lanes without
    /// committing registers or advancing the cycle counter: afterwards
    /// every live lane's wire slots reflect its *current* registers and
    /// inputs. The next [`step`](Self::step) recomputes the same wires
    /// from the same registers, so this never changes where a run ends
    /// up — but note the refreshed wires are one commit *ahead* of what
    /// the last step left in the slots, which is exactly why no halt
    /// probing happens here: pair with
    /// [`probe_halt_lane`](Self::probe_halt_lane) on the specific lanes
    /// whose halt should be (re)checked between cycles — e.g. freshly
    /// admitted testbenches whose halt output is combinationally high at
    /// power-on.
    pub fn eval_comb(&mut self) {
        if self.liveness.is_some() && self.state.live() == 0 {
            return;
        }
        self.kernel.eval_comb(&mut self.state);
    }

    /// Checks ONE lane's halt probe against the current slot values,
    /// between cycles: if the probe reads nonzero (and the lane is live),
    /// the lane is recorded as finished at the current cycle and
    /// compacted out of the evaluated window — without spending a cycle
    /// on it. Returns whether the lane is (now) halted. Combine with
    /// [`eval_comb`](Self::eval_comb) so the probe reflects the lane's
    /// current registers and inputs rather than the previous step's.
    ///
    /// # Panics
    ///
    /// Panics unless [`watch_halt`](Self::watch_halt) was enabled.
    pub fn probe_halt_lane(&mut self, lane: usize) -> bool {
        let lv = self
            .liveness
            .as_mut()
            .expect("probe_halt_lane needs a watch_halt signal");
        if lv.done_at[lane].is_some() {
            return true;
        }
        let phys = lv.phys_of[lane];
        if phys >= self.state.live() || self.state.slot(lv.halt_slot, phys) == 0 {
            return false;
        }
        lv.done_at[lane] = Some(self.state.cycle());
        let last = self.state.live() - 1;
        self.state.swap_lanes(phys, last);
        lv.swap_phys(phys, last);
        self.state.set_live(last);
        true
    }

    /// Steps until every lane has halted or `max_cycles` have elapsed,
    /// whichever comes first. Returns the number of cycles stepped.
    ///
    /// # Panics
    ///
    /// Panics unless [`watch_halt`](Self::watch_halt) was enabled.
    pub fn run_until_halt(&mut self, max_cycles: u64) -> u64 {
        assert!(
            self.liveness.is_some(),
            "run_until_halt needs a watch_halt signal"
        );
        let mut stepped = 0;
        while stepped < max_cycles && self.state.live() > 0 {
            self.step();
            stepped += 1;
        }
        stepped
    }

    /// Whether a lane's halt condition has fired (always `false` without
    /// a halt watch). Refers to the lane's *current* occupant: recycling
    /// the lane with [`reset_lane`](Self::reset_lane) /
    /// [`admit`](Self::admit) clears the record.
    pub fn halted(&self, lane: usize) -> bool {
        self.completion_cycle(lane).is_some()
    }

    /// The cycle at which a lane halted, or `None` while it is still
    /// running (or without a halt watch). Completion records belong to
    /// lane *occupants*, not lanes: after [`reset_lane`](Self::reset_lane)
    /// this reports `None` until the new testbench halts — it never
    /// leaks the previous occupant's completion. Durable results must be
    /// keyed by a job id harvested before recycling (see `rteaal-sched`).
    pub fn completion_cycle(&self, lane: usize) -> Option<u64> {
        self.liveness.as_ref().and_then(|lv| lv.done_at[lane])
    }

    /// Number of lanes still being evaluated (all of them without a halt
    /// watch).
    pub fn live_lanes(&self) -> usize {
        self.state.live()
    }

    /// Probes the halt row and compacts finished lanes out of the
    /// evaluated window, keeping the original↔physical lane maps in
    /// sync.
    fn probe_halts(&mut self) {
        let Some(lv) = &mut self.liveness else {
            return;
        };
        let cycle = self.state.cycle();
        let mut phys = 0;
        while phys < self.state.live() {
            if self.state.slot(lv.halt_slot, phys) == 0 {
                phys += 1;
                continue;
            }
            let last = self.state.live() - 1;
            lv.done_at[lv.orig_of[phys]] = Some(cycle);
            self.state.swap_lanes(phys, last);
            lv.swap_phys(phys, last);
            self.state.set_live(last);
            // The swapped-in occupant of `phys` still needs probing, so
            // don't advance.
        }
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.state.cycle()
    }

    /// Resets every lane to the power-on state (reviving halted lanes
    /// and clearing completion records).
    pub fn reset(&mut self) {
        self.state.reset();
        if let Some(lv) = &mut self.liveness {
            *lv = LaneLiveness::new(lv.halt_slot, self.state.lanes());
        }
    }

    /// Resets ONE lane to the power-on state, leaving every other lane's
    /// state, the cycle counter, and the halt watch untouched — the
    /// enabling primitive for continuous batching (recycling a drained
    /// lane under a new testbench mid-run, see `rteaal-sched`).
    ///
    /// If the lane had halted, it is revived back into the evaluated
    /// window and its completion record is cleared: after this call
    /// [`halted`](Self::halted) / [`completion_cycle`](Self::completion_cycle)
    /// refer to the lane's *new* occupant and report "still running" —
    /// never the previous testbench's completion. Callers that need the
    /// old result must harvest it first (keyed by their own job id, as
    /// the scheduler does).
    pub fn reset_lane(&mut self, lane: usize) {
        let mut phys = self.phys(lane);
        if let Some(lv) = &mut self.liveness {
            lv.done_at[lane] = None;
            let live = self.state.live();
            if phys >= live {
                // Swap the frozen column back to the live frontier and
                // grow the window over it.
                self.state.swap_lanes(phys, live);
                lv.swap_phys(phys, live);
                self.state.set_live(live + 1);
                phys = live;
            }
        }
        self.state.reset_lane(phys);
        // Record the reset-to-power-on transition at the admission
        // cycle, so a recycled lane's capture doesn't show the previous
        // occupant's frozen values bleeding into the new job (a no-op
        // when another lane is being watched: nothing changed there).
        self.sample_vcd();
    }

    /// Admits a fresh testbench into a lane: per-lane power-on reset
    /// (reviving the lane if it had halted) followed by the given input
    /// bindings, which hold until re-poked. The batch keeps running from
    /// its current cycle — other lanes are unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSignal`] on the first binding that names no
    /// input port (the lane is still reset, remaining bindings are not
    /// applied).
    pub fn admit<'a>(
        &mut self,
        lane: usize,
        inputs: impl IntoIterator<Item = (&'a str, u64)>,
    ) -> Result<(), UnknownSignal> {
        self.reset_lane(lane);
        for (name, value) in inputs {
            self.poke(name, lane, value)?;
        }
        Ok(())
    }

    /// Forcibly freezes a lane out of the evaluated window, as if its
    /// halt condition had fired this cycle (budget eviction: a runaway
    /// testbench stops consuming compute). Recorded as completed at the
    /// current cycle; a no-op if the lane has already halted.
    ///
    /// # Panics
    ///
    /// Panics unless [`watch_halt`](Self::watch_halt) was enabled.
    pub fn retire_lane(&mut self, lane: usize) {
        let cycle = self.state.cycle();
        let lv = self
            .liveness
            .as_mut()
            .expect("retire_lane needs a watch_halt signal");
        if lv.done_at[lane].is_some() {
            return;
        }
        lv.done_at[lane] = Some(cycle);
        let phys = lv.phys_of[lane];
        let last = self.state.live() - 1;
        self.state.swap_lanes(phys, last);
        lv.swap_phys(phys, last);
        self.state.set_live(last);
    }

    /// Writes a probed signal's state directly on one lane, between
    /// cycles — the per-lane DMI analog of
    /// [`DebugModule::poke_reg`](crate::DebugModule::poke_reg). Like the
    /// scalar DMI, the raw value is written unchanged (no
    /// canonicalization), so architectural pre-loading matches a scalar
    /// run poking the same slot.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSignal`] if the name is not probed.
    pub fn poke_state(&mut self, name: &str, lane: usize, value: u64) -> Result<(), UnknownSignal> {
        let &(slot, _) = self
            .probe_index
            .get(name)
            .ok_or_else(|| UnknownSignal(name.to_string()))?;
        let phys = self.phys(lane);
        self.state.poke_slot(slot, phys, value);
        Ok(())
    }

    /// Whether `name` is a probed signal — the namespace
    /// [`poke_state`](Self::poke_state) accepts. Lets callers validate a
    /// testbench's bindings before mutating any lane (see the
    /// `rteaal-sched` admission path).
    pub fn probed(&self, name: &str) -> bool {
        self.probe_index.contains_key(name)
    }

    /// Enables VCD waveform capture of ONE user-facing lane, over all
    /// probed signals (the ROADMAP "batched waveforms" path: the scalar
    /// change-detecting writer, addressed through the lane permutation,
    /// so compaction never changes which testbench is being recorded).
    /// Capture follows the lane across recycling: after
    /// [`admit`](Self::admit) the same writer keeps recording the new
    /// occupant.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn enable_lane_waveforms(&mut self, lane: usize) {
        assert!(lane < self.state.lanes(), "lane {lane} out of range");
        let writer = VcdWriter::new(&self.plan.name, &self.plan.probes);
        self.vcd = Some(LaneVcd { lane, writer });
        self.sample_vcd();
    }

    /// Finishes lane waveform capture and returns the VCD text.
    pub fn take_vcd(&mut self) -> Option<String> {
        self.vcd.take().map(|v| v.writer.finish())
    }

    /// Samples the watched lane into the VCD (after each cycle, and once
    /// at enable time).
    fn sample_vcd(&mut self) {
        let Some(v) = &mut self.vcd else {
            return;
        };
        let phys = self
            .liveness
            .as_ref()
            .map_or(v.lane, |lv| lv.phys_of[v.lane]);
        let state = &self.state;
        v.writer
            .sample(state.cycle(), |slot| state.slot(slot, phys));
    }

    /// Index of a named input port (for driving through a
    /// [`LanePoker`] inside [`run_with_stimulus`](Self::run_with_stimulus)).
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.input_index.get(name).copied()
    }

    /// The plan (OIM content) this simulation executes.
    pub fn plan(&self) -> &SimPlan {
        &self.plan
    }

    /// All probe names (sorted) — the visible signal namespace.
    pub fn signals(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.probe_index.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use crate::simulation::Simulation;
    use rteaal_kernels::{KernelConfig, KernelKind};

    const SRC: &str = "\
circuit S :
  module S :
    input clock : Clock
    input x : UInt<8>
    output out : UInt<8>
    output big : UInt<1>
    reg acc : UInt<8>, clock
    node sum = tail(add(acc, x), 1)
    acc <= sum
    out <= acc
    big <= gt(acc, UInt<8>(100))
";

    fn compiled(kind: KernelKind) -> Compiled {
        Compiler::new(KernelConfig::new(kind))
            .compile_str(SRC)
            .unwrap()
    }

    #[test]
    fn per_lane_poke_peek() {
        let c = compiled(KernelKind::Psu);
        let mut batch = BatchSimulation::new(&c, 3);
        for lane in 0..3 {
            batch.poke("x", lane, 10 * (lane as u64 + 1)).unwrap();
        }
        batch.step_cycles(4);
        for lane in 0..3 {
            assert_eq!(batch.peek("out", lane), Some(40 * (lane as u64 + 1)));
            assert_eq!(batch.peek("acc", lane), Some(40 * (lane as u64 + 1)));
        }
        assert!(batch.poke("nope", 0, 1).is_err());
        assert_eq!(batch.peek("ghost", 0), None);
        assert_eq!(batch.cycle(), 4);
    }

    #[test]
    fn lanes_match_scalar_simulations() {
        let c = compiled(KernelKind::Nu);
        const LANES: usize = 5;
        let mut batch = BatchSimulation::new(&c, LANES).with_threads(2);
        let x_idx = batch.input_index("x").unwrap();
        batch.run_with_stimulus(50, |cycle, poker| {
            for lane in 0..LANES {
                poker.set_input(x_idx, lane, cycle ^ (lane as u64) << 3);
            }
        });
        for lane in 0..LANES {
            let mut single = Simulation::new(compiled(KernelKind::Nu));
            for cycle in 0..50 {
                single.poke("x", cycle ^ (lane as u64) << 3).unwrap();
                single.step();
            }
            for name in ["out", "big", "acc"] {
                assert_eq!(
                    batch.peek(name, lane),
                    single.peek(name),
                    "lane {lane} signal {name}"
                );
            }
        }
    }

    /// A counter that raises `done` once it reaches a per-lane limit —
    /// the minimal halt-condition workload.
    const HALT_SRC: &str = "\
circuit H :
  module H :
    input clock : Clock
    input limit : UInt<8>
    output cnt : UInt<8>
    output done : UInt<1>
    reg acc : UInt<8>, clock
    acc <= tail(add(acc, UInt<8>(1)), 1)
    cnt <= acc
    done <= geq(acc, limit)
";

    #[test]
    fn early_exit_records_per_lane_completion_and_freezes_state() {
        let c = Compiler::new(KernelConfig::new(KernelKind::Psu))
            .compile_str(HALT_SRC)
            .unwrap();
        const LANES: usize = 6;
        let mut sim = BatchSimulation::new(&c, LANES);
        sim.watch_halt("done").unwrap();
        for lane in 0..LANES {
            // `done` compares the committed acc, so lane L's halt is
            // observed at cycle L + 3: acc reaches L + 2 after step
            // L + 2, and the comparison sees it one step later.
            sim.poke("limit", lane, lane as u64 + 2).unwrap();
        }
        assert_eq!(sim.live_lanes(), LANES);
        let stepped = sim.run_until_halt(100);
        assert_eq!(stepped, LANES as u64 + 2);
        assert_eq!(sim.live_lanes(), 0);
        for lane in 0..LANES {
            assert!(sim.halted(lane));
            assert_eq!(sim.completion_cycle(lane), Some(lane as u64 + 3));
            // Frozen at the halt cycle (acc committed once more during
            // the halting step).
            assert_eq!(sim.peek("cnt", lane), Some(lane as u64 + 3), "lane {lane}");
            assert_eq!(sim.peek("done", lane), Some(1));
        }
        // Fully-halted batches no-op instead of burning cycles.
        let cycle = sim.cycle();
        sim.step_cycles(50);
        assert_eq!(sim.cycle(), cycle);
        // Reset revives every lane and clears the completion records.
        sim.reset();
        assert_eq!(sim.live_lanes(), LANES);
        assert!(!sim.halted(0));
        assert_eq!(sim.completion_cycle(3), None);
    }

    #[test]
    fn early_exit_lane_indexing_is_stable_across_compaction() {
        let c = Compiler::new(KernelConfig::new(KernelKind::Nu))
            .compile_str(HALT_SRC)
            .unwrap();
        const LANES: usize = 5;
        let mut sim = BatchSimulation::new(&c, LANES);
        sim.watch_halt("done").unwrap();
        // Lane 0 halts *last*, so compaction reorders the physical
        // columns under every earlier lane.
        for lane in 0..LANES {
            let limit = (LANES - lane) as u64 + 1;
            sim.poke("limit", lane, limit).unwrap();
        }
        sim.run_until_halt(100);
        for lane in 0..LANES {
            let limit = (LANES - lane) as u64 + 1;
            assert_eq!(sim.completion_cycle(lane), Some(limit + 1), "lane {lane}");
            assert_eq!(sim.peek("cnt", lane), Some(limit + 1), "lane {lane}");
            assert_eq!(sim.peek("limit", lane), Some(limit), "lane {lane}");
        }
    }

    #[test]
    fn reset_lane_revives_and_forgets_the_previous_occupant() {
        let c = Compiler::new(KernelConfig::new(KernelKind::Psu))
            .compile_str(HALT_SRC)
            .unwrap();
        const LANES: usize = 4;
        let mut sim = BatchSimulation::new(&c, LANES);
        sim.watch_halt("done").unwrap();
        for lane in 0..LANES {
            sim.poke("limit", lane, lane as u64 + 2).unwrap();
        }
        sim.run_until_halt(100);
        assert_eq!(sim.live_lanes(), 0);
        let frozen: Vec<Option<u64>> = (0..LANES).map(|l| sim.peek("cnt", l)).collect();
        // Recycle lane 1 under a fresh, longer testbench.
        sim.admit(1, [("limit", 9u64)]).unwrap();
        assert_eq!(sim.live_lanes(), 1);
        // Stale queries must not report the previous occupant.
        assert!(!sim.halted(1));
        assert_eq!(sim.completion_cycle(1), None);
        assert_eq!(sim.peek("cnt", 1), Some(0), "power-on state");
        assert_eq!(sim.peek("limit", 1), Some(9));
        let admitted_at = sim.cycle();
        sim.run_until_halt(100);
        // The recycled lane ran its own full job length from admission.
        let local = sim.completion_cycle(1).unwrap() - admitted_at;
        assert_eq!(local, 9 + 1);
        assert_eq!(sim.peek("cnt", 1), Some(9 + 1));
        // Every other lane stayed frozen at its own halt state.
        for lane in [0usize, 2, 3] {
            assert_eq!(sim.peek("cnt", lane), frozen[lane], "lane {lane}");
            assert_eq!(sim.completion_cycle(lane), Some(lane as u64 + 3));
        }
    }

    #[test]
    fn retire_lane_evicts_a_running_lane() {
        let c = Compiler::new(KernelConfig::new(KernelKind::Psu))
            .compile_str(HALT_SRC)
            .unwrap();
        let mut sim = BatchSimulation::new(&c, 3);
        sim.watch_halt("done").unwrap();
        // Unreachable limits: nothing halts on its own.
        for lane in 0..3 {
            sim.poke("limit", lane, 200).unwrap();
        }
        sim.step_cycles(5);
        sim.retire_lane(1);
        assert_eq!(sim.live_lanes(), 2);
        assert_eq!(sim.completion_cycle(1), Some(5));
        let frozen = sim.peek("cnt", 1);
        sim.step_cycles(4);
        // Retired lane is frozen; survivors kept counting.
        assert_eq!(sim.peek("cnt", 1), frozen);
        assert_eq!(sim.peek("cnt", 0), Some(9));
        // Retiring twice is a no-op; admit revives the lane.
        sim.retire_lane(1);
        assert_eq!(sim.completion_cycle(1), Some(5));
        sim.admit(1, [("limit", 3u64)]).unwrap();
        assert_eq!(sim.live_lanes(), 3);
        let admitted_at = sim.cycle();
        sim.step_cycles(10);
        assert_eq!(sim.completion_cycle(1), Some(admitted_at + 4));
    }

    #[test]
    fn eval_comb_refreshes_wires_and_probe_halt_lane_is_selective() {
        let c = Compiler::new(KernelConfig::new(KernelKind::Psu))
            .compile_str(HALT_SRC)
            .unwrap();
        let mut sim = BatchSimulation::new(&c, 2);
        sim.watch_halt("done").unwrap();
        sim.poke("limit", 0, 0).unwrap(); // done is true of the power-on state
        sim.poke("limit", 1, 5).unwrap();
        // Before any step the done slot still holds its power-on value;
        // eval_comb computes it from the current registers and inputs.
        sim.eval_comb();
        assert_eq!(sim.peek("done", 0), Some(1));
        assert_eq!(sim.peek("done", 1), Some(0));
        // Probing is per-lane: lane 0 compacts out at cycle 0, lane 1
        // stays live and un-probed.
        assert!(sim.probe_halt_lane(0));
        assert!(!sim.probe_halt_lane(1));
        assert_eq!(sim.completion_cycle(0), Some(0));
        assert_eq!(sim.completion_cycle(1), None);
        assert_eq!(sim.live_lanes(), 1);
        // Re-probing a halted lane is a cheap no-op that stays true.
        assert!(sim.probe_halt_lane(0));
        // eval_comb between cycles is invisible to the run: lane 1 still
        // halts at its normal post-step observation cycle.
        let mut undisturbed = BatchSimulation::new(&c, 1);
        undisturbed.watch_halt("done").unwrap();
        undisturbed.poke("limit", 0, 5).unwrap();
        undisturbed.run_until_halt(100);
        while sim.live_lanes() > 0 {
            sim.eval_comb();
            sim.step();
        }
        assert_eq!(sim.completion_cycle(1), undisturbed.completion_cycle(0));
        assert_eq!(sim.peek("cnt", 1), undisturbed.peek("cnt", 0));
    }

    #[test]
    fn poke_state_is_a_per_lane_dmi() {
        let c = compiled(KernelKind::Psu);
        let mut sim = BatchSimulation::new(&c, 2);
        sim.poke_all("x", 1).unwrap();
        sim.poke_state("acc", 1, 90).unwrap();
        assert!(sim.poke_state("nope", 0, 1).is_err());
        sim.step_cycles(3);
        assert_eq!(sim.peek("out", 0), Some(3));
        assert_eq!(sim.peek("out", 1), Some(93));
    }

    #[test]
    fn lane_waveform_follows_one_lane_across_compaction() {
        let c = Compiler::new(KernelConfig::new(KernelKind::Nu))
            .compile_str(HALT_SRC)
            .unwrap();
        const LANES: usize = 3;
        let mut sim = BatchSimulation::new(&c, LANES);
        sim.watch_halt("done").unwrap();
        // Lane 2 halts last, so compaction moves its physical column.
        for lane in 0..LANES {
            sim.poke("limit", lane, 3 * (lane as u64 + 1)).unwrap();
        }
        sim.enable_lane_waveforms(2);
        sim.run_until_halt(50);
        let vcd = sim.take_vcd().unwrap();
        assert!(vcd.contains("$var"));
        assert!(vcd.contains("acc"));
        // The watched lane counts to its own limit: its last acc change
        // lands at its halt cycle, past the other lanes' halts.
        let halt = sim.completion_cycle(2).unwrap();
        assert!(
            vcd.contains(&format!("#{halt}")),
            "vcd reaches lane 2's halt"
        );
        // Scalar-equivalent content: a 1-lane batch of the same
        // testbench produces the identical VCD body.
        let mut solo = BatchSimulation::new(&c, 1);
        solo.watch_halt("done").unwrap();
        solo.poke("limit", 0, 3 * LANES as u64).unwrap();
        solo.enable_lane_waveforms(0);
        solo.run_until_halt(50);
        let solo_vcd = solo.take_vcd().unwrap();
        assert_eq!(vcd, solo_vcd, "compaction must not leak into the capture");
        assert_eq!(sim.take_vcd(), None, "take_vcd drains the writer");
    }

    #[test]
    fn watch_halt_rejects_unknown_signals() {
        let c = compiled(KernelKind::Psu);
        let mut sim = BatchSimulation::new(&c, 2);
        assert!(sim.watch_halt("no_such_signal").is_err());
        // Output ports resolve even when not probed by name.
        assert!(sim.watch_halt("big").is_ok());
    }

    #[test]
    fn partitioned_simulation_matches_unpartitioned_lifecycle() {
        let c = Compiler::new(KernelConfig::new(KernelKind::Psu))
            .compile_str(HALT_SRC)
            .unwrap();
        const LANES: usize = 5;
        for partitioning in [
            Partitioning::Fixed(2),
            Partitioning::Fixed(4),
            Partitioning::Auto,
        ] {
            let mut flat = BatchSimulation::new(&c, LANES);
            let mut part = BatchSimulation::new_with(&c, LANES, partitioning);
            if let Partitioning::Fixed(p) = partitioning {
                assert_eq!(part.partitions(), p);
                assert!(part.replication_factor() >= 1.0);
            }
            for sim in [&mut flat, &mut part] {
                sim.watch_halt("done").unwrap();
                for lane in 0..LANES {
                    sim.poke("limit", lane, lane as u64 + 2).unwrap();
                }
            }
            flat.run_until_halt(100);
            part.run_until_halt(100);
            for lane in 0..LANES {
                assert_eq!(
                    part.completion_cycle(lane),
                    flat.completion_cycle(lane),
                    "{partitioning:?} lane {lane}"
                );
                assert_eq!(part.peek("cnt", lane), flat.peek("cnt", lane));
            }
            // Recycle a lane mid-run in both and keep going.
            flat.admit(2, [("limit", 7u64)]).unwrap();
            part.admit(2, [("limit", 7u64)]).unwrap();
            flat.run_until_halt(100);
            part.run_until_halt(100);
            for lane in 0..LANES {
                assert_eq!(
                    part.completion_cycle(lane),
                    flat.completion_cycle(lane),
                    "{partitioning:?} post-admit lane {lane}"
                );
                assert_eq!(part.peek("cnt", lane), flat.peek("cnt", lane));
            }
        }
    }

    #[test]
    fn poke_all_and_reset() {
        let c = compiled(KernelKind::Ti);
        let mut batch = BatchSimulation::new(&c, 4).with_threads(4);
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        assert_eq!(batch.threads(), 4.min(cores));
        assert_eq!(batch.lanes(), 4);
        batch.poke_all("x", 5).unwrap();
        batch.step_cycles(3);
        for lane in 0..4 {
            assert_eq!(batch.peek("out", lane), Some(15));
        }
        batch.reset();
        assert_eq!(batch.cycle(), 0);
        assert_eq!(batch.peek("acc", 2), Some(0));
        assert!(batch.signals().contains(&"acc"));
        assert!(batch.plan().stats.layers >= 1);
    }
}
