//! Open-loop traffic generation for serving experiments.
//!
//! A *closed-loop* driver (submit, wait, repeat) hides queueing: a slow
//! server slows the driver down, so measured latency flattens exactly
//! when the system is struggling — the coordinated-omission trap. An
//! *open-loop* driver fixes arrivals in advance (here: Poisson, the
//! memoryless arrival process of independent clients) and measures each
//! job's latency **from its scheduled arrival time**, so queueing delay
//! that a struggling fleet builds up is charged to the jobs that
//! suffered it.
//!
//! The pieces:
//!
//! - [`SplitMix64`] — a tiny deterministic RNG (the vendored `rand` has
//!   no distributions; we only need uniform draws and `-ln(u)/λ`
//!   exponentials, which is three lines).
//! - [`ArrivalPlan`] — Poisson arrival offsets with optional *bursty
//!   phases* (rate multipliers over sub-intervals, the SPEC-style mixed
//!   load shape), plus a per-arrival draw from a mixed design/length
//!   corpus.
//! - [`quantiles`] / [`LatencyReport`] — p50/p99/p999 over recorded
//!   latencies, nearest-rank on the sorted sample.

use std::time::Duration;

/// `splitmix64`: 64 bits of well-mixed state per draw, seedable,
/// `Copy`, and three lines — exactly enough RNG for arrival times and
/// corpus draws, with no dependency.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded deterministically.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `(0, 1]` — open at zero so `ln` is always finite.
    pub fn next_unit(&mut self) -> f64 {
        // 53 mantissa bits, then nudge off exact zero.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        if u == 0.0 {
            f64::MIN_POSITIVE
        } else {
            u
        }
    }

    /// Uniform in `0..bound` (`bound` ≥ 1).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// An exponential inter-arrival gap for rate `per_sec` (the inverse
    /// CDF: `-ln(u)/λ`). Poisson arrivals are gaps of exactly this
    /// shape.
    pub fn next_exp_gap(&mut self, per_sec: f64) -> Duration {
        let gap = -self.next_unit().ln() / per_sec.max(1e-9);
        Duration::from_secs_f64(gap.min(10.0)) // clamp pathological tails
    }
}

/// One phase of an open-loop run: a span of arrivals at a rate
/// multiplier. `1.0` is the base rate; a burst phase might run at
/// `3.0`.
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    /// How many arrivals this phase contributes.
    pub arrivals: usize,
    /// Rate multiplier over the plan's base rate.
    pub rate_multiplier: f64,
}

/// One scheduled arrival: when (offset from the run's start) and what
/// (an index into the caller's job corpus).
#[derive(Debug, Clone, Copy)]
pub struct Arrival {
    /// Offset from the run's start at which the job is *due*.
    pub at: Duration,
    /// Index into the caller's corpus of job variants.
    pub corpus_index: usize,
}

/// A fully materialized open-loop schedule: Poisson arrivals through
/// bursty phases, each tagged with a corpus draw. Deterministic in the
/// seed, so two legs of an experiment (healthy vs fault) can replay
/// the *identical* offered load.
#[derive(Debug, Clone)]
pub struct ArrivalPlan {
    /// The arrivals, in nondecreasing `at` order.
    pub arrivals: Vec<Arrival>,
}

impl ArrivalPlan {
    /// Draws a Poisson schedule: `phases` in order, each contributing
    /// its arrivals at `base_rate_per_sec × rate_multiplier`, with
    /// corpus indices uniform in `0..corpus_len`.
    pub fn poisson(seed: u64, base_rate_per_sec: f64, corpus_len: usize, phases: &[Phase]) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut at = Duration::ZERO;
        let mut arrivals = Vec::new();
        for phase in phases {
            let rate = base_rate_per_sec * phase.rate_multiplier;
            for _ in 0..phase.arrivals {
                at += rng.next_exp_gap(rate);
                arrivals.push(Arrival {
                    at,
                    corpus_index: rng.next_below(corpus_len as u64) as usize,
                });
            }
        }
        ArrivalPlan { arrivals }
    }

    /// Total arrivals across all phases.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The scheduled span (last arrival's offset).
    pub fn span(&self) -> Duration {
        self.arrivals.last().map_or(Duration::ZERO, |a| a.at)
    }
}

/// Nearest-rank quantile over an *unsorted* sample (sorts a copy).
/// `q` in `[0, 1]`; an empty sample reports zero.
pub fn quantiles(sample: &[Duration], qs: &[f64]) -> Vec<Duration> {
    if sample.is_empty() {
        return qs.iter().map(|_| Duration::ZERO).collect();
    }
    let mut sorted = sample.to_vec();
    sorted.sort_unstable();
    qs.iter()
        .map(|q| {
            // Canonical nearest-rank: ⌈q·n⌉, 1-indexed.
            let rank = (sorted.len() as f64 * q.clamp(0.0, 1.0)).ceil() as usize;
            sorted[rank.max(1).min(sorted.len()) - 1]
        })
        .collect()
}

/// The tail-latency summary an open-loop leg reports.
#[derive(Debug, Clone, Copy)]
pub struct LatencyReport {
    /// Median latency.
    pub p50: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// 99.9th percentile.
    pub p999: Duration,
    /// Worst observed.
    pub max: Duration,
}

impl LatencyReport {
    /// Summarizes a latency sample (empty sample = all zeros).
    pub fn from_sample(sample: &[Duration]) -> Self {
        let qs = quantiles(sample, &[0.5, 0.99, 0.999, 1.0]);
        LatencyReport {
            p50: qs[0],
            p99: qs[1],
            p999: qs[2],
            max: qs[3],
        }
    }

    /// `p50/p99/p999/max` in milliseconds, for table rows.
    pub fn row(&self) -> String {
        format!(
            "{:>7.2} {:>8.2} {:>8.2} {:>8.2}",
            self.p50.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.p999.as_secs_f64() * 1e3,
            self.max.as_secs_f64() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_unit_draws_are_in_range() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let u = rng.next_unit();
            assert!(u > 0.0 && u <= 1.0, "{u}");
            assert!(rng.next_below(10) < 10);
        }
    }

    #[test]
    fn poisson_plan_is_deterministic_monotonic_and_rate_scaled() {
        let phases = [
            Phase {
                arrivals: 200,
                rate_multiplier: 1.0,
            },
            Phase {
                arrivals: 200,
                rate_multiplier: 4.0,
            },
        ];
        let plan = ArrivalPlan::poisson(0xfeed, 1000.0, 5, &phases);
        let again = ArrivalPlan::poisson(0xfeed, 1000.0, 5, &phases);
        assert_eq!(plan.len(), 400);
        for (a, b) in plan.arrivals.iter().zip(&again.arrivals) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.corpus_index, b.corpus_index);
            assert!(a.corpus_index < 5);
        }
        for pair in plan.arrivals.windows(2) {
            assert!(pair[0].at <= pair[1].at, "arrivals must be sorted");
        }
        // The burst phase packs its arrivals ~4x tighter (generously
        // bounded: 400 draws is a small sample).
        let base_span = plan.arrivals[199].at;
        let burst_span = plan.span() - base_span;
        assert!(
            burst_span < base_span,
            "burst phase must be denser: base {base_span:?} vs burst {burst_span:?}"
        );
    }

    #[test]
    fn quantiles_hit_known_ranks() {
        let ms = |n: u64| Duration::from_millis(n);
        // 1..=100 ms, shuffled order doesn't matter.
        let sample: Vec<Duration> = (1..=100).rev().map(ms).collect();
        let report = LatencyReport::from_sample(&sample);
        assert_eq!(report.p50, ms(50));
        assert_eq!(report.p99, ms(99));
        assert_eq!(report.p999, ms(100));
        assert_eq!(report.max, ms(100));
        let empty = LatencyReport::from_sample(&[]);
        assert_eq!(empty.p50, Duration::ZERO);
        assert_eq!(empty.max, Duration::ZERO);
    }
}
