//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p rteaal-bench --release --bin tables -- all
//! cargo run -p rteaal-bench --release --bin tables -- table5 fig16
//! cargo run -p rteaal-bench --release --bin tables -- all --full
//! ```

use rteaal_bench::{run_experiment, Ctx, ALL_EXPERIMENTS};

// Peak-memory numbers in Figures 8/15 and Table 7 are *measured* through
// this counting allocator.
#[global_allocator]
static ALLOC: rteaal_perfmodel::memtrack::CountingAlloc = rteaal_perfmodel::memtrack::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden mode: the `shard` experiment re-launches this binary as
    // real serve processes for its loopback fleet.
    if args.first().map(String::as_str) == Some("shard-server") {
        rteaal_bench::experiments::shard_server_process();
        return;
    }
    let full = args.iter().any(|a| a == "--full");
    let ctx = if full { Ctx::full() } else { Ctx::quick() };
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.contains(&"all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        ids
    };
    for id in ids {
        match run_experiment(id, &ctx) {
            Some(rows) => {
                for row in rows {
                    println!("{row}");
                }
                println!();
            }
            None => {
                eprintln!("unknown experiment `{id}`; known: {ALL_EXPERIMENTS:?}");
                std::process::exit(2);
            }
        }
    }
}
