//! # rteaal-bench
//!
//! The benchmark harness: regenerates every table and figure of the
//! paper's evaluation (§7) from the workspace's own simulators and
//! machine models.
//!
//! - [`experiments`]: one function per table/figure, returning formatted
//!   rows; consumed by the `tables` binary, the shape-check integration
//!   tests, and `EXPERIMENTS.md`.
//! - [`openloop`]: the open-loop (Poisson, bursty, mixed-corpus)
//!   traffic generator and tail-latency reporting used by the serving
//!   experiments.
//! - `src/bin/tables.rs`: `cargo run -p rteaal-bench --release --bin
//!   tables -- <id|all> [--full]`.
//! - `benches/`: Criterion micro-benchmarks for the wall-clock-sensitive
//!   subset (kernel throughput, scaling, format/pass ablations).

pub mod experiments;
pub mod openloop;

pub use experiments::{run_experiment, Ctx, ALL_EXPERIMENTS};
