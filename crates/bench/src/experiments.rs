//! Experiment implementations: one function per paper table/figure.
//!
//! Each function returns formatted rows (so the `tables` binary, the
//! integration tests, and EXPERIMENTS.md all consume the same code path).
//! Absolute numbers will not match the paper (our substrate is a model,
//! not the authors' testbed); the *shape* — who wins, by what rough
//! factor, where crossovers fall — is the reproduction target.

use rteaal_baselines::{EssentLike, VerilatorLike};
use rteaal_designs::{rocket, small_boom, ChipConfig, Workload};
use rteaal_dfg::graph::Graph;
use rteaal_dfg::level::levelize;
use rteaal_dfg::passes::{optimize, PassOptions};
use rteaal_dfg::plan::{plan, SimPlan};
use rteaal_firrtl::lower::lower_typed;
use rteaal_kernels::{codegen, Kernel, KernelConfig, KernelKind, OptLevel, ALL_KERNELS};
use rteaal_perfmodel::topdown::{analyze, TopDown};
use rteaal_perfmodel::Machine;

/// Run-size knobs. `quick()` finishes the full suite in minutes on a
/// laptop; `full()` pushes core counts and cycle counts up.
#[derive(Debug, Clone, Copy)]
pub struct Ctx {
    /// Design scale relative to the paper's RTL.
    pub scale: f64,
    /// Profiled (cache-simulated) cycles per measurement.
    pub profile_cycles: u64,
    /// Core counts used for scaling sweeps.
    pub max_cores: usize,
}

impl Ctx {
    /// Laptop-quick settings.
    pub fn quick() -> Self {
        Ctx {
            scale: 0.03,
            profile_cycles: 30,
            max_cores: 8,
        }
    }

    /// Heavier settings (slower, smoother curves).
    pub fn full() -> Self {
        Ctx {
            scale: 0.12,
            profile_cycles: 60,
            max_cores: 24,
        }
    }

    fn core_sweep(&self) -> Vec<usize> {
        [1usize, 2, 4, 8, 12, 16, 20, 24]
            .into_iter()
            .filter(|&c| c <= self.max_cores)
            .collect()
    }
}

/// Builds the optimized graph of a circuit.
pub fn graph_of(circuit: &rteaal_firrtl::Circuit) -> Graph {
    let g =
        rteaal_dfg::build(&lower_typed(circuit).expect("designs lower")).expect("designs build");
    optimize(&g, &PassOptions::default()).0
}

/// Graph without optimization (for Table 1's raw counts).
pub fn raw_graph_of(circuit: &rteaal_firrtl::Circuit) -> Graph {
    rteaal_dfg::build(&lower_typed(circuit).expect("designs lower")).expect("designs build")
}

fn plan_of(circuit: &rteaal_firrtl::Circuit) -> SimPlan {
    plan(&graph_of(circuit))
}

/// Profiles `cycles` of a kernel on a machine and scales the modeled time
/// to `full_cycles`.
pub fn kernel_run(
    plan: &SimPlan,
    cfg: KernelConfig,
    machine: &Machine,
    cycles: u64,
    full_cycles: u64,
) -> (TopDown, rteaal_perfmodel::topdown::ExecProfile) {
    let mut kernel = Kernel::compile(plan, cfg);
    let mut mem = machine.mem_sim();
    let profile = kernel.run_profiled(&mut mem, cycles);
    let mut td = analyze(&profile, machine);
    td.seconds *= full_cycles as f64 / cycles as f64;
    (td, profile)
}

/// Profiles the Verilator baseline.
pub fn verilator_run(
    graph: &Graph,
    machine: &Machine,
    cycles: u64,
    full_cycles: u64,
    opt: OptLevel,
) -> (TopDown, VerilatorLike) {
    let mut v = VerilatorLike::compile(graph, opt);
    let mut mem = machine.mem_sim();
    let profile = v.run_profiled(&mut mem, cycles);
    let mut td = analyze(&profile, machine);
    td.seconds *= full_cycles as f64 / cycles as f64;
    (td, v)
}

/// Profiles the ESSENT baseline.
pub fn essent_run(
    graph: &Graph,
    machine: &Machine,
    cycles: u64,
    full_cycles: u64,
    opt: OptLevel,
) -> (TopDown, EssentLike) {
    let mut e = EssentLike::compile(graph, opt);
    let mut mem = machine.mem_sim();
    let profile = e.run_profiled(&mut mem, cycles);
    let mut td = analyze(&profile, machine);
    td.seconds *= full_cycles as f64 / cycles as f64;
    (td, e)
}

fn header(title: &str) -> Vec<String> {
    vec![format!("== {title} =="), String::new()]
}

/// Table 1: effectual vs identity operations.
pub fn table1(ctx: &Ctx) -> Vec<String> {
    let mut out = header("Table 1: required identity operations (before elision)");
    out.push(format!(
        "{:<12} {:>14} {:>16} {:>8}",
        "design", "effectual ops", "identity ops", "ratio"
    ));
    for (name, circuit) in [
        (
            "rocket-1c",
            rocket(ChipConfig::new(1).with_scale(ctx.scale)),
        ),
        (
            "small-1c",
            small_boom(ChipConfig::new(1).with_scale(ctx.scale)),
        ),
        (
            "rocket-8c",
            rocket(ChipConfig::new(8).with_scale(ctx.scale)),
        ),
        (
            "small-8c",
            small_boom(ChipConfig::new(8).with_scale(ctx.scale)),
        ),
    ] {
        let lv = levelize(&raw_graph_of(&circuit));
        let (e, i) = (lv.effectual_ops(), lv.identities.total());
        out.push(format!(
            "{name:<12} {e:>14} {i:>16} {:>8.1}x",
            i as f64 / e.max(1) as f64
        ));
    }
    out
}

/// Figure 7: top-down breakdown for Verilator vs ESSENT.
pub fn fig7(ctx: &Ctx) -> Vec<String> {
    let mut out = header("Figure 7: top-down breakdown, Verilator vs ESSENT (Graviton 4)");
    let machine = Machine::aws_graviton4();
    out.push(format!(
        "{:<12} {:>22} {:>22}",
        "design", "Verilator FE/BS/other %", "ESSENT FE/BS/other %"
    ));
    for cores in ctx.core_sweep().into_iter().filter(|&c| c <= 12) {
        for (tag, circuit) in [
            (
                format!("rocket-{cores}"),
                rocket(ChipConfig::new(cores).with_scale(ctx.scale)),
            ),
            (
                format!("small-{cores}"),
                small_boom(ChipConfig::new(cores).with_scale(ctx.scale)),
            ),
        ] {
            let g = graph_of(&circuit);
            let (v, _) = verilator_run(&g, &machine, ctx.profile_cycles, 1, OptLevel::Full);
            let (e, _) = essent_run(&g, &machine, ctx.profile_cycles, 1, OptLevel::Full);
            out.push(format!(
                "{tag:<12} {:>7.1}/{:>4.1}/{:>5.1}   {:>7.1}/{:>4.1}/{:>5.1}",
                v.frontend_bound * 100.0,
                v.bad_speculation * 100.0,
                v.others() * 100.0,
                e.frontend_bound * 100.0,
                e.bad_speculation * 100.0,
                e.others() * 100.0,
            ));
        }
    }
    out.push(String::new());
    out.push("shape check: ESSENT frontend+badspec <= Verilator's on every row".into());
    out
}

/// Figure 8: compile time and peak memory, Verilator vs ESSENT.
pub fn fig8(ctx: &Ctx) -> Vec<String> {
    let mut out = header("Figure 8: compilation cost, Verilator vs ESSENT (measured)");
    out.push(format!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "design", "V time (ms)", "E time (ms)", "V peak (MB)", "E peak (MB)"
    ));
    for cores in ctx.core_sweep().into_iter().filter(|&c| c <= 12) {
        let circuit = rocket(ChipConfig::new(cores).with_scale(ctx.scale));
        let g = raw_graph_of(&circuit);
        let v = VerilatorLike::compile(&g, OptLevel::Full);
        let e = EssentLike::compile(&g, OptLevel::Full);
        let (vr, er) = (v.compile_report(), e.compile_report());
        out.push(format!(
            "rocket-{cores:<5} {:>12.2} {:>12.2} {:>14} {:>14}",
            vr.seconds * 1e3,
            er.seconds * 1e3,
            mb_or_na(vr.peak_bytes),
            mb_or_na(er.peak_bytes),
        ));
    }
    out.push(String::new());
    out.push("shape check: ESSENT compile time grows faster than Verilator's".into());
    out
}

fn mb_or_na(bytes: usize) -> String {
    if bytes == 0 {
        "n/a*".to_string() // counting allocator not installed
    } else {
        format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
    }
}

/// Table 3: simulation cycles per design.
pub fn table3(_ctx: &Ctx) -> Vec<String> {
    let mut out = header("Table 3: simulation cycles (K)");
    out.push(format!("{:<12} {:>12}", "design", "cycles (K)"));
    for (name, k) in rteaal_designs::workload::TABLE3_KCYCLES {
        out.push(format!("{name:<12} {k:>12}"));
    }
    out
}

/// Table 4: kernel binary size.
pub fn table4(ctx: &Ctx) -> Vec<String> {
    let mut out = header("Table 4: kernel code footprint, 8-core RocketChip");
    let p = plan_of(&rocket(ChipConfig::new(8).with_scale(ctx.scale)));
    out.push(format!(
        "{:<8} {:>14} {:>14} {:>16}",
        "kernel", "code (KB)", "OIM data (KB)", "C++ source (KB)"
    ));
    for &kind in &ALL_KERNELS {
        let k = Kernel::compile(&p, KernelConfig::new(kind));
        let r = k.compile_report();
        let cpp = codegen::emit_cpp(&p, KernelConfig::new(kind)).len();
        out.push(format!(
            "{:<8} {:>14.1} {:>14.1} {:>16.1}",
            kind.label(),
            r.code_bytes as f64 / 1024.0,
            r.data_bytes as f64 / 1024.0,
            cpp as f64 / 1024.0,
        ));
    }
    out.push(String::new());
    out.push("shape check: code is flat RU..PSU, grows at IU, largest at SU; TI < SU".into());
    out
}

/// Figure 15: kernel compile time and peak memory.
pub fn fig15(ctx: &Ctx) -> Vec<String> {
    let mut out = header("Figure 15: kernel compile cost, 8-core RocketChip (measured)");
    let p = plan_of(&rocket(ChipConfig::new(8).with_scale(ctx.scale)));
    out.push(format!(
        "{:<8} {:>14} {:>14}",
        "kernel", "time (ms)", "peak (MB)"
    ));
    for &kind in &ALL_KERNELS {
        let k = Kernel::compile(&p, KernelConfig::new(kind));
        let r = k.compile_report();
        out.push(format!(
            "{:<8} {:>14.3} {:>14}",
            kind.label(),
            r.seconds * 1e3,
            mb_or_na(r.peak_bytes)
        ));
    }
    out
}

/// Table 5: dynamic instructions and IPC per kernel.
pub fn table5(ctx: &Ctx) -> Vec<String> {
    let mut out = header("Table 5: dynamic instructions and IPC, 8-core RocketChip on Intel Xeon");
    let p = plan_of(&rocket(ChipConfig::new(8).with_scale(ctx.scale)));
    let machine = Machine::intel_xeon();
    out.push(format!(
        "{:<8} {:>18} {:>8}",
        "kernel", "dyn instr (M/cyc*)", "IPC"
    ));
    for &kind in &ALL_KERNELS {
        let (td, profile) =
            kernel_run(&p, KernelConfig::new(kind), &machine, ctx.profile_cycles, 1);
        out.push(format!(
            "{:<8} {:>18.3} {:>8.2}",
            kind.label(),
            profile.instructions as f64 / ctx.profile_cycles as f64 / 1e6,
            td.ipc
        ));
    }
    out.push(String::new());
    out.push("shape check: instructions fall monotonically RU->TI; IPC falls for SU/TI".into());
    out
}

/// Table 6: cache profiling per kernel.
pub fn table6(ctx: &Ctx) -> Vec<String> {
    let mut out = header("Table 6: cache behavior per kernel, 8-core RocketChip on Intel Xeon");
    let p = plan_of(&rocket(ChipConfig::new(8).with_scale(ctx.scale)));
    let machine = Machine::intel_xeon();
    out.push(format!(
        "{:<8} {:>12} {:>12} {:>12} {:>10}",
        "kernel", "L1I miss", "L1D load", "L1D miss", "L1I MPKI"
    ));
    for &kind in &ALL_KERNELS {
        let (td, profile) =
            kernel_run(&p, KernelConfig::new(kind), &machine, ctx.profile_cycles, 1);
        out.push(format!(
            "{:<8} {:>12} {:>12} {:>12} {:>10.2}",
            kind.label(),
            profile.mem.l1i.misses,
            profile.mem.l1d.accesses,
            profile.mem.l1d.misses,
            td.l1i_mpki
        ));
    }
    out.push(String::new());
    out.push("shape check: L1D loads collapse and L1I misses jump between IU and SU".into());
    out
}

/// Figure 16: simulation time per kernel across machines.
pub fn fig16(ctx: &Ctx) -> Vec<String> {
    let mut out = header("Figure 16: modeled simulation time (s) per kernel, 8-core RocketChip");
    let p = plan_of(&rocket(ChipConfig::new(8).with_scale(ctx.scale)));
    let full = 540_000;
    out.push(format!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "kernel", "core", "xeon", "amd", "aws"
    ));
    let mut best: Vec<(String, f64)> = Vec::new();
    for &kind in &ALL_KERNELS {
        let mut row = format!("{:<8}", kind.label());
        for machine in Machine::all() {
            let (td, _) = kernel_run(
                &p,
                KernelConfig::new(kind),
                &machine,
                ctx.profile_cycles,
                full,
            );
            row.push_str(&format!(" {:>10.2}", td.seconds));
            if machine.id == "xeon" {
                best.push((kind.label().to_string(), td.seconds));
            }
        }
        out.push(row);
    }
    best.sort_by(|a, b| a.1.total_cmp(&b.1));
    out.push(String::new());
    out.push(format!(
        "fastest kernel on Xeon: {} (sweet spot in the middle of the spectrum)",
        best[0].0
    ));
    out
}

/// Figure 17: kernel scaling across design sizes.
pub fn fig17(ctx: &Ctx) -> Vec<String> {
    let mut out = header("Figure 17: modeled sim time (s) vs design size, Intel Xeon");
    let kinds = [
        KernelKind::Ou,
        KernelKind::Nu,
        KernelKind::Psu,
        KernelKind::Iu,
        KernelKind::Su,
        KernelKind::Ti,
    ];
    let mut head = format!("{:<8}", "design");
    for k in kinds {
        head.push_str(&format!(" {:>9}", k.label()));
    }
    out.push(head);
    let machine = Machine::intel_xeon();
    for cores in ctx.core_sweep() {
        let p = plan_of(&rocket(ChipConfig::new(cores).with_scale(ctx.scale)));
        let mut row = format!("r{cores:<7}");
        for kind in kinds {
            let (td, _) = kernel_run(
                &p,
                KernelConfig::new(kind),
                &machine,
                ctx.profile_cycles,
                540_000,
            );
            row.push_str(&format!(" {:>9.2}", td.seconds));
        }
        out.push(row);
    }
    out.push(String::new());
    out.push("shape check: TI wins small designs; PSU/NU overtake as cores grow".into());
    out
}

/// Table 7: compile cost scaling for Verilator, ESSENT, PSU.
pub fn table7(ctx: &Ctx) -> Vec<String> {
    let mut out = header("Table 7: compile cost scaling (measured)");
    out.push(format!(
        "{:<8} {:>12} {:>12} {:>12}",
        "design", "Verilator ms", "ESSENT ms", "PSU ms"
    ));
    for cores in ctx.core_sweep() {
        let circuit = rocket(ChipConfig::new(cores).with_scale(ctx.scale));
        let g = raw_graph_of(&circuit);
        let v = VerilatorLike::compile(&g, OptLevel::Full)
            .compile_report()
            .seconds;
        let e = EssentLike::compile(&g, OptLevel::Full)
            .compile_report()
            .seconds;
        let p = plan(&optimize(&g, &PassOptions::default()).0);
        let k = Kernel::compile(&p, KernelConfig::new(KernelKind::Psu))
            .compile_report()
            .seconds;
        out.push(format!(
            "r{cores:<7} {:>12.2} {:>12.2} {:>12.3}",
            v * 1e3,
            e * 1e3,
            k * 1e3
        ));
    }
    out.push(String::new());
    out.push("shape check: PSU kernel generation is near-constant; ESSENT grows fastest".into());
    out
}

/// Figures 18/19: simulation time scaling for the three simulators.
pub fn fig18_19(ctx: &Ctx, opt: OptLevel) -> Vec<String> {
    let title = match opt {
        OptLevel::Full => "Figure 18: modeled sim time (s), clang -O3 analog, Intel Xeon",
        OptLevel::None => "Figure 19: modeled sim time (s), clang -O0 analog, Intel Xeon",
    };
    let mut out = header(title);
    out.push(format!(
        "{:<8} {:>12} {:>12} {:>12}",
        "design", "Verilator", "PSU", "ESSENT"
    ));
    let machine = Machine::intel_xeon();
    for cores in ctx.core_sweep() {
        let circuit = rocket(ChipConfig::new(cores).with_scale(ctx.scale));
        let g = graph_of(&circuit);
        let p = plan(&g);
        let full = 540_000;
        let (v, _) = verilator_run(&g, &machine, ctx.profile_cycles, full, opt);
        let mut cfg = KernelConfig::new(KernelKind::Psu);
        cfg.opt = opt;
        let (k, _) = kernel_run(&p, cfg, &machine, ctx.profile_cycles, full);
        let (e, _) = essent_run(&g, &machine, ctx.profile_cycles, full, opt);
        out.push(format!(
            "r{cores:<7} {:>12.2} {:>12.2} {:>12.2}",
            v.seconds, k.seconds, e.seconds
        ));
    }
    out.push(String::new());
    out.push(match opt {
        OptLevel::Full => "shape check: ESSENT < PSU < Verilator".into(),
        OptLevel::None => "shape check: ESSENT degrades far more than PSU/Verilator".into(),
    });
    out
}

/// Figure 20: speedup over Verilator across designs and machines.
pub fn fig20(ctx: &Ctx) -> Vec<String> {
    let mut out = header("Figure 20: speedup over Verilator (best RTeAAL kernel | ESSENT)");
    out.push(format!(
        "{:<8} {:>16} {:>16} {:>16} {:>16}",
        "design", "core", "xeon", "amd", "aws"
    ));
    let kinds = [
        KernelKind::Nu,
        KernelKind::Psu,
        KernelKind::Iu,
        KernelKind::Su,
        KernelKind::Ti,
    ];
    for w in Workload::main_grid() {
        let g = graph_of(&w.circuit);
        let p = plan(&g);
        let mut row = format!("{:<8}", w.id);
        for machine in Machine::all() {
            let (v, _) = verilator_run(
                &g,
                &machine,
                ctx.profile_cycles,
                w.full_cycles,
                OptLevel::Full,
            );
            let best = kinds
                .iter()
                .map(|&k| {
                    kernel_run(
                        &p,
                        KernelConfig::new(k),
                        &machine,
                        ctx.profile_cycles,
                        w.full_cycles,
                    )
                    .0
                    .seconds
                })
                .fold(f64::INFINITY, f64::min);
            let (e, _) = essent_run(
                &g,
                &machine,
                ctx.profile_cycles,
                w.full_cycles,
                OptLevel::Full,
            );
            row.push_str(&format!(
                " {:>7.2}|{:<7.2}",
                v.seconds / best,
                v.seconds / e.seconds
            ));
        }
        out.push(row);
    }
    out.push(String::new());
    out.push("shape check: RTeAAL >= 1x vs Verilator on most rows; ESSENT usually fastest".into());
    out
}

/// Figure 21: LLC capacity sweep on 8-core SmallBOOM.
pub fn fig21(ctx: &Ctx) -> Vec<String> {
    let mut out =
        header("Figure 21: speedup over Verilator as LLC shrinks (8-core SmallBOOM, Xeon)");
    // LLC effects only appear once the straight-line code footprints
    // exceed the 2 MB L2, so this experiment runs near paper scale
    // regardless of the quick/full setting (with fewer cycles to
    // compensate).
    let circuit = small_boom(ChipConfig::new(8).with_scale(ctx.scale.max(0.8)));
    let g = graph_of(&circuit);
    let p = plan(&g);
    let cycles = 6;
    out.push(format!(
        "{:<10} {:>12} {:>12}",
        "LLC (MB)", "RTeAAL/V", "ESSENT/V"
    ));
    for mb in [10.5f64, 7.0, 3.5, 1.75, 0.875] {
        let machine = Machine::intel_xeon().with_llc_capacity((mb * 1024.0 * 1024.0) as usize);
        let (v, _) = verilator_run(&g, &machine, cycles, 1, OptLevel::Full);
        let (k, _) = kernel_run(&p, KernelConfig::new(KernelKind::Psu), &machine, cycles, 1);
        let (e, _) = essent_run(&g, &machine, cycles, 1, OptLevel::Full);
        out.push(format!(
            "{mb:<10} {:>12.2} {:>12.2}",
            v.seconds / k.seconds,
            v.seconds / e.seconds
        ));
    }
    out.push(String::new());
    out.push("shape check: RTeAAL's relative speedup grows as the LLC shrinks".into());
    out
}

/// Ablation: identity elision on/off (DESIGN.md §5). Makes Table 1's cost
/// executable: the strict cascade with materialized identity ops vs the
/// coordinate-assigned plan.
pub fn ablation_elision(ctx: &Ctx) -> Vec<String> {
    use rteaal_dfg::plan::{plan_unelided, PlanSim};
    let mut out = header("Ablation: identity elision (paper §4.3 / §6.1)");
    out.push(format!(
        "{:<12} {:>10} {:>12} {:>12} {:>12}",
        "design", "eff. ops", "identities", "ops/cycle", "slowdown"
    ));
    for (name, circuit) in [
        ("rocket-1", rocket(ChipConfig::new(1).with_scale(ctx.scale))),
        (
            "small-1",
            small_boom(ChipConfig::new(1).with_scale(ctx.scale)),
        ),
    ] {
        let g = graph_of(&circuit);
        let elided = plan(&g);
        let unelided = plan_unelided(&g);
        // Wall-clock ratio of the two plan interpreters.
        let time = |p: &rteaal_dfg::SimPlan| {
            let mut sim = PlanSim::new(p);
            let t = std::time::Instant::now();
            for _ in 0..200 {
                sim.step();
            }
            t.elapsed().as_secs_f64()
        };
        let slowdown = time(&unelided) / time(&elided).max(1e-9);
        out.push(format!(
            "{name:<12} {:>10} {:>12} {:>12} {:>11.2}x",
            elided.stats.effectual_ops,
            unelided.stats.identity_ops,
            unelided.total_ops(),
            slowdown
        ));
    }
    out.push(String::new());
    out.push("shape check: eliding identities removes the majority of per-cycle work".into());
    out
}

/// Ablation: OIM storage format (Figure 12 a/b/c) packed sizes.
pub fn ablation_format(ctx: &Ctx) -> Vec<String> {
    use rteaal_tensor::oim::{OimOptimized, OimSwizzled, OimUnoptimized};
    let mut out = header("Ablation: OIM format compression (Figure 12)");
    out.push(format!(
        "{:<12} {:>16} {:>16} {:>16}",
        "design", "(a) packed KB", "(b) packed KB", "(c) packed KB"
    ));
    for (name, circuit) in [
        ("rocket-1", rocket(ChipConfig::new(1).with_scale(ctx.scale))),
        ("rocket-8", rocket(ChipConfig::new(8).with_scale(ctx.scale))),
    ] {
        let p = plan(&graph_of(&circuit));
        let a = OimUnoptimized::from_plan(&p).packed_bytes();
        let b = OimOptimized::from_plan(&p).packed_bytes();
        let c = OimSwizzled::from_plan(&p).packed_bytes();
        out.push(format!(
            "{name:<12} {:>16.1} {:>16.1} {:>16.1}",
            a as f64 / 1024.0,
            b as f64 / 1024.0,
            c as f64 / 1024.0
        ));
    }
    out.push(String::new());
    out.push("shape check: eliminating one-hot/mask payloads shrinks (a) -> (b)".into());
    out
}

/// Batched multi-stimulus throughput: wall-clock lane-cycles/second as
/// batch size (stimulus lanes) and worker threads sweep — the two
/// scaling axes the batched engine adds on top of the paper's
/// single-stimulus evaluation.
pub fn batch_throughput(ctx: &Ctx) -> Vec<String> {
    use rteaal_kernels::{BatchKernel, BatchLiState};
    let mut out =
        header("Batch: lane-cycles/second, batch size x threads (2-core RocketChip, PSU)");
    let circuit = rocket(ChipConfig::new(2).with_scale(ctx.scale.max(0.05)));
    let p = plan_of(&circuit);
    let kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Psu));
    let cycles = 200u64;
    let thread_sweep = [1usize, 2, 4, 8];
    let mut head = format!("{:<8}", "lanes");
    for t in thread_sweep {
        head.push_str(&format!(" {:>10}", format!("T={t}")));
    }
    out.push(format!("{head} {:>12}", "amortization"));
    let mut single_lane_rate = 0.0f64;
    for lanes in [1usize, 4, 16, 64] {
        let mut row = format!("{lanes:<8}");
        let mut best = 0.0f64;
        for threads in thread_sweep {
            let mut st = BatchLiState::new(&p, lanes);
            st.set_input_all(0, 0xdead_beef);
            // Warm once, then time.
            kernel.run_parallel(&mut st, 10, threads);
            let t0 = std::time::Instant::now();
            kernel.run_parallel(&mut st, cycles, threads);
            let rate = (cycles * lanes as u64) as f64 / t0.elapsed().as_secs_f64();
            best = best.max(rate);
            row.push_str(&format!(" {:>10.2e}", rate));
        }
        if lanes == 1 {
            single_lane_rate = best;
        }
        row.push_str(&format!(" {:>11.1}x", best / single_lane_rate.max(1.0)));
        out.push(row);
    }
    out.push(String::new());
    out.push("shape check: lane-cycles/s grows with batch size; threads help wide designs".into());
    out
}

/// Batch execution engines: the interpreted per-lane dispatch vs the
/// compiled lane kernels vs compiled + lane-liveness early exit, on the
/// halting RV32I workload at B = 64.
///
/// The first two rows run the same free-running cycle budget, so their
/// ratio is the pure compile-the-hot-loop speedup; the early-exit row
/// instead runs each lane only to its halt cycle, so its win shows up as
/// evaluated lane-cycles (work skipped), on top of the compiled rate.
pub fn batch_engine(_ctx: &Ctx) -> Vec<String> {
    use rteaal_core::{BatchSimulation, Compiler};
    use rteaal_kernels::{BatchEngine, BatchKernel, BatchLiState};
    use std::time::Instant;
    let mut out =
        header("Batch engines: interpreted vs compiled vs compiled+early-exit (RV32I, B=64)");
    let w = Workload::rv32i_sum_loop();
    let p = plan_of(&w.circuit);
    let lanes = 64usize;
    let cycles = 300u64; // comfortably past the ~67-cycle halt point
    out.push(format!(
        "{:<22} {:>10} {:>14} {:>10}",
        "engine", "cycles", "lane-cyc/s", "speedup"
    ));
    let time_engine = |engine: BatchEngine| {
        let kernel =
            BatchKernel::compile_with_engine(&p, KernelConfig::new(KernelKind::Psu), engine);
        let mut st = BatchLiState::new(&p, lanes);
        kernel.run(&mut st, 20); // warm
        let t = Instant::now();
        kernel.run(&mut st, cycles);
        t.elapsed().as_secs_f64()
    };
    let ti = time_engine(BatchEngine::Interpreted);
    let tc = time_engine(BatchEngine::Compiled);
    let rate = |secs: f64, lane_cycles: f64| lane_cycles / secs.max(1e-12);
    let full = (cycles * lanes as u64) as f64;
    out.push(format!(
        "{:<22} {:>10} {:>14.3e} {:>9.2}x",
        "interpreted",
        cycles,
        rate(ti, full),
        1.0
    ));
    out.push(format!(
        "{:<22} {:>10} {:>14.3e} {:>9.2}x",
        "compiled",
        cycles,
        rate(tc, full),
        ti / tc
    ));
    // Compiled + early exit, through the front door the halt probe
    // plumbing serves.
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu))
        .compile(&w.circuit)
        .expect("rv32i compiles");
    let mut sim = BatchSimulation::new(&compiled, lanes);
    sim.watch_halt(w.halt_signal.expect("halting workload"))
        .expect("halt probe resolves");
    let run_to_halt = |sim: &mut BatchSimulation| {
        sim.reset();
        sim.poke_all("reset", 1).expect("reset");
        sim.step_cycles(2);
        sim.poke_all("reset", 0).expect("reset");
        sim.run_until_halt(cycles)
    };
    run_to_halt(&mut sim); // warm, like the free-running rows
    let t = Instant::now();
    let stepped = run_to_halt(&mut sim);
    let te = t.elapsed().as_secs_f64();
    out.push(format!(
        "{:<22} {:>10} {:>14.3e} {:>9.2}x",
        "compiled+early-exit",
        stepped,
        rate(te, (stepped * lanes as u64) as f64),
        ti / (te * cycles as f64 / stepped.max(1) as f64)
    ));
    out.push(String::new());
    out.push(format!(
        "all {lanes} lanes halted within {stepped} cycles (budget {cycles}); \
         shape check: compiled >= 1.3x interpreted"
    ));
    out
}

/// Serving: static early-exit batching vs continuous batching on a
/// mixed-length rv32i corpus (short sum loops interleaved with long
/// ones, one compiled circuit, job length poked through the DMI path at
/// admission). Static batching pays every batch's straggler; the
/// continuous scheduler refills each lane the moment its halt probe
/// fires, so the corpus drains in fewer engine cycles at higher lane
/// utilization — the `rteaal-sched` subsystem's claim, measured.
pub fn sched_serving(ctx: &Ctx) -> Vec<String> {
    use rteaal_core::{Compiler, Simulation};
    use rteaal_sched::{AdmitPolicy, Job, Scheduler};
    use std::time::Instant;
    /// Harvested outputs per job id, for one policy.
    type JobOutputs = Vec<(u64, Vec<(String, u64)>)>;
    let mut out = header("Serving: static vs continuous batching (mixed-length rv32i corpus)");
    // Quick ≈ laptop-size; full pushes the corpus.
    let (jobs, lanes) = if ctx.max_cores > 8 { (96, 16) } else { (24, 8) };
    let corpus = Workload::corpus(jobs, 0x5eed);
    let compiler = Compiler::new(KernelConfig::new(KernelKind::Psu));
    let compiled = compiler
        .compile(&corpus[0].circuit)
        .expect("rv32i compiles");
    let probes = ["a0", "pc_out", "halt"];
    out.push(format!(
        "{:<12} {:>6} {:>6} {:>10} {:>12} {:>8} {:>10} {:>10}",
        "policy", "jobs", "lanes", "cycles", "busy l-cyc", "util%", "wall ms", "jobs/s"
    ));
    let mut cycles_by_policy = Vec::new();
    let mut outputs_by_policy: Vec<JobOutputs> = Vec::new();
    for (label, policy) in [
        ("static", AdmitPolicy::StaticBatches),
        ("continuous", AdmitPolicy::Continuous),
    ] {
        let mut sched = Scheduler::new(&compiled, lanes, "halt")
            .expect("halt probe resolves")
            .with_policy(policy);
        for w in &corpus {
            sched.submit(Job::from_workload(w, &probes));
        }
        let t0 = Instant::now();
        sched.run(10_000_000);
        let wall = t0.elapsed().as_secs_f64();
        let stats = sched.stats();
        assert_eq!(stats.completed, jobs, "every job completes");
        out.push(format!(
            "{label:<12} {jobs:>6} {lanes:>6} {:>10} {:>12} {:>8.1} {:>10.2} {:>10.1}",
            stats.cycles,
            stats.busy_lane_cycles,
            sched.utilization() * 100.0,
            wall * 1e3,
            jobs as f64 / wall.max(1e-9),
        ));
        cycles_by_policy.push(stats.cycles);
        outputs_by_policy.push(
            sched
                .results()
                .iter()
                .map(|r| (r.id.0, r.outputs.clone()))
                .collect(),
        );
    }
    // Bit-exactness gate: every job's harvested outputs equal a scalar
    // run of the same testbench (and both policies agree).
    let mut matches = 0;
    for (id, w) in corpus.iter().enumerate() {
        // Every corpus job shares the one compiled circuit — the job
        // parameter arrives through the DMI poke below.
        let mut scalar = Simulation::new(compiled.clone());
        {
            let mut dmi = rteaal_core::DebugModule::new(&mut scalar);
            for (name, value) in &w.state_pokes {
                dmi.poke_reg(name, *value).expect("register probed");
            }
        }
        while scalar.peek("halt") != Some(1) && scalar.cycle() < w.full_cycles {
            scalar.step();
        }
        let want: Vec<(String, u64)> = probes
            .iter()
            .map(|p| ((*p).to_string(), scalar.peek(p).expect("probed")))
            .collect();
        let id = id as u64;
        if outputs_by_policy
            .iter()
            .all(|outs| outs.iter().any(|(i, o)| *i == id && *o == want))
        {
            matches += 1;
        }
    }
    out.push(String::new());
    out.push(format!(
        "scalar-exactness: {matches}/{jobs} jobs bit-identical to their scalar runs (both policies)"
    ));
    out.push(format!(
        "shape check: continuous < static engine cycles ({} < {}), higher utilization",
        cycles_by_policy[1], cycles_by_policy[0]
    ));
    assert!(
        cycles_by_policy[1] < cycles_by_policy[0],
        "continuous batching must beat the static baseline"
    );
    assert_eq!(
        matches, jobs,
        "a scheduled job diverged from its scalar run"
    );
    out
}

/// Serving front end: a multi-client corpus pushed through the
/// `rteaal-serve` worker pool across worker counts, with a built-in
/// bit-exactness gate (every job's pool result equals its scalar
/// `Simulation` run), plus a 3-job loopback round trip through the
/// socket protocol — the CI smoke of the full socket-bytes-to-lanes
/// path.
pub fn serve_frontend(ctx: &Ctx) -> Vec<String> {
    use rteaal_core::{Compiler, DebugModule, Simulation};
    use rteaal_sched::Job;
    use rteaal_serve::{JobHandle, ServeClient, ServeConfig, ServerPool, SocketServer};
    use std::time::Instant;
    let mut out = header("Serve: multi-client worker pool + socket front end (rv32i corpus)");
    let (jobs, clients, lanes) = if ctx.max_cores > 8 {
        (96, 8, 8)
    } else {
        (24, 4, 4)
    };
    let ks = Workload::corpus_params(jobs, 0x5eed);
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu))
        .compile(&Workload::param_sum_circuit())
        .expect("rv32i compiles");
    let probes = ["a0", "pc_out"];
    let job_for = |k: u64| {
        let mut job = Job::new(format!("sum-{k}"), Workload::param_sum_budget(k));
        job.state_pokes = vec![("x15".to_string(), k)];
        job.probes = probes.iter().map(|p| (*p).to_string()).collect();
        job
    };
    // Scalar references, one per distinct loop bound.
    let scalar_for = |k: u64| -> Vec<(String, u64)> {
        let mut sim = Simulation::new(compiled.clone());
        DebugModule::new(&mut sim)
            .poke_reg("x15", k)
            .expect("x15 probed");
        while sim.peek("halt") != Some(1) {
            sim.step();
        }
        probes
            .iter()
            .map(|p| ((*p).to_string(), sim.peek(p).expect("probed")))
            .collect()
    };
    let mut scalar: std::collections::HashMap<u64, Vec<(String, u64)>> =
        std::collections::HashMap::new();
    for &k in &ks {
        scalar.entry(k).or_insert_with(|| scalar_for(k));
    }
    out.push(format!(
        "{:<8} {:>8} {:>8} {:>10} {:>8} {:>10} {:>10} {:>10}",
        "workers", "jobs", "clients", "cycles", "util%", "wall ms", "jobs/s", "exact"
    ));
    for workers in [1usize, 2, 4] {
        let mut cfg = ServeConfig::with_workers(workers);
        cfg.lanes = lanes;
        let pool = ServerPool::new(&compiled, cfg, "halt").expect("halt resolves");
        let t0 = Instant::now();
        // `clients` threads submit interleaved slices of the corpus
        // concurrently and wait for their own results.
        let results: Vec<(u64, rteaal_sched::JobResult)> = std::thread::scope(|scope| {
            let (pool, ks, job_for) = (&pool, &ks, &job_for);
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    scope.spawn(move || {
                        let mine: Vec<(u64, JobHandle)> = ks
                            .iter()
                            .skip(c)
                            .step_by(clients)
                            .map(|&k| (k, pool.submit(job_for(k))))
                            .collect();
                        mine.into_iter()
                            .map(|(k, h)| (k, h.wait()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let wall = t0.elapsed().as_secs_f64();
        let stats = pool.shutdown();
        let exact = results
            .iter()
            .filter(|(k, r)| r.completed() && r.outputs == scalar[k])
            .count();
        out.push(format!(
            "{workers:<8} {jobs:>8} {clients:>8} {:>10} {:>8.1} {:>10.2} {:>10.1} {:>7}/{jobs}",
            stats.merged.cycles,
            stats.utilization() * 100.0,
            wall * 1e3,
            jobs as f64 / wall.max(1e-9),
            exact,
        ));
        assert_eq!(exact, jobs, "a served job diverged from its scalar run");
        assert_eq!(stats.merged.completed, jobs);
    }
    // Socket leg: 3 jobs over loopback through the line-JSON protocol.
    let pool =
        ServerPool::new(&compiled, ServeConfig::with_workers(2), "halt").expect("halt resolves");
    let addr = SocketServer::bind(pool, "127.0.0.1:0")
        .expect("binds loopback")
        .spawn()
        .expect("accept loop spawns");
    let mut client = ServeClient::connect(addr).expect("connects");
    let socket_ks = [5u64, 30, 2];
    for &k in &socket_ks {
        scalar.entry(k).or_insert_with(|| scalar_for(k));
    }
    let ids: Vec<u64> = socket_ks
        .iter()
        .map(|&k| client.submit(&job_for(k)).expect("submits"))
        .collect();
    let mut socket_exact = 0;
    for _ in &socket_ks {
        let r = client.next_result().expect("streams a result");
        let k = socket_ks[ids.iter().position(|&i| i == r.id).expect("known id")];
        let want = &scalar[&k];
        if r.completed()
            && want
                .iter()
                .all(|(name, value)| r.output(name) == Some(*value))
        {
            socket_exact += 1;
        }
    }
    out.push(String::new());
    out.push(format!(
        "socket round trip: {socket_exact}/{} jobs bit-identical over loopback (verbs: submit/result/stats)",
        socket_ks.len()
    ));
    let wire_stats = client.stats().expect("stats verb");
    out.push(format!(
        "shape check: every row {jobs}/{jobs} exact; socket pool completed {} jobs",
        wire_stats.completed
    ));
    assert_eq!(
        socket_exact,
        socket_ks.len(),
        "socket results must be bit-exact"
    );
    out
}

/// The `tables -- shard-server` process body: a single-design serve
/// process over the corpus circuit on an OS-picked loopback port.
/// Prints `LISTENING <addr>` on stdout once ready, then serves forever
/// — the `shard` experiment spawns two of these as *real child
/// processes*, so the router is exercised against genuine process and
/// socket boundaries (and a genuine `SIGKILL`), not in-process stand-ins.
pub fn shard_server_process() {
    use rteaal_core::Compiler;
    use rteaal_serve::{ServeConfig, ServerPool, SocketServer};
    use std::io::Write;
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu))
        .compile(&Workload::param_sum_circuit())
        .expect("rv32i compiles");
    let mut cfg = ServeConfig::with_workers(2);
    cfg.lanes = 4;
    let pool = ServerPool::new(&compiled, cfg, "halt").expect("halt resolves");
    let server = SocketServer::bind(pool, "127.0.0.1:0").expect("binds loopback");
    let addr = server.local_addr().expect("bound address");
    println!("LISTENING {addr}");
    std::io::stdout().flush().expect("handshake flushes");
    server.serve_forever().expect("accept loop");
}

/// Cross-host sharding: a 2-process loopback fleet (two real
/// `shard-server` children of this binary) driven by the
/// [`ShardRouter`](rteaal_serve::ShardRouter) — consistent-hash
/// partitioning, per-shard accounting, merged completion-ordered
/// results. Two rows: a healthy fleet, and a fleet whose busiest shard
/// is `SIGKILL`ed mid-corpus, forcing the router's dead-shard
/// detection and automatic resubmission. Gates: every corpus job is
/// delivered exactly once and bit-identical to a scalar `Simulation`
/// run in *both* rows, and the kill row must log resubmissions.
pub fn shard_fleet(ctx: &Ctx) -> Vec<String> {
    use rteaal_core::{Compiler, DebugModule, Simulation};
    use rteaal_sched::Job;
    use rteaal_serve::{ShardConfig, ShardRouter};
    use std::collections::{HashMap, HashSet};
    use std::io::BufRead;
    use std::net::SocketAddr;
    use std::process::{Child, Command, Stdio};

    let mut out = header("Shard: cross-host router over a 2-process loopback fleet");
    let jobs = if ctx.max_cores > 8 { 64usize } else { 24 };
    let ks = Workload::corpus_params(jobs, 0x5eed);
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu))
        .compile(&Workload::param_sum_circuit())
        .expect("rv32i compiles");
    let probes = ["a0", "pc_out"];
    let job_for = |k: u64| {
        let mut job = Job::new(format!("sum-{k}"), Workload::param_sum_budget(k));
        job.state_pokes = vec![("x15".to_string(), k)];
        job.probes = probes.iter().map(|p| (*p).to_string()).collect();
        job
    };
    // Scalar references, one per distinct loop bound.
    let mut scalar: HashMap<u64, Vec<(String, u64)>> = HashMap::new();
    for &k in &ks {
        scalar.entry(k).or_insert_with(|| {
            let mut sim = Simulation::new(compiled.clone());
            DebugModule::new(&mut sim)
                .poke_reg("x15", k)
                .expect("x15 probed");
            while sim.peek("halt") != Some(1) {
                sim.step();
            }
            probes
                .iter()
                .map(|p| ((*p).to_string(), sim.peek(p).expect("probed")))
                .collect()
        });
    }

    // Kills its server process on scope exit — including panic unwinds
    // from a failed gate — so a red run can never leak children that
    // hold CI's inherited pipes open.
    struct ShardProc(Child);
    impl Drop for ShardProc {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }

    // Spawns one real server process (this binary, `shard-server`
    // mode) and reads its LISTENING handshake.
    let spawn_shard = || -> (ShardProc, SocketAddr) {
        let exe = std::env::current_exe().expect("own executable path");
        let mut child = Command::new(exe)
            .arg("shard-server")
            .stdout(Stdio::piped())
            .spawn()
            .expect("shard server spawns (the shard experiment must run via the tables binary)");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("handshake line");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .expect("handshake format")
            .parse()
            .expect("valid loopback address");
        (ShardProc(child), addr)
    };

    out.push(format!(
        "{:<10} {:>6} {:>8} {:>8} {:>7} {:>7} {:>8} {:>8} {:>10}",
        "scenario", "jobs", "s0 jobs", "s1 jobs", "resub", "deaths", "util0%", "util1%", "exact"
    ));
    for kill_one in [false, true] {
        let (mut child0, addr0) = spawn_shard();
        let (mut child1, addr1) = spawn_shard();
        // Hedging off: this experiment gates the *resubmission* path,
        // and a hedged job lost to the kill would be promoted in place
        // instead of resubmitted (the `fleet` experiment owns hedging).
        let config = ShardConfig {
            hedge: false,
            ..ShardConfig::default()
        };
        let mut router = ShardRouter::connect(&[addr0, addr1], config).expect("fleet connects");
        for &k in &ks {
            router.submit(job_for(k)).expect("fleet takes the job");
        }
        let mut results = Vec::new();
        if kill_one {
            // Drain a third, then SIGKILL the shard holding the most
            // undelivered jobs — a genuine mid-corpus host loss.
            for _ in 0..jobs / 3 {
                results.push(router.next_result().expect("stream survives"));
            }
            let loads = router.stats().per_shard;
            let victim = if loads[0].in_flight >= loads[1].in_flight {
                0
            } else {
                1
            };
            let child = if victim == 0 {
                &mut child0
            } else {
                &mut child1
            };
            child.0.kill().expect("kill shard process");
            child.0.wait().expect("reap shard process");
        }
        results.extend(router.drain().expect("drain completes"));
        // Health-poll *after* the drain so utilization covers the whole
        // corpus; a dead shard reports no stats.
        let health = router.poll_health().expect("health poll");
        let stats = router.stats();

        // Gate: exactly-once delivery, bit-identical to scalar runs.
        // Router ids are assigned in submission order, so id i ran ks[i].
        let mut seen: HashSet<u64> = HashSet::new();
        let mut exact = 0usize;
        for routed in &results {
            assert!(seen.insert(routed.id), "job {} delivered twice", routed.id);
            let want = &scalar[&ks[routed.id as usize]];
            if routed.result.completed()
                && want
                    .iter()
                    .all(|(name, value)| routed.result.output(name) == Some(*value))
            {
                exact += 1;
            }
        }
        let util = |s: usize| {
            health[s].as_ref().map_or_else(
                || "dead".to_string(),
                |w| format!("{:.1}", w.utilization * 100.0),
            )
        };
        out.push(format!(
            "{:<10} {jobs:>6} {:>8} {:>8} {:>7} {:>7} {:>8} {:>8} {:>7}/{jobs}",
            if kill_one { "kill-one" } else { "healthy" },
            stats.per_shard[0].delivered,
            stats.per_shard[1].delivered,
            stats.resubmitted,
            stats.shard_deaths,
            util(0),
            util(1),
            exact,
        ));
        assert_eq!(results.len(), jobs, "every job delivered exactly once");
        assert_eq!(exact, jobs, "a routed job diverged from its scalar run");
        if kill_one {
            assert_eq!(
                stats.shard_deaths, 1,
                "the killed shard must register as dead"
            );
            assert!(
                stats.resubmitted > 0,
                "the killed shard's jobs must be resubmitted"
            );
        } else {
            assert_eq!(stats.shard_deaths, 0, "a healthy fleet loses nobody");
            assert!(
                stats.per_shard.iter().all(|s| s.delivered > 0),
                "consistent hashing spread the corpus: {:?}",
                stats.per_shard
            );
        }
        // child0/child1 drop here, killing the servers — the same path
        // a failed gate's unwind takes.
    }
    out.push(String::new());
    out.push(format!(
        "gate: {jobs}/{jobs} exact in both rows; kill-one row resubmitted lost jobs to the survivor"
    ));
    out
}

/// Elastic fleet under open-loop load: a 2-process fleet (one shard
/// slowed by a [`ChaosShard`](rteaal_serve::ChaosShard) proxy) driven
/// by a Poisson arrival schedule with a mid-run burst phase and a
/// mixed design/length corpus, measuring p50/p99/p999 latency **from
/// each job's scheduled arrival** (open-loop: queueing a struggling
/// fleet builds up is charged to the jobs that suffered it, no
/// coordinated omission). Two legs over the *identical* schedule:
///
/// - `healthy` — both shards up throughout.
/// - `kill+revive` — the *fast* shard is killed a third of the way in
///   and revived at two thirds; the router's breaker must open,
///   degrade onto the slow survivor (the tail visibly rises), and the
///   `ping` probe loop must rejoin the shard (replaying the
///   fan-out-registered design) before the run ends.
///
/// Gates: every arrival is delivered exactly once and bit-identical
/// to a scalar `Simulation` run in both legs; the fault leg logs ≥ 1
/// rejoin and ≥ 1 won hedge (the slow shard's stragglers are hedged
/// onto the fast one, first result wins, the duplicate discarded by
/// the exactly-once path).
pub fn elastic_fleet(ctx: &Ctx) -> Vec<String> {
    use crate::openloop::{ArrivalPlan, LatencyReport, Phase};
    use rteaal_core::{Compiler, DebugModule, Simulation};
    use rteaal_sched::Job;
    use rteaal_serve::{ChaosPlan, ChaosShard, ShardConfig, ShardRouter};
    use std::collections::{HashMap, HashSet};
    use std::io::BufRead;
    use std::net::SocketAddr;
    use std::process::{Child, Command, Stdio};
    use std::time::{Duration, Instant};

    let mut out = header("Fleet: elastic 2-shard serving under open-loop Poisson load");
    let arrivals = if ctx.max_cores > 8 { 180usize } else { 72 };

    // Mixed corpus: half the variants run on the fan-out-registered
    // `twin` design (same circuit, so one scalar reference per k).
    let ks = Workload::corpus_params(12, 0xf1ee7);
    let corpus: Vec<(u64, Option<&str>)> = ks
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, if i % 2 == 1 { Some("twin") } else { None }))
        .collect();
    let twin_src = rteaal_firrtl::parser::emit(&Workload::param_sum_circuit());
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu))
        .compile(&Workload::param_sum_circuit())
        .expect("rv32i compiles");
    let probes = ["a0", "pc_out"];
    let job_for = |k: u64| {
        let mut job = Job::new(format!("sum-{k}"), Workload::param_sum_budget(k));
        job.state_pokes = vec![("x15".to_string(), k)];
        job.probes = probes.iter().map(|p| (*p).to_string()).collect();
        job
    };
    let mut scalar: HashMap<u64, Vec<(String, u64)>> = HashMap::new();
    for &k in &ks {
        scalar.entry(k).or_insert_with(|| {
            let mut sim = Simulation::new(compiled.clone());
            DebugModule::new(&mut sim)
                .poke_reg("x15", k)
                .expect("x15 probed");
            while sim.peek("halt") != Some(1) {
                sim.step();
            }
            probes
                .iter()
                .map(|p| ((*p).to_string(), sim.peek(p).expect("probed")))
                .collect()
        });
    }

    // The identical offered load for both legs: steady, 3x burst,
    // steady.
    let phases = [
        Phase {
            arrivals: arrivals * 2 / 5,
            rate_multiplier: 1.0,
        },
        Phase {
            arrivals: arrivals / 5,
            rate_multiplier: 3.0,
        },
        Phase {
            arrivals: arrivals - arrivals * 2 / 5 - arrivals / 5,
            rate_multiplier: 1.0,
        },
    ];
    let plan = ArrivalPlan::poisson(0x0411a7, 150.0, corpus.len(), &phases);
    let kill_at = plan.len() / 3;
    let revive_at = 2 * plan.len() / 3;

    struct ShardProc(Child);
    impl Drop for ShardProc {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }
    let spawn_shard = || -> (ShardProc, SocketAddr) {
        let exe = std::env::current_exe().expect("own executable path");
        let mut child = Command::new(exe)
            .arg("shard-server")
            .stdout(Stdio::piped())
            .spawn()
            .expect("shard server spawns (the fleet experiment must run via the tables binary)");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("handshake line");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .expect("handshake format")
            .parse()
            .expect("valid loopback address");
        (ShardProc(child), addr)
    };

    out.push(format!(
        "open-loop schedule: {} arrivals over ~{:.0} ms ({}+{}+{} steady/burst/steady), corpus of {} (k, design) variants",
        plan.len(),
        plan.span().as_secs_f64() * 1e3,
        phases[0].arrivals,
        phases[1].arrivals,
        phases[2].arrivals,
        corpus.len(),
    ));
    out.push(format!(
        "{:<12} {:>7} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6} {:>7} {:>7} {:>9}",
        "leg",
        "p50ms",
        "p99ms",
        "p999ms",
        "maxms",
        "hedge",
        "won",
        "lost",
        "deaths",
        "rejoins",
        "exact"
    ));

    for fault in [false, true] {
        let (_child0, addr0) = spawn_shard();
        let (_child1, addr1) = spawn_shard();
        // Shard 0 (fast) sits behind a transparent chaos proxy so the
        // fault leg can kill and revive it; shard 1 sits behind a
        // delay proxy in *both* legs, so its stragglers exercise
        // hedging onto the fast shard.
        let breaker = ChaosShard::spawn(addr0, ChaosPlan::default()).expect("kill proxy spawns");
        let slow = ChaosShard::spawn(
            addr1,
            ChaosPlan {
                response_delay: Duration::from_millis(2),
                ..ChaosPlan::default()
            },
        )
        .expect("delay proxy spawns");
        let config = ShardConfig {
            read_timeout: Duration::from_secs(20),
            // Probe fast enough that the rejoin lands within the leg.
            backoff_base: Duration::from_millis(15),
            backoff_cap: Duration::from_millis(120),
            // Hedge aggressively: the threshold tracks the *lower*
            // quantile of the latency window (fast-shard territory)
            // with a floor below the delay proxy's per-response cost,
            // so every job the slow shard owns is a straggler by the
            // time its delayed submit response even returns.
            hedge_min_samples: 8,
            hedge_quantile: 0.25,
            hedge_multiplier: 1.0,
            hedge_floor: Duration::from_millis(1),
            ..ShardConfig::default()
        };
        let mut router =
            ShardRouter::connect(&[breaker.addr(), slow.addr()], config).expect("connects");
        router
            .register("twin", &twin_src, "halt")
            .expect("fan-out registers");

        let start = Instant::now();
        let deadline = start + Duration::from_secs(180);
        let mut submitted: HashMap<u64, usize> = HashMap::new(); // id -> arrival index
        let mut done: Vec<(u64, rteaal_serve::WireResult, Duration)> = Vec::new();
        let mut next = 0usize;
        while next < plan.len() || router.pending() > 0 {
            assert!(Instant::now() < deadline, "fleet leg exceeded its deadline");
            while next < plan.len() && start.elapsed() >= plan.arrivals[next].at {
                if fault && next == kill_at {
                    breaker.kill();
                }
                if fault && next == revive_at {
                    breaker.revive();
                }
                let arrival = plan.arrivals[next];
                let (k, design) = corpus[arrival.corpus_index];
                let id = router
                    .submit_on(design, job_for(k))
                    .expect("fleet takes the job");
                submitted.insert(id, next);
                next += 1;
            }
            match router.poll_once().expect("pump survives the leg") {
                Some(routed) => done.push((routed.id, routed.result, start.elapsed())),
                None => {
                    // Nothing finished: sleep to the next arrival (or a
                    // poll tick) instead of spinning.
                    let tick = Duration::from_micros(200);
                    let until_due = if next < plan.len() {
                        plan.arrivals[next].at.saturating_sub(start.elapsed())
                    } else {
                        tick
                    };
                    std::thread::sleep(until_due.min(tick));
                }
            }
        }
        // The fault leg must witness the rejoin, even if the drain
        // outran the probe loop.
        if fault {
            while router.fleet_stats().rejoins < 1 {
                assert!(Instant::now() < deadline, "the killed shard never rejoined");
                router.poll_once().expect("idle pump");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let fleet = router.fleet_stats();

        // Gates: exactly-once, bit-exact, and (fault leg) rejoin +
        // won hedge.
        let mut seen: HashSet<u64> = HashSet::new();
        let mut exact = 0usize;
        let mut latencies: Vec<Duration> = Vec::new();
        for (id, result, finished) in &done {
            assert!(seen.insert(*id), "job {id} delivered twice");
            let arrival = plan.arrivals[submitted[id]];
            latencies.push(finished.saturating_sub(arrival.at));
            let (k, _) = corpus[arrival.corpus_index];
            let want = &scalar[&k];
            if result.completed()
                && want
                    .iter()
                    .all(|(name, value)| result.output(name) == Some(*value))
            {
                exact += 1;
            }
        }
        let report = LatencyReport::from_sample(&latencies);
        out.push(format!(
            "{:<12} {} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6}/{}",
            if fault { "kill+revive" } else { "healthy" },
            report.row(),
            fleet.hedges,
            fleet.hedges_won,
            fleet.hedges_lost,
            fleet.shard_deaths,
            fleet.rejoins,
            exact,
            plan.len(),
        ));
        assert_eq!(
            done.len(),
            plan.len(),
            "every arrival delivered exactly once"
        );
        assert_eq!(
            exact,
            plan.len(),
            "a routed job diverged from its scalar run"
        );
        if fault {
            assert!(fleet.rejoins >= 1, "the revived shard must rejoin the ring");
            assert!(
                fleet.hedges_won >= 1,
                "at least one hedge must win: {fleet:?}"
            );
            assert!(fleet.shard_deaths >= 1, "the kill must open the breaker");
        }
    }
    out.push(String::new());
    out.push(format!(
        "gate: {0}/{0} exact in both legs; kill+revive leg rejoined the revived shard and won hedges off the slow one",
        plan.len()
    ));
    out
}

/// Unified telemetry, end to end: an open-loop Poisson load against a
/// healthy 2-process fleet, then the whole story read back *through the
/// wire*: the `metrics` verb (registry snapshot + Prometheus text) and
/// the `timeline` verb (each job's six-stage lifecycle) on every shard.
/// Latency is attributed stage by stage from the timelines — queue
/// (submitted→admitted), engine (admitted→halted), network (the
/// router-observed span minus the shard-observed span) — and printed as
/// p50/p99 per stage. Alongside, the opt-in engine probe: the same
/// design's [`BatchKernel`](rteaal_kernels::BatchKernel) profiled per
/// layer through `step_profiled`, with the accumulated reference stream
/// driven through the top-down model for bottleneck attribution.
///
/// Gates: every job bit-identical to a scalar `Simulation` run; every
/// timeline complete (all six stages, in order, monotonic timestamps);
/// the `metrics` verb parses with nonzero job counters that agree with
/// the delivered count; the perf-model probe reports a nonzero,
/// normalized top-down breakdown for the engine stage.
pub fn telemetry_stack(ctx: &Ctx) -> Vec<String> {
    use crate::openloop::{quantiles, ArrivalPlan, Phase};
    use rteaal_core::{Compiler, DebugModule, Simulation};
    use rteaal_kernels::{BatchKernel, BatchLiState};
    use rteaal_perfmodel::topdown::ExecProfile;
    use rteaal_sched::Job;
    use rteaal_serve::{ServeClient, ShardConfig, ShardRouter};
    use rteaal_telemetry::ALL_STAGES;
    use std::collections::HashMap;
    use std::io::BufRead;
    use std::net::SocketAddr;
    use std::process::{Child, Command, Stdio};
    use std::time::{Duration, Instant};

    let mut out = header("Telemetry: stage-attributed latency and perf-model probes, end to end");
    let arrivals = if ctx.max_cores > 8 { 96usize } else { 40 };

    let ks = Workload::corpus_params(10, 0x7e1e);
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu))
        .compile(&Workload::param_sum_circuit())
        .expect("rv32i compiles");
    let probes = ["a0", "pc_out"];
    let job_for = |k: u64| {
        let mut job = Job::new(format!("sum-{k}"), Workload::param_sum_budget(k));
        job.state_pokes = vec![("x15".to_string(), k)];
        job.probes = probes.iter().map(|p| (*p).to_string()).collect();
        job
    };
    let mut scalar: HashMap<u64, Vec<(String, u64)>> = HashMap::new();
    for &k in &ks {
        scalar.entry(k).or_insert_with(|| {
            let mut sim = Simulation::new(compiled.clone());
            DebugModule::new(&mut sim)
                .poke_reg("x15", k)
                .expect("x15 probed");
            while sim.peek("halt") != Some(1) {
                sim.step();
            }
            probes
                .iter()
                .map(|p| ((*p).to_string(), sim.peek(p).expect("probed")))
                .collect()
        });
    }

    struct ShardProc(Child);
    impl Drop for ShardProc {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }
    let spawn_shard = || -> (ShardProc, SocketAddr) {
        let exe = std::env::current_exe().expect("own executable path");
        let mut child = Command::new(exe)
            .arg("shard-server")
            .stdout(Stdio::piped())
            .spawn()
            .expect(
                "shard server spawns (the telemetry experiment must run via the tables binary)",
            );
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("handshake line");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .expect("handshake format")
            .parse()
            .expect("valid loopback address");
        (ShardProc(child), addr)
    };

    // A healthy 2-shard fleet under one steady open-loop phase. Hedging
    // off so every job lives on exactly one shard — its timeline has one
    // unambiguous home.
    let (_child0, addr0) = spawn_shard();
    let (_child1, addr1) = spawn_shard();
    let addrs = [addr0, addr1];
    let config = ShardConfig {
        hedge: false,
        read_timeout: Duration::from_secs(20),
        ..ShardConfig::default()
    };
    let mut router = ShardRouter::connect(&addrs, config).expect("fleet connects");
    let phases = [Phase {
        arrivals,
        rate_multiplier: 1.0,
    }];
    let plan = ArrivalPlan::poisson(0x7e1e_5eed, 250.0, ks.len(), &phases);

    let start = Instant::now();
    let deadline = start + Duration::from_secs(120);
    let mut submitted: HashMap<u64, (usize, Instant)> = HashMap::new();
    let mut done: Vec<(u64, usize, rteaal_serve::WireResult, Duration)> = Vec::new();
    let mut next = 0usize;
    while next < plan.len() || router.pending() > 0 {
        assert!(
            Instant::now() < deadline,
            "telemetry leg exceeded its deadline"
        );
        while next < plan.len() && start.elapsed() >= plan.arrivals[next].at {
            let arrival = plan.arrivals[next];
            let submit_at = Instant::now();
            let id = router
                .submit(job_for(ks[arrival.corpus_index]))
                .expect("fleet takes the job");
            submitted.insert(id, (arrival.corpus_index, submit_at));
            next += 1;
        }
        match router.poll_once().expect("pump survives") {
            Some(routed) => {
                let (_, submit_at) = submitted[&routed.id];
                done.push((routed.id, routed.shard, routed.result, submit_at.elapsed()));
            }
            None => {
                let tick = Duration::from_micros(200);
                let until_due = if next < plan.len() {
                    plan.arrivals[next].at.saturating_sub(start.elapsed())
                } else {
                    tick
                };
                std::thread::sleep(until_due.min(tick));
            }
        }
    }
    assert_eq!(done.len(), plan.len(), "every arrival delivered");

    // Gate 1: bit-exact against the scalar references.
    let mut exact = 0usize;
    for (id, _, result, _) in &done {
        let (corpus_index, _) = submitted[id];
        let want = &scalar[&ks[corpus_index]];
        if result.completed()
            && want
                .iter()
                .all(|(name, value)| result.output(name) == Some(*value))
        {
            exact += 1;
        }
    }
    assert_eq!(
        exact,
        done.len(),
        "a routed job diverged from its scalar run"
    );

    // Read the story back through the wire: per shard, the `timeline`
    // verb for every job it ran, and the `metrics` verb snapshot.
    let mut queue_lat: Vec<Duration> = Vec::new();
    let mut engine_lat: Vec<Duration> = Vec::new();
    let mut network_lat: Vec<Duration> = Vec::new();
    let mut wire_completed = 0u64;
    let mut wire_submitted = 0u64;
    for (s, addr) in addrs.iter().enumerate() {
        let mut client = ServeClient::connect(*addr).expect("shard reachable");
        for (_, shard, result, router_latency) in done.iter().filter(|(_, sh, _, _)| *sh == s) {
            let timeline = client.timeline(result.id).expect("timeline verb");
            // Gate 2: six stages, in order, monotonic timestamps.
            let stages: Vec<_> = timeline.iter().map(|e| e.stage).collect();
            assert_eq!(
                stages,
                ALL_STAGES.to_vec(),
                "shard {shard} job {} has an incomplete timeline",
                result.id
            );
            assert!(
                timeline.windows(2).all(|w| w[0].at_us <= w[1].at_us),
                "timeline timestamps regress: {timeline:?}"
            );
            let at = |i: usize| timeline[i].at_us;
            // submitted=0 queued=1 admitted=2 halted=3 published=4.
            queue_lat.push(Duration::from_micros(at(2) - at(0)));
            engine_lat.push(Duration::from_micros(at(3) - at(2)));
            let shard_span = Duration::from_micros(at(4) - at(0));
            network_lat.push(router_latency.saturating_sub(shard_span));
        }
        // Gate 3: the metrics verb parses, counters are live, and the
        // Prometheus exposition carries the same instruments.
        let (snapshot, exposition) = client.metrics().expect("metrics verb");
        wire_completed += snapshot.counter("sched.completed");
        wire_submitted += snapshot
            .counter("router.submitted")
            .max(snapshot.counter("sched.admitted"));
        assert!(snapshot.uptime_ms > 0 || snapshot.events_recorded > 0);
        assert!(
            exposition.contains("# TYPE sched_completed counter"),
            "exposition must carry the scheduler counters"
        );
        let wire_stats = client.stats().expect("stats verb");
        assert_eq!(wire_stats.queue_depth, 0, "drained fleet has empty queues");
        assert!(wire_stats.uptime_ms > 0, "uptime is reported");
    }
    assert_eq!(
        wire_completed,
        done.len() as u64,
        "the fleet's registries account for every job"
    );
    assert!(
        wire_submitted > 0,
        "metrics verb shows nonzero job counters"
    );

    let q = |sample: &[Duration]| quantiles(sample, &[0.5, 0.99]);
    let (qq, qe, qn) = (&q(&queue_lat), &q(&engine_lat), &q(&network_lat));
    out.push(format!(
        "open-loop: {} arrivals over ~{:.0} ms against 2 shards; {}/{} bit-exact",
        plan.len(),
        plan.span().as_secs_f64() * 1e3,
        exact,
        plan.len(),
    ));
    out.push(format!("{:<10} {:>9} {:>9}", "stage", "p50 ms", "p99 ms"));
    for (name, qs) in [("queue", qq), ("engine", qe), ("network", qn)] {
        out.push(format!(
            "{name:<10} {:>9.3} {:>9.3}",
            qs[0].as_secs_f64() * 1e3,
            qs[1].as_secs_f64() * 1e3,
        ));
    }
    out.push(format!(
        "metrics-verb: ok (completed={wire_completed}, timelines complete on all {} jobs)",
        done.len()
    ));

    // The opt-in engine probe: the same design's batched kernel,
    // profiled layer by layer, feeding the top-down bottleneck model.
    let machine = Machine::intel_core();
    let kernel = BatchKernel::compile(&compiled.plan, KernelConfig::new(KernelKind::Psu));
    let mut st = BatchLiState::new(&compiled.plan, 8);
    let mut mem = machine.mem_sim();
    let mut profile = ExecProfile::default();
    let mut layer_instr: Vec<u64> = Vec::new();
    for _ in 0..ctx.profile_cycles {
        for s in kernel.step_profiled(&mut st, &mut mem, &mut profile) {
            if layer_instr.len() <= s.layer {
                layer_instr.resize(s.layer + 1, 0);
            }
            layer_instr[s.layer] += s.instructions;
        }
    }
    let td = analyze(&profile, &machine);
    // Gate 4: a nonzero, normalized breakdown for the engine stage.
    assert!(
        profile.instructions > 0 && td.cycles > 0.0 && td.retiring > 0.0,
        "engine probe must produce a nonzero top-down breakdown: {td:?}"
    );
    let total = td.frontend_bound + td.bad_speculation + td.backend_bound + td.retiring;
    assert!(
        (total - 1.0).abs() < 1e-6,
        "top-down must normalize: {td:?}"
    );
    let hottest = layer_instr
        .iter()
        .enumerate()
        .max_by_key(|(_, i)| **i)
        .map_or(0, |(l, _)| l);
    out.push(String::new());
    out.push(format!(
        "engine probe ({} cycles x 8 lanes, {} layers): fe {:.1}% badspec {:.1}% be {:.1}% ret {:.1}%, ipc {:.2}, hottest layer {hottest}",
        ctx.profile_cycles,
        layer_instr.len(),
        td.frontend_bound * 100.0,
        td.bad_speculation * 100.0,
        td.backend_bound * 100.0,
        td.retiring * 100.0,
        td.ipc,
    ));
    out.push(String::new());
    out.push(format!(
        "gate: {0}/{0} exact; all timelines six-stage monotonic; metrics verb nonzero; top-down normalized",
        plan.len()
    ));
    out
}

/// RepCut partition parallelism (paper Appendix C, Cascade 2): sweep
/// the partition count on a chip-scale design and measure single-lane
/// cycle latency through the threaded partition engine. Every row is
/// gated bit-identical against the unpartitioned engine on all named
/// outputs, every cycle — partitioning must never change results, only
/// latency. On a box with few cores the latency column flattens (the
/// replication overhead has nothing to hide behind); the gate still
/// binds.
pub fn repcut_partitions(ctx: &Ctx) -> Vec<String> {
    use rteaal_core::{BatchSimulation, Compiler, PartitionedPlan, Partitioning};
    use std::time::Instant;
    let mut out = header("RepCut: partition-parallel cycle latency, bit-exact (4-core chip, PSU)");
    let circuit = rocket(ChipConfig::new(4).with_scale(ctx.scale.max(0.05)));
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu))
        .compile(&circuit)
        .expect("chip-scale design compiles");
    let stim = compiled
        .plan
        .probes
        .iter()
        .find(|(_, s, _)| compiled.plan.input_slots.contains(s))
        .map(|(n, _, _)| n.clone())
        .expect("design has a named input");
    let verify_cycles = 50u64;
    let timed_cycles = (ctx.profile_cycles * 10).max(200);
    out.push(format!(
        "{:<12} {:>12} {:>12} {:>14} {:>10}",
        "partitions", "replication", "cross-regs", "ns/cycle", "exact"
    ));
    let mut flat_ns = 0.0f64;
    for parts in [1usize, 2, 4, 8] {
        if parts > ctx.max_cores {
            continue;
        }
        let pp = PartitionedPlan::new(&compiled.plan, parts);
        let cross = pp.rum.iter().filter(|e| !e.readers.is_empty()).count();
        let mut sim =
            BatchSimulation::new_with(&compiled, 1, Partitioning::Fixed(parts)).with_threads(parts);
        let mut reference = BatchSimulation::new(&compiled, 1);
        // The gate: lock-step against the unpartitioned engine on every
        // named output, every cycle, under a varying stimulus.
        let mut exact = 0u64;
        for c in 0..verify_cycles {
            let x = c.wrapping_mul(0x9e37_79b9) ^ 0x5bd1_e995;
            sim.poke(&stim, 0, x).expect("input pokes");
            reference.poke(&stim, 0, x).expect("input pokes");
            sim.step();
            reference.step();
            let all_match = compiled
                .plan
                .output_slots
                .iter()
                .all(|(name, _)| sim.peek(name, 0) == reference.peek(name, 0));
            assert!(
                all_match,
                "partitioned run diverged from flat at cycle {c} with {parts} partitions"
            );
            exact += 1;
        }
        let t = Instant::now();
        sim.step_cycles(timed_cycles);
        let ns = t.elapsed().as_secs_f64() * 1e9 / timed_cycles as f64;
        if parts == 1 {
            flat_ns = ns;
        }
        out.push(format!(
            "{parts:<12} {:>11.2}x {:>12} {:>14.0} {:>4}/{verify_cycles}",
            pp.replication_factor(),
            cross,
            ns,
            exact
        ));
    }
    out.push(String::new());
    out.push(format!(
        "gate: every partition count bit-identical to the flat engine for {verify_cycles} cycles; \
         flat baseline {flat_ns:.0} ns/cycle"
    ));
    out
}

/// `lint`: the static plan verifier ([`rteaal_dfg::analyze`]) across the
/// design corpus — graph, plan, kernel tables, and RepCut decompositions
/// at 2 and 4 partitions must all come back with zero Error-level
/// diagnostics — plus seeded-violation mutants proving each corruption
/// class is caught with the right diagnostic kind (the no-false-negative
/// gate CI runs as "Lint smoke").
pub fn lint_corpus(ctx: &Ctx) -> Vec<String> {
    use rteaal_designs::{gemmini, pipeline, sha3};
    use rteaal_dfg::analyze::{
        analyze_design, analyze_graph, analyze_partitioned, analyze_plan, DiagKind,
    };
    use rteaal_dfg::op::DfgOp;
    use rteaal_dfg::partition::PartitionedPlan;

    let mut out = header("Plan verifier: corpus lint + seeded-violation mutants");
    let corpus: Vec<(&str, rteaal_firrtl::Circuit)> = vec![
        (
            "rocket-1c",
            rocket(ChipConfig::new(1).with_scale(ctx.scale)),
        ),
        (
            "boom-1c",
            small_boom(ChipConfig::new(1).with_scale(ctx.scale)),
        ),
        ("sha3", sha3()),
        ("gemmini-2", gemmini(2)),
        ("pipeline-3", pipeline(3, 16)),
    ];
    out.push(format!(
        "{:<12} {:>8} {:>8} {:>7} {:>6} {:>10} {:>10} {:>7}",
        "design", "ops", "slots", "layers", "dead", "nontoggle", "activity", "status"
    ));
    let mut all_clean = true;
    let mut plans = Vec::new();
    for (name, circuit) in &corpus {
        let mut report = analyze_graph(&raw_graph_of(circuit));
        let p = plan_of(circuit);
        report.merge(analyze_design(&p));
        for parts in [2usize, 4] {
            report.merge(analyze_partitioned(&p, &PartitionedPlan::new(&p, parts)));
        }
        let clean = report.is_clean();
        all_clean &= clean;
        out.push(format!(
            "{name:<12} {:>8} {:>8} {:>7} {:>6} {:>10} {:>10.0} {:>7}",
            report.stats.ops,
            report.stats.slots,
            report.stats.layers,
            report.stats.dead_ops,
            report.stats.never_toggling,
            report.stats.total_activity,
            if clean { "clean" } else { "ERROR" },
        ));
        if !clean {
            for d in report.errors().take(5) {
                out.push(format!("  {d}"));
            }
        }
        plans.push(p);
    }
    assert!(all_clean, "corpus lint found Error-level diagnostics");

    // Seeded-violation mutants: each corruption class a buggy pass (or a
    // hostile plan) could introduce must be caught, with the right kind.
    out.push(String::new());
    out.push("seeded mutants (each must be caught):".to_string());
    let base = &plans[0];
    let mut caught = 0usize;

    // 1. Shuffled layer order — a later layer's results consumed before
    //    they exist.
    let mut shuffled = base.clone();
    shuffled.layers.reverse();
    let report = analyze_plan(&shuffled);
    assert!(
        report.has(DiagKind::UseBeforeDef),
        "reversed layers must be use-before-def: {report}"
    );
    caught += 1;
    out.push("  shuffled-layers      -> use-before-def".to_string());

    // 2. Out-of-bounds operand offset — caught in the plan *and* in the
    //    compiled kernel table (the bound the unsafe kernels rely on).
    let mut oob = base.clone();
    let (l, o) = oob
        .layers
        .iter()
        .enumerate()
        .find_map(|(l, layer)| {
            layer
                .iter()
                .position(|op| !op.ins.is_empty())
                .map(|o| (l, o))
        })
        .expect("corpus plans have ops with operands");
    oob.layers[l][o].ins[0] = oob.num_slots as u32 + 7;
    let report = analyze_design(&oob);
    assert!(
        report.has(DiagKind::SlotOutOfBounds) && report.has(DiagKind::KernelOutOfBounds),
        "oob operand must be caught in plan and kernel table: {report}"
    );
    caught += 1;
    out.push("  oob-operand          -> slot-out-of-bounds + kernel-out-of-bounds".to_string());

    // 3. Corrupted RUM ownership — a partition now commits a register it
    //    does not own.
    let mut pp = PartitionedPlan::new(base, 2);
    if let Some(entry) = pp.rum.first_mut() {
        entry.owner = (entry.owner + 1) % 2;
    }
    let report = analyze_partitioned(base, &pp);
    assert!(
        report.has(DiagKind::ForeignCommit) || report.has(DiagKind::RumOwnerMismatch),
        "corrupted rum owner must be caught: {report}"
    );
    caught += 1;
    out.push("  corrupt-rum-owner    -> foreign-commit".to_string());

    // 4. Dropped RUM reader — a cross-partition consumer loses its
    //    replica updates.
    let mut pp = PartitionedPlan::new(base, 2);
    if let Some(entry) = pp.rum.iter_mut().find(|e| !e.readers.is_empty()) {
        entry.readers.clear();
        let report = analyze_partitioned(base, &pp);
        assert!(
            report.has(DiagKind::MissingRumReader),
            "dropped rum reader must be caught: {report}"
        );
        caught += 1;
        out.push("  dropped-rum-reader   -> missing-rum-reader".to_string());
    }

    // 5. Injected combinational cycle — the corruption that used to
    //    panic deep in levelization, now a named-signal trace.
    let mut g = Graph::new("cyclic");
    let x = g.add_source(DfgOp::Input, 8, false, "x".into());
    g.inputs.push(x);
    let a = g.add_op(DfgOp::Add, vec![], vec![x, x], 8, false);
    let b = g.add_op(DfgOp::Not, vec![], vec![a], 8, false);
    g.set_name(a, "sig_a");
    g.set_name(b, "sig_b");
    g.outputs.push(("y".into(), b));
    g.node_mut(a).operands[0] = b;
    let report = analyze_graph(&g);
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.kind == DiagKind::CombCycle)
        .expect("injected cycle must be caught");
    assert!(
        diag.message.contains("sig_a") && diag.message.contains("sig_b"),
        "cycle trace names its signals: {}",
        diag.message
    );
    caught += 1;
    out.push("  injected-comb-cycle  -> comb-cycle (named trace)".to_string());

    out.push(String::new());
    out.push(format!(
        "gate: {} designs clean at 1/2/4 partitions; {caught} seeded mutants caught",
        corpus.len()
    ));
    out
}

/// Whole-design specialization: interpreted vs compiled vs specialized
/// (fold + dedup + DCE + superblocks + bit-packed 1-bit lanes) on the
/// control-heavy halting RV32I workload at B = 64, with a hard 100%
/// bit-exactness gate against the interpreted golden model and the
/// predicted-vs-measured bottleneck movement from `step_profiled`.
///
/// The plan is specialized under a serving observability contract:
/// probes are kept on inputs, registers (the DMI poke surface), and the
/// signals a job would actually harvest — every other named node is
/// anonymous, which is what gives the fold/dedup/pack passes their
/// headroom (a probe is pokeable, so a probed op can never be removed).
pub fn specialize_tier(ctx: &Ctx) -> Vec<String> {
    use rteaal_dfg::specialize;
    use rteaal_kernels::{BatchEngine, BatchKernel, BatchLiState};
    use std::time::Instant;
    let mut out = header("Specialize: interpreted vs compiled vs specialized lanes (RV32I, B=64)");
    let w = Workload::rv32i_sum_loop();
    let mut p = plan_of(&w.circuit);
    // The observability contract: inputs, registers, outputs, and the
    // job-visible signals stay probed; anonymous intermediates don't.
    let keep_names = ["a0", "pc_out", "halt"];
    let keep_slots: std::collections::HashSet<u32> = p
        .input_slots
        .iter()
        .copied()
        .chain(p.commits.iter().map(|&(d, _)| d))
        .collect();
    p.probes
        .retain(|(name, s, _)| keep_slots.contains(s) || keep_names.contains(&name.as_str()));
    let sp = specialize(&p);
    let lanes = 64usize;
    let cycles = ctx.profile_cycles.max(30) * 10; // 300 in quick mode
    let cfg = KernelConfig::new(KernelKind::Psu);

    // Engines: (label, kernel, state). The specialized state is built
    // from the *transformed* plan (folds live in its init values).
    let mut engines: Vec<(&str, BatchKernel, BatchLiState)> = vec![
        (
            "interpreted",
            BatchKernel::compile_with_engine(&p, cfg, BatchEngine::Interpreted),
            BatchLiState::new(&p, lanes),
        ),
        (
            "compiled",
            BatchKernel::compile_with_engine(&p, cfg, BatchEngine::Compiled),
            BatchLiState::new(&p, lanes),
        ),
        (
            "specialized",
            BatchKernel::compile_specialized(&sp, cfg, true),
            BatchLiState::new(&sp.plan, lanes),
        ),
    ];

    // Bit-exactness gate first, on fresh states: every observable slot
    // of every lane must agree with the interpreted golden model after
    // every one of the first 80 cycles (past the ~67-cycle halt).
    let mut golden = rteaal_dfg::BatchPlanSim::interpreted(&p, lanes);
    let obs: Vec<u32> = {
        let mut seen = std::collections::HashSet::new();
        p.probes
            .iter()
            .map(|&(_, s, _)| s)
            .chain(p.output_slots.iter().map(|&(_, s)| s))
            .chain(p.commits.iter().flat_map(|&(d, s)| [d, s]))
            .filter(|&s| seen.insert(s))
            .collect()
    };
    let mut checked = 0u64;
    for cycle in 0..80u64 {
        golden.step();
        for (label, k, st) in &mut engines {
            k.step(st);
            for lane in 0..lanes {
                for &slot in &obs {
                    assert_eq!(
                        st.slot(slot, lane),
                        golden.slot_lanes(slot)[lane],
                        "{label}: slot {slot} lane {lane} cycle {cycle} diverged"
                    );
                    checked += 1;
                }
            }
        }
    }

    // Throughput: fresh states, warm, then timed free-running walk.
    out.push(format!(
        "{:<14} {:>14} {:>12} {:>14}",
        "engine", "lane-cyc/s", "vs interp", "vs compiled"
    ));
    let mut rates = Vec::new();
    for (label, k, _) in &engines {
        let mut st = if *label == "specialized" {
            BatchLiState::new(&sp.plan, lanes)
        } else {
            BatchLiState::new(&p, lanes)
        };
        k.run(&mut st, 20); // warm
        let t = Instant::now();
        k.run(&mut st, cycles);
        let rate = (cycles * lanes as u64) as f64 / t.elapsed().as_secs_f64().max(1e-12);
        rates.push(rate);
        out.push(format!(
            "{:<14} {:>14.3e} {:>11.2}x {:>13.2}x",
            label,
            rate,
            rate / rates[0],
            rate / rates.get(1).copied().unwrap_or(rate)
        ));
    }

    // Predicted vs measured: the transform's static op removal and the
    // packed-op census predict where the walk's work went; the profiled
    // per-layer samples confirm the modeled work moved the same way.
    let machine = Machine::intel_core();
    let modeled = |kernel: &BatchKernel, st: &mut BatchLiState| -> u64 {
        let mut mem = machine.mem_sim();
        let mut profile = rteaal_perfmodel::topdown::ExecProfile::default();
        let samples = kernel.step_profiled(st, &mut mem, &mut profile);
        samples.iter().map(|s| s.instructions).sum()
    };
    let mi = modeled(&engines[1].1, &mut BatchLiState::new(&p, lanes));
    let ms = modeled(&engines[2].1, &mut BatchLiState::new(&sp.plan, lanes));
    let prog = engines[2].1.specialized().expect("specialized kernel");
    out.push(String::new());
    out.push(format!(
        "transform: {} -> {} ops (folded {}, deduped {}, dead {}, layers dropped {})",
        sp.stats.ops_before,
        sp.stats.ops_after,
        sp.stats.folded,
        sp.stats.deduped,
        sp.stats.dead_removed,
        sp.stats.layers_dropped
    ));
    let (packs, unpacks) = prog.boundary_moves();
    out.push(format!(
        "packing: {} 1-bit ops packed 64-lanes/word ({} bit rows, {packs}+{unpacks} \
         pack/unpack boundary moves, {} input-cone ops skippable)",
        prog.packed_ops(),
        prog.bit_rows(),
        prog.cone_ops()
    ));
    out.push(format!(
        "bottleneck: modeled instructions/cycle {mi} -> {ms} \
         (predicted {:.2}x less wide work; measured specialized/compiled {:.2}x)",
        mi as f64 / ms.max(1) as f64,
        rates[2] / rates[1]
    ));
    // The activity gate is where a halting design's throughput comes
    // from: once every lane's registers stop toggling, whole steps are
    // skipped as clock-only. Report the settle point so the headline
    // ratio is attributable.
    {
        let mut st = BatchLiState::new(&sp.plan, lanes);
        let k = &engines[2].1;
        let mut settle = None;
        for c in 0..cycles {
            k.step(&mut st);
            if st.settled() {
                settle = Some(c + 1);
                break;
            }
        }
        out.push(match settle {
            Some(c) => format!(
                "activity gate: register fixed point at cycle {c}/{cycles}; \
                 every later step is skipped (clock-only) until an input or poke"
            ),
            None => format!("activity gate: no fixed point within {cycles} cycles"),
        });
    }
    let speedup = rates[2] / rates[1];
    out.push(String::new());
    out.push(format!(
        "gate: bit-exact on 100% of {checked} observable slot-lane-cycle checks; \
         specialized {speedup:.2}x compiled (target >= 1.5x)"
    ));
    if speedup < 1.5 {
        for row in &out {
            eprintln!("{row}");
        }
        panic!("specialized lane throughput {speedup:.2}x compiled misses the 1.5x target");
    }
    out
}

/// All experiment ids in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1",
    "fig7",
    "fig8",
    "table3",
    "table4",
    "fig15",
    "table5",
    "table6",
    "fig16",
    "fig17",
    "table7",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "ablation-elision",
    "ablation-format",
    "batch",
    "batch-engine",
    "specialize",
    "sched",
    "serve",
    "shard",
    "fleet",
    "telemetry",
    "repcut",
    "lint",
];

/// Dispatches one experiment by id.
pub fn run_experiment(id: &str, ctx: &Ctx) -> Option<Vec<String>> {
    Some(match id {
        "table1" => table1(ctx),
        "fig7" => fig7(ctx),
        "fig8" => fig8(ctx),
        "table3" => table3(ctx),
        "table4" => table4(ctx),
        "fig15" => fig15(ctx),
        "table5" => table5(ctx),
        "table6" => table6(ctx),
        "fig16" => fig16(ctx),
        "fig17" => fig17(ctx),
        "table7" => table7(ctx),
        "fig18" => fig18_19(ctx, OptLevel::Full),
        "fig19" => fig18_19(ctx, OptLevel::None),
        "fig20" => fig20(ctx),
        "fig21" => fig21(ctx),
        "ablation-elision" => ablation_elision(ctx),
        "ablation-format" => ablation_format(ctx),
        "batch" => batch_throughput(ctx),
        "batch-engine" => batch_engine(ctx),
        "specialize" => specialize_tier(ctx),
        "sched" => sched_serving(ctx),
        "serve" => serve_frontend(ctx),
        "shard" => shard_fleet(ctx),
        "fleet" => elastic_fleet(ctx),
        "telemetry" => telemetry_stack(ctx),
        "repcut" => repcut_partitions(ctx),
        "lint" => lint_corpus(ctx),
        _ => return None,
    })
}
