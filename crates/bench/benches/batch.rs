//! Criterion: batched multi-stimulus throughput — simulated cycles per
//! second as a function of batch size (lanes) and worker threads, on a
//! mid-size RocketChip. The batch engine's point is that one OIM
//! traversal amortizes over `B` lanes, so lane-cycles/second should grow
//! with `B` well past the single-lane rate, and threads should scale it
//! further on wide layers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rteaal_bench::experiments::graph_of;
use rteaal_designs::{rocket, ChipConfig, Workload};
use rteaal_dfg::plan::plan;
use rteaal_kernels::{BatchEngine, BatchKernel, BatchLiState, KernelConfig, KernelKind};

const CYCLES: u64 = 50;

fn bench_batch_engines(c: &mut Criterion) {
    // The engine axis: per-lane interpreted dispatch vs the compiled
    // lane kernels, single-threaded, on the RV32I core. The compiled
    // path's target is >= 1.3x lane throughput at B=64.
    let workload = Workload::rv32i_sum_loop();
    let sim_plan = plan(&graph_of(&workload.circuit));
    let mut group = c.benchmark_group("batch-engine-rv32i");
    for lanes in [16usize, 64] {
        group.throughput(Throughput::Elements(CYCLES * lanes as u64));
        for (label, engine) in [
            ("interpreted", BatchEngine::Interpreted),
            ("compiled", BatchEngine::Compiled),
        ] {
            let kernel = BatchKernel::compile_with_engine(
                &sim_plan,
                KernelConfig::new(KernelKind::Psu),
                engine,
            );
            let mut st = BatchLiState::new(&sim_plan, lanes);
            st.set_input_all(0, 0); // free-running past reset
            group.bench_with_input(BenchmarkId::new(label, lanes), &lanes, |b, _| {
                b.iter(|| kernel.run(&mut st, CYCLES));
            });
        }
    }
    group.finish();
}

fn bench_batch_lanes(c: &mut Criterion) {
    let circuit = rocket(ChipConfig::new(2));
    let sim_plan = plan(&graph_of(&circuit));
    let kernel = BatchKernel::compile(&sim_plan, KernelConfig::new(KernelKind::Psu));
    let mut group = c.benchmark_group("batch-lanes-rocket2");
    for lanes in [1usize, 4, 16, 64] {
        // Lane-cycles per iteration: the throughput the batch amortizes.
        group.throughput(Throughput::Elements(CYCLES * lanes as u64));
        let mut st = BatchLiState::new(&sim_plan, lanes);
        st.set_input_all(0, 0xdead_beef);
        group.bench_with_input(BenchmarkId::new("seq", lanes), &lanes, |b, _| {
            b.iter(|| kernel.run(&mut st, CYCLES));
        });
    }
    group.finish();
}

fn bench_batch_threads(c: &mut Criterion) {
    let circuit = rocket(ChipConfig::new(4));
    let sim_plan = plan(&graph_of(&circuit));
    let kernel = BatchKernel::compile(&sim_plan, KernelConfig::new(KernelKind::Psu));
    let mut group = c.benchmark_group("batch-threads-rocket4");
    let lanes = 16usize;
    group.throughput(Throughput::Elements(CYCLES * lanes as u64));
    for threads in [1usize, 2, 4, 8] {
        let mut st = BatchLiState::new(&sim_plan, lanes);
        st.set_input_all(0, 0xdead_beef);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| kernel.run_parallel(&mut st, CYCLES, threads));
        });
    }
    group.finish();
}

fn bench_batch_with_workload_stimulus(c: &mut Criterion) {
    // Per-lane stimulus from the designs crate's workload streams: the
    // full per-cycle drive path, not just free-running state update.
    let workload = Workload::rocket(1);
    let sim_plan = plan(&graph_of(&workload.circuit));
    let kernel = BatchKernel::compile(&sim_plan, KernelConfig::new(KernelKind::Psu));
    let mut group = c.benchmark_group("batch-stimulus-rocket1");
    let lanes = 8usize;
    group.throughput(Throughput::Elements(CYCLES * lanes as u64));
    let num_inputs = sim_plan.input_slots.len();
    let mut st = BatchLiState::new(&sim_plan, lanes);
    group.bench_function("driven", |b| {
        b.iter(|| {
            let mut streams: Vec<_> = (0..lanes)
                .map(|lane| workload.lane_stimulus(lane))
                .collect();
            kernel.run_with_stimulus(&mut st, CYCLES, 2, |_, poker| {
                for (lane, stream) in streams.iter_mut().enumerate() {
                    for idx in 0..num_inputs {
                        poker.set_input(idx, lane, stream.next_value());
                    }
                }
            });
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_batch_engines, bench_batch_lanes, bench_batch_threads, bench_batch_with_workload_stimulus
}
criterion_main!(benches);
