//! Criterion: compile-time scaling (the wall-clock side of Table 7 /
//! Figures 8 and 15) — kernel generation vs baseline compilation as the
//! design grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rteaal_baselines::{EssentLike, VerilatorLike};
use rteaal_bench::experiments::raw_graph_of;
use rteaal_designs::{rocket, ChipConfig};
use rteaal_dfg::plan::plan;
use rteaal_kernels::{Kernel, KernelConfig, KernelKind, OptLevel};

fn bench_compile_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile-scaling");
    for cores in [1usize, 4, 8] {
        let graph = raw_graph_of(&rocket(ChipConfig::new(cores)));
        let sim_plan = plan(&graph);
        group.bench_with_input(BenchmarkId::new("psu-kernel", cores), &cores, |b, _| {
            b.iter(|| Kernel::compile(&sim_plan, KernelConfig::new(KernelKind::Psu)));
        });
        group.bench_with_input(BenchmarkId::new("su-kernel", cores), &cores, |b, _| {
            b.iter(|| Kernel::compile(&sim_plan, KernelConfig::new(KernelKind::Su)));
        });
        group.bench_with_input(BenchmarkId::new("verilator", cores), &cores, |b, _| {
            b.iter(|| VerilatorLike::compile(&graph, OptLevel::Full));
        });
        group.bench_with_input(BenchmarkId::new("essent", cores), &cores, |b, _| {
            b.iter(|| EssentLike::compile(&graph, OptLevel::Full));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_compile_scaling
}
criterion_main!(benches);
