//! Criterion: scheduler serving throughput — jobs per second on a
//! mixed-length rv32i corpus, static early-exit batching vs continuous
//! batching. The corpus work is fixed, so the wall-clock gap between the
//! two policies is the straggler time static batching spends stepping a
//! nearly-empty lane window (and the recycled-lane admission overhead
//! continuous batching pays instead, which this bench shows is noise by
//! comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rteaal_core::Compiler;
use rteaal_designs::Workload;
use rteaal_kernels::{KernelConfig, KernelKind};
use rteaal_sched::{AdmitPolicy, Job, Scheduler};

const JOBS: usize = 16;
const LANES: usize = 4;

fn bench_sched_policies(c: &mut Criterion) {
    let corpus = Workload::corpus(JOBS, 0xbe4c4);
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu))
        .compile(&corpus[0].circuit)
        .expect("rv32i compiles");
    let mut group = c.benchmark_group("sched-corpus-rv32i");
    group.throughput(Throughput::Elements(JOBS as u64));
    for (label, policy) in [
        ("static", AdmitPolicy::StaticBatches),
        ("continuous", AdmitPolicy::Continuous),
    ] {
        group.bench_with_input(BenchmarkId::new(label, JOBS), &policy, |b, &policy| {
            b.iter(|| {
                let mut sched = Scheduler::new(&compiled, LANES, "halt")
                    .expect("halt resolves")
                    .with_policy(policy);
                for w in &corpus {
                    sched.submit(Job::from_workload(w, &["a0"]));
                }
                sched.run(1_000_000);
                assert_eq!(sched.results().len(), JOBS);
                sched.stats().cycles
            });
        });
    }
    group.finish();
}

fn bench_lane_recycle_overhead(c: &mut Criterion) {
    // The admission primitive itself: per-lane reset + rebind on a
    // drained lane, the cost continuous batching pays per job.
    let w = Workload::rv32i_param_sum(1);
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu))
        .compile(&w.circuit)
        .expect("rv32i compiles");
    let mut sched = Scheduler::new(&compiled, LANES, "halt").expect("halt resolves");
    let mut group = c.benchmark_group("sched-admit");
    group.throughput(Throughput::Elements(1));
    group.bench_function("reset-and-admit", |b| {
        b.iter(|| {
            sched.sim_mut().admit(0, [("reset", 0)]).expect("admits");
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_sched_policies, bench_lane_recycle_overhead
}
criterion_main!(benches);
