//! Criterion: the whole-design specialization tier on the control-heavy
//! RV32I core — interpreted dispatch vs compiled lane kernels vs the
//! specialized superblock program (fused flat bytecode, bit-packed
//! 1-bit lanes, input-cone and activity gating).
//!
//! Two regimes matter and are benched separately: the pre-halt walk
//! (every register toggling, so the fused bytecode is doing real work
//! each cycle) and the free run (the design halts around cycle 67, the
//! registers reach a fixed point, and the activity gate turns the
//! remaining steps into clock-only skips). The specialization build tax
//! is timed on its own so the serve layer can weigh it against
//! amortization across a job corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rteaal_bench::experiments::graph_of;
use rteaal_designs::Workload;
use rteaal_dfg::plan::plan;
use rteaal_dfg::specialize::{specialize, SpecProgram, SpecializedPlan};
use rteaal_dfg::SimPlan;
use rteaal_kernels::{BatchEngine, BatchKernel, BatchLiState, KernelConfig, KernelKind};

/// Short of the ~67-cycle halt: the pre-halt group measures the real
/// combinational walk, not the post-halt activity skip.
const PRE_HALT_CYCLES: u64 = 50;
/// Well past the halt: the free-run group shows what the activity gate
/// buys once every lane's registers freeze.
const FREE_RUN_CYCLES: u64 = 300;

/// The serving observability contract the experiment uses: inputs,
/// registers, and the job-visible signals stay probed; every other
/// named node is anonymous (a probe is pokeable, so a probed op can
/// never be folded or packed).
fn serving_plan() -> SimPlan {
    let w = Workload::rv32i_sum_loop();
    let mut p = plan(&graph_of(&w.circuit));
    let keep_names = ["a0", "pc_out", "halt"];
    let keep_slots: std::collections::HashSet<u32> = p
        .input_slots
        .iter()
        .copied()
        .chain(p.commits.iter().map(|&(d, _)| d))
        .collect();
    p.probes
        .retain(|(name, s, _)| keep_slots.contains(s) || keep_names.contains(&name.as_str()));
    p
}

fn engines(p: &SimPlan, sp: &SpecializedPlan) -> Vec<(&'static str, BatchKernel, bool)> {
    let cfg = KernelConfig::new(KernelKind::Psu);
    vec![
        (
            "interpreted",
            BatchKernel::compile_with_engine(p, cfg, BatchEngine::Interpreted),
            false,
        ),
        (
            "compiled",
            BatchKernel::compile_with_engine(p, cfg, BatchEngine::Compiled),
            false,
        ),
        (
            "specialized",
            BatchKernel::compile_specialized(sp, cfg, true),
            true,
        ),
    ]
}

fn bench_pre_halt_walk(c: &mut Criterion) {
    let p = serving_plan();
    let sp = specialize(&p);
    let mut group = c.benchmark_group("specialize-pre-halt-rv32i");
    for lanes in [16usize, 64] {
        group.throughput(Throughput::Elements(PRE_HALT_CYCLES * lanes as u64));
        for (label, kernel, spec) in engines(&p, &sp) {
            let plan_for_state = if spec { &sp.plan } else { &p };
            let mut st = BatchLiState::new(plan_for_state, lanes);
            group.bench_with_input(BenchmarkId::new(label, lanes), &lanes, |b, _| {
                b.iter(|| {
                    // Reset keeps every iteration pre-halt: the walk is
                    // measured with registers toggling each cycle.
                    st.reset();
                    kernel.run(&mut st, PRE_HALT_CYCLES);
                });
            });
        }
    }
    group.finish();
}

fn bench_free_run(c: &mut Criterion) {
    let p = serving_plan();
    let sp = specialize(&p);
    let lanes = 64usize;
    let mut group = c.benchmark_group("specialize-free-run-rv32i");
    group.throughput(Throughput::Elements(FREE_RUN_CYCLES * lanes as u64));
    for (label, kernel, spec) in engines(&p, &sp) {
        let plan_for_state = if spec { &sp.plan } else { &p };
        let mut st = BatchLiState::new(plan_for_state, lanes);
        group.bench_with_input(BenchmarkId::new(label, lanes), &lanes, |b, _| {
            b.iter(|| {
                st.reset();
                kernel.run(&mut st, FREE_RUN_CYCLES);
            });
        });
    }
    group.finish();
}

fn bench_build_tax(c: &mut Criterion) {
    let p = serving_plan();
    let sp = specialize(&p);
    let mut group = c.benchmark_group("specialize-build-rv32i");
    group.bench_function("transform", |b| b.iter(|| specialize(&p)));
    group.bench_function("program", |b| b.iter(|| SpecProgram::build(&sp.plan, true)));
    group.finish();
}

criterion_group!(
    benches,
    bench_pre_halt_walk,
    bench_free_run,
    bench_build_tax
);
criterion_main!(benches);
