//! Criterion: ablations for the design choices DESIGN.md calls out —
//! OIM format (a) vs (b) vs (c) traversal cost, mux-chain fusion on/off,
//! PSU unroll factors, and graph-optimization on/off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rteaal_bench::experiments::raw_graph_of;
use rteaal_designs::{rocket, small_boom, ChipConfig};
use rteaal_dfg::passes::{optimize, PassOptions};
use rteaal_dfg::plan::plan;
use rteaal_kernels::{Kernel, KernelConfig, KernelKind};
use rteaal_tensor::oim::{OimOptimized, OimSwizzled, OimUnoptimized};

fn bench_format_sizes(c: &mut Criterion) {
    // Format construction cost for (a)/(b)/(c): the compression is not
    // free at build time; this quantifies it.
    let sim_plan = plan(&raw_graph_of(&rocket(ChipConfig::new(4))));
    let mut group = c.benchmark_group("oim-format-build");
    group.bench_function("unoptimized-a", |b| {
        b.iter(|| OimUnoptimized::from_plan(&sim_plan));
    });
    group.bench_function("optimized-b", |b| {
        b.iter(|| OimOptimized::from_plan(&sim_plan));
    });
    group.bench_function("swizzled-c", |b| {
        b.iter(|| OimSwizzled::from_plan(&sim_plan));
    });
    group.finish();
}

fn bench_fusion_ablation(c: &mut Criterion) {
    let graph = raw_graph_of(&small_boom(ChipConfig::new(2)));
    let mut group = c.benchmark_group("mux-chain-fusion");
    for (name, fuse) in [("fused", true), ("unfused", false)] {
        let opts = PassOptions {
            fuse_mux_chains: fuse,
            ..PassOptions::default()
        };
        let (g, _) = optimize(&graph, &opts);
        let sim_plan = plan(&g);
        let mut kernel = Kernel::compile(&sim_plan, KernelConfig::new(KernelKind::Psu));
        group.bench_with_input(BenchmarkId::new("psu-sim", name), &name, |b, _| {
            b.iter(|| kernel.run(50));
        });
    }
    group.finish();
}

fn bench_psu_unroll_factors(c: &mut Criterion) {
    let sim_plan = plan(&raw_graph_of(&rocket(ChipConfig::new(4))));
    let mut group = c.benchmark_group("psu-unroll-factor");
    for factor in [1usize, 4, 8, 16, 32] {
        let mut cfg = KernelConfig::new(KernelKind::Psu);
        cfg.psu_op_unroll = factor;
        let mut kernel = Kernel::compile(&sim_plan, cfg);
        group.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, _| {
            b.iter(|| kernel.run(50));
        });
    }
    group.finish();
}

fn bench_identity_elision(c: &mut Criterion) {
    // DESIGN.md §5: identity elision on/off. The un-elided plan executes
    // the strict Cascade 1 with materialized identity carries.
    use rteaal_dfg::plan::{plan_unelided, PlanSim};
    let graph = raw_graph_of(&rocket(ChipConfig::new(1)));
    let elided = plan(&graph);
    let unelided = plan_unelided(&graph);
    let mut group = c.benchmark_group("identity-elision");
    let mut sim_e = PlanSim::new(&elided);
    group.bench_function("elided", |b| b.iter(|| sim_e.step()));
    let mut sim_u = PlanSim::new(&unelided);
    group.bench_function("unelided", |b| b.iter(|| sim_u.step()));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_format_sizes, bench_fusion_ablation, bench_psu_unroll_factors,
        bench_identity_elision
}
criterion_main!(benches);
