//! Criterion: wall-clock kernel throughput (the timing-sensitive subset
//! of Figure 16) — cycles/second of the fast (uninstrumented) execution
//! path for each kernel configuration, plus both baselines, on the same
//! mid-size RocketChip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rteaal_baselines::{EssentLike, VerilatorLike};
use rteaal_bench::experiments::graph_of;
use rteaal_designs::{rocket, ChipConfig};
use rteaal_dfg::plan::plan;
use rteaal_kernels::{Kernel, KernelConfig, OptLevel, ALL_KERNELS};

fn bench_kernels(c: &mut Criterion) {
    let circuit = rocket(ChipConfig::new(4));
    let graph = graph_of(&circuit);
    let sim_plan = plan(&graph);
    let mut group = c.benchmark_group("sim-throughput-rocket4");
    group.throughput(Throughput::Elements(100));
    for &kind in &ALL_KERNELS {
        let mut kernel = Kernel::compile(&sim_plan, KernelConfig::new(kind));
        kernel.set_input(0, 0xdead_beef);
        group.bench_with_input(BenchmarkId::new("rteaal", kind.label()), &kind, |b, _| {
            b.iter(|| kernel.run(100));
        });
    }
    let mut verilator = VerilatorLike::compile(&graph, OptLevel::Full);
    group.bench_function("verilator", |b| b.iter(|| verilator.run(100)));
    let mut essent = EssentLike::compile(&graph, OptLevel::Full);
    group.bench_function("essent", |b| b.iter(|| essent.run(100)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_kernels
}
criterion_main!(benches);
