//! Criterion: serving-pool throughput — jobs per second pushing a
//! mixed-length rv32i corpus through `ServerPool` across worker counts,
//! and the per-request latency of the submit→wait round trip. On a
//! 1-CPU container extra workers only add coordination overhead; on a
//! multi-core host the worker sweep shows the sharding payoff.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rteaal_core::Compiler;
use rteaal_designs::Workload;
use rteaal_kernels::{KernelConfig, KernelKind};
use rteaal_sched::Job;
use rteaal_serve::{JobHandle, ServeConfig, ServerPool};

const JOBS: usize = 16;

fn job_for(k: u64) -> Job {
    let mut job = Job::new(format!("sum-{k}"), Workload::param_sum_budget(k));
    job.state_pokes = vec![("x15".to_string(), k)];
    job.probes = vec!["a0".to_string()];
    job
}

fn bench_pool_throughput(c: &mut Criterion) {
    let ks = Workload::corpus_params(JOBS, 0xbe4c4);
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu))
        .compile(&Workload::param_sum_circuit())
        .expect("rv32i compiles");
    let mut group = c.benchmark_group("serve-pool-rv32i");
    group.throughput(Throughput::Elements(JOBS as u64));
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut cfg = ServeConfig::with_workers(workers);
                    cfg.lanes = 4;
                    let pool = ServerPool::new(&compiled, cfg, "halt").expect("halt resolves");
                    let handles: Vec<JobHandle> =
                        ks.iter().map(|&k| pool.submit(job_for(k))).collect();
                    let done = handles.iter().filter(|h| h.wait().completed()).count();
                    assert_eq!(done, JOBS);
                    pool.shutdown().merged.cycles
                });
            },
        );
    }
    group.finish();
}

fn bench_submit_wait_latency(c: &mut Criterion) {
    // One short job end to end: submission dispatch, lane admission,
    // harvest, result publication, handle wakeup.
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu))
        .compile(&Workload::param_sum_circuit())
        .expect("rv32i compiles");
    let mut cfg = ServeConfig::with_workers(1);
    cfg.lanes = 1;
    cfg.chunk_cycles = 16;
    let pool = ServerPool::new(&compiled, cfg, "halt").expect("halt resolves");
    let mut group = c.benchmark_group("serve-latency");
    group.throughput(Throughput::Elements(1));
    group.bench_function("submit-wait-k1", |b| {
        b.iter(|| {
            let r = pool.submit(job_for(1)).wait();
            assert!(r.completed());
            r.cycles
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_pool_throughput, bench_submit_wait_latency
}
criterion_main!(benches);
