//! Criterion: RepCut partition-parallel cycle latency — one lane, the
//! partition count as the parallelism axis. Partitioning splits each
//! layer's op schedule across worker threads that own disjoint replicas
//! of the LI tensor, so on a many-core box ns/cycle should fall with
//! the partition count until the replication overhead (the RUM sync and
//! the replicated fan-in cones) catches up. On a small box the curve is
//! flat-to-rising; the interesting measurement is where the crossover
//! sits for a given replication factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rteaal_bench::experiments::graph_of;
use rteaal_designs::{rocket, ChipConfig};
use rteaal_dfg::partition::PartitionedPlan;
use rteaal_dfg::plan::plan;
use rteaal_kernels::{BatchKernel, BatchLiState, KernelConfig, KernelKind};

const CYCLES: u64 = 50;

fn bench_repcut_partitions(c: &mut Criterion) {
    let circuit = rocket(ChipConfig::new(4));
    let sim_plan = plan(&graph_of(&circuit));
    let mut group = c.benchmark_group("repcut-partitions-rocket4");
    group.throughput(Throughput::Elements(CYCLES));
    for parts in [1usize, 2, 4, 8] {
        let pp = PartitionedPlan::new(&sim_plan, parts);
        let kernel = BatchKernel::compile_partitioned(&pp, KernelConfig::new(KernelKind::Psu));
        let mut st = BatchLiState::new_partitioned(&sim_plan, 1, &pp);
        st.set_input_all(0, 0xdead_beef);
        group.bench_with_input(BenchmarkId::new("parts", parts), &parts, |b, _| {
            b.iter(|| kernel.run_parallel(&mut st, CYCLES, parts));
        });
    }
    group.finish();
}

fn bench_repcut_partitions_batched(c: &mut Criterion) {
    // Partitioning composed with lanes: the 2-D (partition x lane-chunk)
    // decomposition the engine actually schedules. Threads outnumber
    // partitions here, so lane chunks subdivide each partition's rows.
    let circuit = rocket(ChipConfig::new(4));
    let sim_plan = plan(&graph_of(&circuit));
    let lanes = 16usize;
    let mut group = c.benchmark_group("repcut-partitions-batched-rocket4");
    group.throughput(Throughput::Elements(CYCLES * lanes as u64));
    for parts in [1usize, 2, 4] {
        let pp = PartitionedPlan::new(&sim_plan, parts);
        let kernel = BatchKernel::compile_partitioned(&pp, KernelConfig::new(KernelKind::Psu));
        let mut st = BatchLiState::new_partitioned(&sim_plan, lanes, &pp);
        st.set_input_all(0, 0xdead_beef);
        group.bench_with_input(BenchmarkId::new("parts", parts), &parts, |b, _| {
            b.iter(|| kernel.run_parallel(&mut st, CYCLES, 8));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_repcut_partitions, bench_repcut_partitions_batched
}
criterion_main!(benches);
