//! Property-based bit-exactness proof for the whole-design
//! specialization tier: for random register networks rich in 1-bit
//! control signals, the specialized engine — with and without
//! bit-packed lanes, flat and RepCut-partitioned {1, 2} — must be
//! bit-identical to the interpreted golden model on every observable
//! slot of every lane of every cycle, across live-window shrinks and
//! DMI-style architectural pokes.

use proptest::prelude::*;
use rteaal_dfg::partition::PartitionedPlan;
use rteaal_dfg::plan::plan;
use rteaal_dfg::{specialize, BatchPlanSim, SimPlan};
use rteaal_firrtl::{lower::lower_typed, parser::parse};
use rteaal_kernels::{BatchKernel, BatchLiState, KernelConfig, KernelKind};

/// splitmix64 — dependent random values derived from one generated seed.
fn mix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random control-heavy network: wide registers cross-coupled through
/// arithmetic, plus 1-bit flag registers fed by *inline* comparison and
/// boolean expressions — the anonymous 1-bit intermediates those create
/// are exactly what the bit-packing pass hunts for.
fn random_design(seed: u64, regs: usize, flags: usize) -> String {
    let mut s = seed;
    let mut src = String::from(
        "\
circuit S :
  module S :
    input clock : Clock
    input x : UInt<16>
    input en : UInt<1>
    output out : UInt<16>
    output flag : UInt<1>
",
    );
    for i in 0..regs {
        src.push_str(&format!("    reg r{i} : UInt<16>, clock\n"));
    }
    for i in 0..flags {
        src.push_str(&format!("    reg b{i} : UInt<1>, clock\n"));
    }
    for i in 0..regs {
        let a = mix(&mut s) as usize % regs;
        let b = mix(&mut s) as usize % regs;
        match mix(&mut s) % 4 {
            0 => src.push_str(&format!("    r{i} <= xor(r{a}, x)\n")),
            1 => src.push_str(&format!("    r{i} <= and(r{a}, not(r{b}))\n")),
            2 => src.push_str(&format!("    r{i} <= mux(en, or(r{a}, x), r{b})\n")),
            _ => src.push_str(&format!("    r{i} <= tail(add(r{a}, r{b}), 1)\n")),
        }
    }
    for i in 0..flags {
        let a = mix(&mut s) as usize % regs;
        let b = mix(&mut s) as usize % regs;
        let c = mix(&mut s) as usize % flags;
        match mix(&mut s) % 4 {
            0 => src.push_str(&format!("    b{i} <= and(eq(r{a}, r{b}), en)\n")),
            1 => src.push_str(&format!("    b{i} <= or(neq(r{a}, r{b}), b{c})\n")),
            2 => src.push_str(&format!("    b{i} <= xor(lt(r{a}, r{b}), not(b{c}))\n")),
            _ => src.push_str(&format!("    b{i} <= mux(en, geq(r{a}, r{b}), b{c})\n")),
        }
    }
    // Fold everything into the outputs so no register is trivially dead.
    src.push_str("    node f0 = r0\n");
    for i in 1..regs {
        src.push_str(&format!("    node f{i} = xor(f{}, r{i})\n", i - 1));
    }
    src.push_str(&format!("    out <= f{}\n", regs - 1));
    src.push_str("    node g0 = b0\n");
    for i in 1..flags {
        src.push_str(&format!("    node g{i} = xor(g{}, b{i})\n", i - 1));
    }
    src.push_str(&format!("    flag <= g{}\n", flags - 1));
    src
}

fn plan_of(src: &str) -> SimPlan {
    plan(&rteaal_dfg::build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap())
}

/// Strips probes down to inputs and register slots. `plan()` probes
/// every named node, and probed slots are pokeable — so observable —
/// which would leave the specializer nothing to fold, dedup, or pack.
fn anonymized(mut p: SimPlan) -> SimPlan {
    let keep: std::collections::HashSet<u32> = p
        .input_slots
        .iter()
        .copied()
        .chain(p.commits.iter().map(|&(d, _)| d))
        .collect();
    p.probes.retain(|&(_, s, _)| keep.contains(&s));
    p
}

/// Every slot whose value survives specialization with its meaning
/// intact: inputs, probes, outputs, and both ends of register commits.
fn observables(p: &SimPlan) -> Vec<u32> {
    let mut seen = std::collections::HashSet::new();
    p.input_slots
        .iter()
        .copied()
        .chain(p.probes.iter().map(|&(_, s, _)| s))
        .chain(p.output_slots.iter().map(|&(_, s)| s))
        .chain(p.commits.iter().flat_map(|&(d, s)| [d, s]))
        .filter(|&s| seen.insert(s))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn specialized_engines_match_the_interpreted_golden_model(
        seed in any::<u64>(),
        regs in 2usize..10,
        flags in 2usize..8,
        lanes in 1usize..7,
    ) {
        let src = random_design(seed, regs, flags);
        let p = anonymized(plan_of(&src));
        let sp = specialize(&p);
        prop_assert!(sp.stats.ops_after <= sp.stats.ops_before);
        let cfg = KernelConfig::new(KernelKind::Psu);

        // The interpreted walk of the *original* plan is the golden
        // model; observables share slot numbering across the transform.
        let mut golden = BatchPlanSim::interpreted(&p, lanes);
        let obs = observables(&p);

        // Engines under test: specialization off (the plain compiled
        // walk), on without packing, on with packing, and the
        // specialized plan through RepCut partitions {1, 2}.
        let plain_kernel = BatchKernel::compile(&p, cfg);
        let mut plain = BatchLiState::new(&p, lanes);
        let mut spec: Vec<(String, BatchKernel, BatchLiState)> = [false, true]
            .iter()
            .map(|&pack| {
                (
                    format!("spec pack={pack}"),
                    BatchKernel::compile_specialized(&sp, cfg, pack),
                    BatchLiState::new(&sp.plan, lanes),
                )
            })
            .collect();
        for parts in [1usize, 2] {
            let pp = PartitionedPlan::new(&sp.plan, parts);
            spec.push((
                format!("spec parts={parts}"),
                BatchKernel::compile_partitioned(&pp, cfg),
                BatchLiState::new_partitioned(&sp.plan, lanes, &pp),
            ));
        }

        let mut s = seed ^ 0xd1b5_4a32_d192_ed03;
        let (x_slot, en_slot) = (0usize, 1usize);

        // Phase 1: full window, fresh stimulus every cycle.
        for cycle in 0..10u64 {
            for lane in 0..lanes {
                let x = mix(&mut s);
                let en = mix(&mut s) & 1;
                golden.set_input(x_slot, lane, x);
                golden.set_input(en_slot, lane, en);
                plain.set_input(x_slot, lane, x);
                plain.set_input(en_slot, lane, en);
                for (_, _, st) in &mut spec {
                    st.set_input(x_slot, lane, x);
                    st.set_input(en_slot, lane, en);
                }
            }
            golden.step();
            plain_kernel.step(&mut plain);
            for (label, k, st) in &mut spec {
                k.step(st);
                for lane in 0..lanes {
                    for &slot in &obs {
                        prop_assert_eq!(
                            st.slot(slot, lane),
                            golden.slot_lanes(slot)[lane],
                            "{} vs golden: slot {} lane {} cycle {}",
                            label, slot, lane, cycle
                        );
                        prop_assert_eq!(
                            st.slot(slot, lane),
                            plain.slot(slot, lane),
                            "{} vs plain: slot {} lane {} cycle {}",
                            label, slot, lane, cycle
                        );
                    }
                }
            }
        }

        // Phase 2: shrink the live window (halt-compaction's engine
        // face) and poke architectural state mid-flight (the DMI path).
        // The interpreted model has no partial-window mode, so the
        // plain compiled walk is the reference.
        let live = 1 + mix(&mut s) as usize % lanes;
        plain.set_live(live);
        for (_, _, st) in &mut spec {
            st.set_live(live);
        }
        let poke_reg = p.commits[mix(&mut s) as usize % p.commits.len()].0;
        for cycle in 0..10u64 {
            let x = mix(&mut s);
            plain.set_input_live(x_slot, x);
            for (_, _, st) in &mut spec {
                st.set_input_live(x_slot, x);
            }
            if cycle == 4 {
                let v = mix(&mut s) & 0xffff;
                plain.poke_slot(poke_reg, 0, v);
                for (_, _, st) in &mut spec {
                    st.poke_slot(poke_reg, 0, v);
                }
            }
            plain_kernel.step(&mut plain);
            for (label, k, st) in &mut spec {
                k.step(st);
                for lane in 0..lanes {
                    for &slot in &obs {
                        prop_assert_eq!(
                            st.slot(slot, lane),
                            plain.slot(slot, lane),
                            "partial window {}: slot {} lane {} cycle {}",
                            label, slot, lane, cycle
                        );
                    }
                }
            }
        }
    }
}

/// Deterministic regression for the activity gate: a design whose
/// registers freeze when `en` drops must arm the whole-step skip, stay
/// bit-exact against the golden model that keeps walking (and keep its
/// cycle counter advancing), and disarm the moment a DMI poke lands.
#[test]
fn activity_skip_settles_and_stays_bit_exact() {
    const SRC: &str = "\
circuit S :
  module S :
    input clock : Clock
    input x : UInt<16>
    input en : UInt<1>
    output out : UInt<16>
    reg acc : UInt<16>, clock
    acc <= mux(en, tail(add(acc, x), 1), acc)
    out <= acc
";
    let p = anonymized(plan_of(SRC));
    let sp = specialize(&p);
    let cfg = KernelConfig::new(KernelKind::Psu);
    let k = BatchKernel::compile_specialized(&sp, cfg, true);
    let plain_kernel = BatchKernel::compile(&p, cfg);
    let lanes = 4usize;
    let mut st = BatchLiState::new(&sp.plan, lanes);
    let mut plain = BatchLiState::new(&p, lanes);
    let mut golden = BatchPlanSim::interpreted(&p, lanes);
    let obs = observables(&p);
    let drive = |st: &mut BatchLiState,
                 plain: &mut BatchLiState,
                 golden: &mut BatchPlanSim,
                 x: u64,
                 en: u64| {
        for lane in 0..lanes {
            for (idx, v) in [(0usize, x), (1, en)] {
                st.set_input(idx, lane, v);
                plain.set_input(idx, lane, v);
                golden.set_input(idx, lane, v);
            }
        }
    };

    // Accumulating phase: registers toggle every cycle, no settling.
    drive(&mut st, &mut plain, &mut golden, 7, 1);
    for _ in 0..5 {
        k.step(&mut st);
        plain_kernel.step(&mut plain);
        golden.step();
    }
    assert!(!st.settled(), "toggling registers must not settle");

    // Freeze: one tracked commit sees no change and arms the gate; the
    // skipped steps stay bit-exact while the golden model keeps walking,
    // and the clock keeps counting.
    drive(&mut st, &mut plain, &mut golden, 7, 0);
    k.step(&mut st);
    plain_kernel.step(&mut plain);
    golden.step();
    assert!(st.settled(), "frozen registers arm the activity gate");
    for cycle in 0..8u64 {
        k.step(&mut st);
        plain_kernel.step(&mut plain);
        golden.step();
        assert!(st.settled(), "no external event: the gate stays armed");
        for lane in 0..lanes {
            for &slot in &obs {
                assert_eq!(
                    st.slot(slot, lane),
                    golden.slot_lanes(slot)[lane],
                    "settled slot {slot} lane {lane} skip-cycle {cycle}"
                );
            }
        }
    }
    assert_eq!(st.cycle(), golden.cycle(), "skipped steps still count");

    // A DMI poke disarms the gate; the re-walked state must track the
    // plain compiled reference poked identically.
    let acc = p.commits[0].0;
    st.poke_slot(acc, 2, 99);
    plain.poke_slot(acc, 2, 99);
    assert!(!st.settled(), "a poke disarms the gate");
    for cycle in 0..4u64 {
        k.step(&mut st);
        plain_kernel.step(&mut plain);
        for lane in 0..lanes {
            for &slot in &obs {
                assert_eq!(
                    st.slot(slot, lane),
                    plain.slot(slot, lane),
                    "post-poke slot {slot} lane {lane} cycle {cycle}"
                );
            }
        }
    }
    // `acc <= acc` holds again, so the gate re-arms after one commit.
    assert!(st.settled(), "the gate re-arms at the new fixed point");
}
