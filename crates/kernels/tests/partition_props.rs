//! Property-based bit-exactness proof for the RepCut partition engine:
//! for random register networks and partition counts ∈ {1, 2, 4, 8},
//! the partitioned `step()` must be bit-identical to the unpartitioned
//! compiled walk and to the interpreted golden model on every slot of
//! every lane — including after the live lane window shrinks (the
//! early-exit path the scheduler drives).

use proptest::prelude::*;
use rteaal_dfg::partition::PartitionedPlan;
use rteaal_dfg::plan::plan;
use rteaal_dfg::{BatchPlanSim, SimPlan};
use rteaal_firrtl::{lower::lower_typed, parser::parse};
use rteaal_kernels::{BatchKernel, BatchLiState, KernelConfig, KernelKind};

/// splitmix64 — dependent random values derived from one generated seed.
fn mix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random cross-coupled register network: every register's next value
/// combines the input with other randomly chosen registers, so RepCut's
/// round-robin ownership is forced to replicate fan-in cones across
/// partitions (the interesting case for the RUM reconciliation).
fn random_design(seed: u64, regs: usize) -> String {
    let mut s = seed;
    let mut src = String::from(
        "\
circuit R :
  module R :
    input clock : Clock
    input x : UInt<16>
    output out : UInt<16>
",
    );
    for i in 0..regs {
        src.push_str(&format!("    reg r{i} : UInt<16>, clock\n"));
    }
    for i in 0..regs {
        let a = mix(&mut s) as usize % regs;
        let operand = if mix(&mut s).is_multiple_of(3) {
            "x".to_string()
        } else {
            format!("r{}", mix(&mut s) as usize % regs)
        };
        match mix(&mut s) % 4 {
            0 => src.push_str(&format!("    r{i} <= xor(r{a}, {operand})\n")),
            1 => src.push_str(&format!("    r{i} <= and(r{a}, not({operand}))\n")),
            2 => src.push_str(&format!("    r{i} <= or(r{a}, {operand})\n")),
            _ => src.push_str(&format!("    r{i} <= tail(add(r{a}, {operand}), 1)\n")),
        }
    }
    // Fold every register into the output so nothing is pruned as dead.
    src.push_str("    node f0 = r0\n");
    for i in 1..regs {
        src.push_str(&format!("    node f{i} = xor(f{}, r{i})\n", i - 1));
    }
    src.push_str(&format!("    out <= f{}\n", regs - 1));
    src
}

fn plan_of(src: &str) -> SimPlan {
    plan(&rteaal_dfg::build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn partitioned_step_matches_flat_walk_and_interpreted_golden_model(
        seed in any::<u64>(),
        regs in 2usize..20,
        lanes in 1usize..7,
    ) {
        let src = random_design(seed, regs);
        let p = plan_of(&src);
        let kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Psu));
        let mut flat = BatchLiState::new(&p, lanes);
        let mut golden = BatchPlanSim::interpreted(&p, lanes);
        let mut partitioned: Vec<(usize, BatchKernel, BatchLiState)> = [1usize, 2, 4, 8]
            .iter()
            .map(|&parts| {
                let pp = PartitionedPlan::new(&p, parts);
                assert!(pp.replication_factor() >= 1.0);
                let k = BatchKernel::compile_partitioned(&pp, KernelConfig::new(KernelKind::Psu));
                (parts, k, BatchLiState::new_partitioned(&p, lanes, &pp))
            })
            .collect();
        let mut s = seed ^ 0xd1b5_4a32_d192_ed03;

        // Phase 1: full lane window, all three models in lock-step.
        for cycle in 0..12u64 {
            for lane in 0..lanes {
                let x = mix(&mut s);
                flat.set_input(0, lane, x);
                golden.set_input(0, lane, x);
                for (_, _, st) in &mut partitioned {
                    st.set_input(0, lane, x);
                }
            }
            kernel.step(&mut flat);
            golden.step();
            for (parts, k, st) in &mut partitioned {
                k.step(st);
                for lane in 0..lanes {
                    for slot in 0..p.num_slots as u32 {
                        prop_assert_eq!(
                            st.slot(slot, lane),
                            flat.slot(slot, lane),
                            "parts={} slot {} lane {} cycle {}",
                            parts, slot, lane, cycle
                        );
                        prop_assert_eq!(
                            st.slot(slot, lane),
                            golden.slot_lanes(slot)[lane],
                            "golden parts={} slot {} lane {} cycle {}",
                            parts, slot, lane, cycle
                        );
                    }
                }
            }
        }

        // Phase 2: shrink the live window (the interpreted golden model
        // has no partial-window mode, so the flat compiled walk is the
        // reference here). Frozen lanes must stay bit-frozen too.
        let live = 1 + mix(&mut s) as usize % lanes;
        flat.set_live(live);
        for (_, _, st) in &mut partitioned {
            st.set_live(live);
        }
        for cycle in 0..12u64 {
            let x = mix(&mut s);
            flat.set_input_live(0, x);
            for (_, _, st) in &mut partitioned {
                st.set_input_live(0, x);
            }
            kernel.step(&mut flat);
            for (parts, k, st) in &mut partitioned {
                k.step(st);
                for lane in 0..lanes {
                    for slot in 0..p.num_slots as u32 {
                        prop_assert_eq!(
                            st.slot(slot, lane),
                            flat.slot(slot, lane),
                            "partial window parts={} slot {} lane {} cycle {}",
                            parts, slot, lane, cycle
                        );
                    }
                }
            }
        }
    }
}
