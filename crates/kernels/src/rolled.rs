//! The rolled kernels: RU, OU, NU, PSU, IU (paper §5.2).
//!
//! These kernels *traverse* the `OIM` coordinate arrays at runtime — the
//! tensor-algebra end of the unrolling spectrum. Each executor follows its
//! paper description:
//!
//! - **RU** — Algorithm 3 verbatim: `[I, S, N, O, R]` loops over format
//!   (b), a case-statement dispatch per operation, and operand staging
//!   through a `sel_inputs` buffer.
//! - **OU** — unrolls the `O` loop: operands are consumed directly from
//!   `LI`, removing the staging traffic and the inner-loop overhead.
//! - **NU** — Algorithm 4: swizzles to `[I, N, S, O, R]` over format (c);
//!   each operation type gets its own loop body, eliminating the dispatch.
//! - **PSU** — partially unrolls the `S` loops (8× for op loops, 24× for
//!   the writeback loop), amortizing loop overhead.
//! - **IU** — fully unrolls the `I` rank into a flat schedule of
//!   non-empty `(layer, type)` groups, eliminating zero-iteration `S`
//!   loops at the cost of per-group code (the Table 4 jump from 0.35 MB
//!   to 0.91 MB).
//!
//! All five share the same per-operation semantics
//! ([`rteaal_dfg::op::eval_raw`]), so they are bit-identical to each other
//! and to the reference interpreters; they differ only in traversal,
//! instruction/branch overhead, and memory reference streams — exactly
//! the axes Tables 5–6 measure.

use crate::config::{KernelConfig, KernelKind, OptLevel};
use crate::profile::{li_addr, oim_addr, OimArray, Probe, CODE_BASE, HANDLER_BYTES};
use crate::state::LiState;
use rteaal_dfg::op::{canonicalize, eval_raw, DfgOp, NUM_OPCODES};
use rteaal_dfg::SimPlan;
use rteaal_tensor::oim::{OimOptimized, OimSwizzled};

/// Code address of the outer-loop bookkeeping.
const LOOP_ADDR: u64 = CODE_BASE;
/// Code address of the case-statement dispatch (RU/OU).
const DISPATCH_ADDR: u64 = CODE_BASE + 0x100;
/// Base of the per-opcode handler region.
const HANDLER_BASE: u64 = CODE_BASE + 0x1000;
/// Base of IU's per-group specialized loop bodies.
const IU_GROUP_BASE: u64 = CODE_BASE + 0x10_0000;
/// Code bytes per IU group body.
const IU_GROUP_BYTES: u64 = 128;
/// Scratch region for RU's `sel_inputs` staging buffer and `-O0` spills.
const SCRATCH_BASE: u64 = 0x3000_0000;

/// Code address of opcode `n`'s handler / specialized loop.
#[inline]
fn handler(n: u16) -> u64 {
    HANDLER_BASE + n as u64 * HANDLER_BYTES
}

/// Compute-only instruction cost of an op (loads/stores/branches are
/// accounted separately by the probe).
#[inline]
pub(crate) fn exec_cost(op: DfgOp, arity: usize) -> u32 {
    match op {
        DfgOp::Mul | DfgOp::Divu | DfgOp::Divs | DfgOp::Remu | DfgOp::Rems => 4,
        DfgOp::MuxChain => arity as u32,
        _ => 2,
    }
}

/// One IU schedule entry: a non-empty `(layer, type)` group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IuGroup {
    n: u16,
    /// Range into the swizzled op arrays.
    start: u32,
    len: u32,
    /// This group's own code body.
    code_addr: u64,
}

/// A compiled rolled kernel.
#[derive(Debug, Clone)]
pub struct RolledKernel {
    cfg: KernelConfig,
    /// Format (b) arrays (RU/OU).
    oim_b: Option<OimOptimized>,
    /// Format (c) arrays (NU/PSU/IU).
    oim_c: Option<OimSwizzled>,
    /// IU's flattened non-empty-group schedule.
    schedule: Vec<IuGroup>,
    /// Distinct opcodes used (handler footprint).
    used_opcodes: usize,
}

impl RolledKernel {
    /// Compiles a plan for the given rolled-kernel configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.kind` is SU or TI (see `crate::unrolled`).
    pub fn compile(plan: &SimPlan, cfg: KernelConfig) -> Self {
        assert!(
            !cfg.kind.is_unrolled(),
            "SU/TI are handled by UnrolledKernel"
        );
        let mut used = [false; NUM_OPCODES];
        for layer in &plan.layers {
            for op in layer {
                used[op.n as usize] = true;
            }
        }
        let used_opcodes = used.iter().filter(|&&u| u).count();
        let (oim_b, oim_c, schedule) = match cfg.kind {
            KernelKind::Ru | KernelKind::Ou => (Some(OimOptimized::from_plan(plan)), None, vec![]),
            KernelKind::Nu | KernelKind::Psu => (None, Some(OimSwizzled::from_plan(plan)), vec![]),
            KernelKind::Iu => {
                let oim = OimSwizzled::from_plan(plan);
                let mut schedule = Vec::new();
                for i in 0..oim.num_layers {
                    for n in 0..NUM_OPCODES as u16 {
                        let range = oim.group(i, n);
                        if !range.is_empty() {
                            let code_addr = IU_GROUP_BASE + schedule.len() as u64 * IU_GROUP_BYTES;
                            schedule.push(IuGroup {
                                n,
                                start: range.start as u32,
                                len: range.len() as u32,
                                code_addr,
                            });
                        }
                    }
                }
                (None, Some(oim), schedule)
            }
            KernelKind::Su | KernelKind::Ti => unreachable!(),
        };
        RolledKernel {
            cfg,
            oim_b,
            oim_c,
            schedule,
            used_opcodes,
        }
    }

    /// The configuration.
    pub fn config(&self) -> KernelConfig {
        self.cfg
    }

    /// Static code footprint of the kernel (the Table 4 "binary size"
    /// analog, excluding the OIM data).
    pub fn code_bytes(&self) -> u64 {
        let interpreter = 0x1000; // loops, dispatch, commit
        let handlers = self.used_opcodes as u64 * HANDLER_BYTES;
        let groups = self.schedule.len() as u64 * IU_GROUP_BYTES;
        interpreter + handlers + groups
    }

    /// In-memory bytes of the OIM arrays the kernel traverses (D-cache
    /// resident data).
    pub fn data_bytes(&self) -> u64 {
        match (&self.oim_b, &self.oim_c) {
            (Some(b), _) => b.memory_bytes() as u64,
            (_, Some(c)) => c.memory_bytes() as u64,
            _ => 0,
        }
    }

    /// One simulated clock cycle.
    pub fn step<P: Probe>(&self, st: &mut LiState, probe: &mut P) {
        match self.cfg.kind {
            KernelKind::Ru => self.step_ru(st, probe),
            KernelKind::Ou => self.step_ou(st, probe),
            KernelKind::Nu => self.step_grouped(st, probe, 1),
            KernelKind::Psu => self.step_grouped(st, probe, self.cfg.psu_op_unroll),
            KernelKind::Iu => self.step_iu(st, probe),
            KernelKind::Su | KernelKind::Ti => unreachable!(),
        }
        let wb_unroll = match self.cfg.kind {
            KernelKind::Ru | KernelKind::Ou | KernelKind::Nu => 1,
            _ => self.cfg.psu_writeback_unroll,
        };
        st.commit(probe, wb_unroll, LiState::commit_code_addr());
    }

    /// Extra per-operand spill traffic at the `-O0` analog (every value
    /// round-trips through the stack, as unoptimized C++ does).
    #[inline]
    fn spill<P: Probe>(&self, probe: &mut P, o: usize) {
        if self.cfg.opt == OptLevel::None {
            probe.store(SCRATCH_BASE + 0x1000 + o as u64 * 8);
            probe.load(SCRATCH_BASE + 0x1000 + o as u64 * 8);
        }
    }

    /// `-O0` result round-trip plus statement prologue/epilogue.
    #[inline]
    fn o0_result<P: Probe>(&self, probe: &mut P, addr: u64) {
        if self.cfg.opt == OptLevel::None {
            probe.store(SCRATCH_BASE + 0x2000);
            probe.load(SCRATCH_BASE + 0x2000);
            probe.exec(addr, 6);
        }
    }

    #[inline]
    fn o0_mul(&self) -> u32 {
        match self.cfg.opt {
            OptLevel::Full => 1,
            OptLevel::None => 4,
        }
    }

    /// RU: Algorithm 3 with the `sel_inputs` staging buffer.
    fn step_ru<P: Probe>(&self, st: &mut LiState, probe: &mut P) {
        let oim = self.oim_b.as_ref().expect("RU uses format (b)");
        let mut buf: Vec<u64> = Vec::with_capacity(16);
        let mut k = 0usize;
        for i in 0..oim.num_layers() {
            probe.branch(LOOP_ADDR);
            probe.load(oim_addr(OimArray::IPayloads, i, 4));
            for _ in 0..oim.i_payloads[i] {
                probe.branch(LOOP_ADDR + 0x20);
                let op_ref = oim.op_at(k);
                probe.load(oim_addr(OimArray::NCoords, k, 2));
                probe.load(oim_addr(OimArray::SCoords, k, 4));
                probe.load(oim_addr(OimArray::Meta, k, 24));
                let op = op_ref.op();
                // The op_r[n]/op_u[n] case statement: an indirect jump.
                probe.branch(DISPATCH_ADDR);
                let r_base = oim.r_offsets[k] as usize;
                buf.clear();
                for (o, &r) in op_ref.rs.iter().enumerate() {
                    // O loop: per-iteration overhead plus staging.
                    probe.branch(LOOP_ADDR + 0x40);
                    probe.load(oim_addr(OimArray::RCoords, r_base + o, 4));
                    probe.load(li_addr(r));
                    probe.store(SCRATCH_BASE + o as u64 * 8);
                    buf.push(st.li[r as usize]);
                }
                // Evaluation reloads the staged operands.
                for o in 0..op_ref.rs.len() {
                    probe.load(SCRATCH_BASE + o as u64 * 8);
                    self.spill(probe, o);
                }
                let arity = op_ref.rs.len();
                probe.exec(handler(op_ref.n), exec_cost(op, arity) * self.o0_mul());
                let raw = eval_raw(op, op_ref.params(), &buf);
                let v = canonicalize(raw, op_ref.meta.width as u32, op_ref.meta.signed);
                probe.store(li_addr(op_ref.s));
                self.o0_result(probe, handler(op_ref.n));
                st.li[op_ref.s as usize] = v;
                k += 1;
            }
        }
    }

    /// OU: O-rank unrolled — operands consumed directly from `LI`.
    fn step_ou<P: Probe>(&self, st: &mut LiState, probe: &mut P) {
        let oim = self.oim_b.as_ref().expect("OU uses format (b)");
        let mut buf: Vec<u64> = Vec::with_capacity(16);
        let mut k = 0usize;
        for i in 0..oim.num_layers() {
            probe.branch(LOOP_ADDR);
            probe.load(oim_addr(OimArray::IPayloads, i, 4));
            for _ in 0..oim.i_payloads[i] {
                probe.branch(LOOP_ADDR + 0x20);
                let op_ref = oim.op_at(k);
                probe.load(oim_addr(OimArray::NCoords, k, 2));
                probe.load(oim_addr(OimArray::SCoords, k, 4));
                probe.load(oim_addr(OimArray::Meta, k, 24));
                let op = op_ref.op();
                probe.branch(DISPATCH_ADDR);
                let r_base = oim.r_offsets[k] as usize;
                buf.clear();
                for (o, &r) in op_ref.rs.iter().enumerate() {
                    probe.load(oim_addr(OimArray::RCoords, r_base + o, 4));
                    probe.load(li_addr(r));
                    self.spill(probe, o);
                    buf.push(st.li[r as usize]);
                }
                let arity = op_ref.rs.len();
                probe.exec(handler(op_ref.n), exec_cost(op, arity) * self.o0_mul());
                let raw = eval_raw(op, op_ref.params(), &buf);
                let v = canonicalize(raw, op_ref.meta.width as u32, op_ref.meta.signed);
                probe.store(li_addr(op_ref.s));
                self.o0_result(probe, handler(op_ref.n));
                st.li[op_ref.s as usize] = v;
                k += 1;
            }
        }
    }

    /// NU/PSU: Algorithm 4 over the swizzled format; `s_unroll` amortizes
    /// the per-op loop overhead (1 = NU, 8 = PSU).
    fn step_grouped<P: Probe>(&self, st: &mut LiState, probe: &mut P, s_unroll: usize) {
        let oim = self.oim_c.as_ref().expect("NU/PSU use format (c)");
        let s_unroll = s_unroll.max(1);
        let mut buf: Vec<u64> = Vec::with_capacity(16);
        for i in 0..oim.num_layers {
            probe.branch(LOOP_ADDR);
            for n in 0..NUM_OPCODES as u16 {
                // Unrolled N rank: each type's loop reads its own count.
                probe.load(oim_addr(
                    OimArray::NPayloads,
                    i * NUM_OPCODES + n as usize,
                    4,
                ));
                probe.exec(handler(n), self.o0_mul()); // the count check itself
                let range = oim.group(i, n);
                if range.is_empty() {
                    continue;
                }
                let op = DfgOp::from_n_coord(n).expect("valid opcode");
                for (count, k) in range.enumerate() {
                    if count % s_unroll == 0 {
                        probe.branch(handler(n) + 0x40);
                    }
                    let (s, rs, meta) = oim.op_at(k);
                    probe.load(oim_addr(OimArray::SCoords, k, 4));
                    // Specialized per-type loops bake widths/masks into
                    // code; only ops with per-op parameters read the side
                    // table.
                    if param_count(op) > 0 || op == DfgOp::MuxChain {
                        probe.load(oim_addr(OimArray::Meta, k, 24));
                    }
                    let r_base = oim.r_offsets[k] as usize;
                    buf.clear();
                    for (o, &r) in rs.iter().enumerate() {
                        probe.load(oim_addr(OimArray::RCoords, r_base + o, 4));
                        probe.load(li_addr(r));
                        self.spill(probe, o);
                        buf.push(st.li[r as usize]);
                    }
                    let arity = rs.len();
                    probe.exec(handler(n) + 0x50, exec_cost(op, arity) * self.o0_mul());
                    let raw = eval_raw(op, &meta.params[..param_count(op)], &buf);
                    let v = canonicalize(raw, meta.width as u32, meta.signed);
                    probe.store(li_addr(s));
                    self.o0_result(probe, handler(n));
                    st.li[s as usize] = v;
                }
            }
        }
    }

    /// IU: the flattened non-empty-group schedule (zero-iteration `S`
    /// loops eliminated; each group has its own code body).
    fn step_iu<P: Probe>(&self, st: &mut LiState, probe: &mut P) {
        let oim = self.oim_c.as_ref().expect("IU uses format (c)");
        let s_unroll = self.cfg.psu_op_unroll.max(1);
        let mut buf: Vec<u64> = Vec::with_capacity(16);
        for group in &self.schedule {
            let op = DfgOp::from_n_coord(group.n).expect("valid opcode");
            for (count, k) in (group.start..group.start + group.len).enumerate() {
                let k = k as usize;
                if count % s_unroll == 0 {
                    probe.branch(group.code_addr);
                }
                let (s, rs, meta) = oim.op_at(k);
                probe.load(oim_addr(OimArray::SCoords, k, 4));
                if param_count(op) > 0 || op == DfgOp::MuxChain {
                    probe.load(oim_addr(OimArray::Meta, k, 24));
                }
                let r_base = oim.r_offsets[k] as usize;
                buf.clear();
                for (o, &r) in rs.iter().enumerate() {
                    probe.load(oim_addr(OimArray::RCoords, r_base + o, 4));
                    probe.load(li_addr(r));
                    self.spill(probe, o);
                    buf.push(st.li[r as usize]);
                }
                let arity = rs.len();
                probe.exec(group.code_addr + 0x10, exec_cost(op, arity) * self.o0_mul());
                let raw = eval_raw(op, &meta.params[..param_count(op)], &buf);
                let v = canonicalize(raw, meta.width as u32, meta.signed);
                probe.store(li_addr(s));
                self.o0_result(probe, group.code_addr);
                st.li[s as usize] = v;
            }
        }
    }
}

/// Real static-parameter count of an op (the meta table stores two slots).
#[inline]
pub(crate) fn param_count(op: DfgOp) -> usize {
    use DfgOp::*;
    match op {
        Cat | Bits | Head => 2,
        Andr | Xorr | Shl | Shr => 1,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{MemProbe, NoProbe};
    use rand::{Rng, SeedableRng};
    use rteaal_dfg::plan::{plan, PlanSim};
    use rteaal_firrtl::{lower::lower_typed, parser::parse};
    use rteaal_perfmodel::Machine;

    const DESIGN: &str = "\
circuit D :
  module D :
    input clock : Clock
    input x : UInt<16>
    input sel : UInt<1>
    output out : UInt<16>
    output flag : UInt<1>
    reg a : UInt<16>, clock
    reg b : UInt<16>, clock
    node s = tail(add(a, x), 1)
    node t = xor(b, cat(bits(x, 7, 0), bits(x, 15, 8)))
    a <= mux(sel, s, t)
    b <= tail(sub(a, x), 1)
    out <= a
    flag <= orr(b)
";

    fn plan_of(src: &str) -> SimPlan {
        plan(&rteaal_dfg::build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap())
    }

    fn rolled_kinds() -> [KernelKind; 5] {
        [
            KernelKind::Ru,
            KernelKind::Ou,
            KernelKind::Nu,
            KernelKind::Psu,
            KernelKind::Iu,
        ]
    }

    #[test]
    fn all_rolled_kernels_match_plan_sim() {
        let p = plan_of(DESIGN);
        for kind in rolled_kinds() {
            let kernel = RolledKernel::compile(&p, KernelConfig::new(kind));
            let mut st = LiState::new(&p);
            let mut golden = PlanSim::new(&p);
            let mut rng = rand::rngs::StdRng::seed_from_u64(kind as u64);
            for _ in 0..200 {
                let x: u64 = rng.gen();
                let sel: u64 = rng.gen();
                st.set_input(0, x);
                st.set_input(1, sel);
                golden.set_input(0, x);
                golden.set_input(1, sel);
                kernel.step(&mut st, &mut NoProbe);
                golden.step();
                assert_eq!(st.output(0), golden.output(0), "{kind:?} out diverged");
                assert_eq!(st.output(1), golden.output(1), "{kind:?} flag diverged");
            }
        }
    }

    #[test]
    fn profiled_execution_is_bit_identical() {
        let p = plan_of(DESIGN);
        for kind in rolled_kinds() {
            let kernel = RolledKernel::compile(&p, KernelConfig::new(kind));
            let mut fast = LiState::new(&p);
            let mut prof = LiState::new(&p);
            let mut mem = Machine::intel_core().mem_sim();
            let mut probe = MemProbe::new(&mut mem);
            for c in 0..50u64 {
                fast.set_input(0, c * 7);
                fast.set_input(1, c & 1);
                prof.set_input(0, c * 7);
                prof.set_input(1, c & 1);
                kernel.step(&mut fast, &mut NoProbe);
                kernel.step(&mut prof, &mut probe);
                assert_eq!(fast.output(0), prof.output(0));
            }
            assert!(probe.counters.instructions > 0);
        }
    }

    /// A design large enough that per-op costs dominate per-layer and
    /// per-type overheads (the regime the paper's designs live in).
    fn big_design() -> String {
        let mut src = String::from(
            "\
circuit Big :
  module Big :
    input clock : Clock
    input x : UInt<32>
    output out : UInt<32>
",
        );
        for i in 0..300 {
            src.push_str(&format!("    reg r{i} : UInt<32>, clock\n"));
        }
        src.push_str("    r0 <= tail(add(r299, x), 1)\n");
        for i in 1..300 {
            let op = ["xor", "and", "or"][i % 3];
            src.push_str(&format!("    r{i} <= {op}(r{}, x)\n", i - 1));
        }
        src.push_str("    out <= r299\n");
        src
    }

    #[test]
    fn dynamic_instructions_decrease_with_unrolling() {
        // Table 5's left-to-right trend: RU > OU > NU > PSU >= IU.
        let p = plan_of(&big_design());
        let mut counts = Vec::new();
        for kind in rolled_kinds() {
            let kernel = RolledKernel::compile(&p, KernelConfig::new(kind));
            let mut st = LiState::new(&p);
            let mut mem = Machine::intel_core().mem_sim();
            let mut probe = MemProbe::new(&mut mem);
            for _ in 0..20 {
                kernel.step(&mut st, &mut probe);
            }
            counts.push(probe.counters.instructions);
        }
        assert!(
            counts[0] > counts[1],
            "RU {} !> OU {}",
            counts[0],
            counts[1]
        );
        assert!(
            counts[1] > counts[2],
            "OU {} !> NU {}",
            counts[1],
            counts[2]
        );
        assert!(
            counts[2] > counts[3],
            "NU {} !> PSU {}",
            counts[2],
            counts[3]
        );
        assert!(
            counts[3] >= counts[4],
            "PSU {} !>= IU {}",
            counts[3],
            counts[4]
        );
    }

    #[test]
    fn branch_counts_drop_with_unrolling() {
        let p = plan_of(DESIGN);
        let count = |kind| {
            let kernel = RolledKernel::compile(&p, KernelConfig::new(kind));
            let mut st = LiState::new(&p);
            let mut mem = Machine::intel_core().mem_sim();
            let mut probe = MemProbe::new(&mut mem);
            for _ in 0..20 {
                kernel.step(&mut st, &mut probe);
            }
            probe.counters.branches
        };
        assert!(count(KernelKind::Ru) > count(KernelKind::Nu));
        assert!(count(KernelKind::Nu) > count(KernelKind::Psu));
    }

    #[test]
    fn iu_code_grows_beyond_psu() {
        // Table 4: IU 0.91 MB vs PSU 0.35 MB (here: relative, not absolute).
        let p = plan_of(DESIGN);
        let psu = RolledKernel::compile(&p, KernelConfig::new(KernelKind::Psu));
        let iu = RolledKernel::compile(&p, KernelConfig::new(KernelKind::Iu));
        assert!(iu.code_bytes() > psu.code_bytes());
        assert_eq!(psu.data_bytes(), iu.data_bytes());
    }

    #[test]
    fn o0_analog_inflates_instruction_count() {
        let p = plan_of(&big_design());
        let run = |cfg| {
            let kernel = RolledKernel::compile(&p, cfg);
            let mut st = LiState::new(&p);
            let mut mem = Machine::intel_core().mem_sim();
            let mut probe = MemProbe::new(&mut mem);
            for _ in 0..20 {
                kernel.step(&mut st, &mut probe);
            }
            probe.counters.instructions
        };
        let o3 = run(KernelConfig::new(KernelKind::Psu));
        let o0 = run(KernelConfig::unoptimized(KernelKind::Psu));
        let ratio = o0 as f64 / o3 as f64;
        assert!(ratio > 1.5 && ratio < 8.0, "ratio = {ratio}"); // paper: ~3.8x
    }

    #[test]
    fn o0_behavior_is_unchanged() {
        let p = plan_of(DESIGN);
        let k3 = RolledKernel::compile(&p, KernelConfig::new(KernelKind::Nu));
        let k0 = RolledKernel::compile(&p, KernelConfig::unoptimized(KernelKind::Nu));
        let mut s3 = LiState::new(&p);
        let mut s0 = LiState::new(&p);
        for c in 0..50u64 {
            s3.set_input(0, c * 13);
            s0.set_input(0, c * 13);
            k3.step(&mut s3, &mut NoProbe);
            k0.step(&mut s0, &mut NoProbe);
            assert_eq!(s3.output(0), s0.output(0));
        }
    }
}
