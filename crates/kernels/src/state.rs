//! Shared runtime state for all kernels: the `LI` slot array, input
//! binding, register commit, and output reads.

use crate::profile::{li_addr, Probe, CODE_BASE};
use rteaal_dfg::op::canonicalize;
use rteaal_dfg::SimPlan;

/// The mutable simulation state a kernel executes against.
#[derive(Debug, Clone)]
pub struct LiState {
    /// The `LI` slot array (canonical values).
    pub li: Vec<u64>,
    init: Vec<u64>,
    input_slots: Vec<u32>,
    input_types: Vec<(u8, bool)>,
    output_slots: Vec<(String, u32)>,
    commits: Vec<(u32, u32)>,
    commit_buf: Vec<u64>,
    cycle: u64,
}

impl LiState {
    /// Initializes state from a plan (registers at power-on values,
    /// constants materialized).
    pub fn new(plan: &SimPlan) -> Self {
        LiState {
            li: plan.init_values.clone(),
            init: plan.init_values.clone(),
            input_slots: plan.input_slots.clone(),
            input_types: plan.input_types.clone(),
            output_slots: plan.output_slots.clone(),
            commits: plan.commits.clone(),
            commit_buf: vec![0; plan.commits.len()],
            cycle: 0,
        }
    }

    /// Resets registers and constants to their initial values.
    pub fn reset(&mut self) {
        self.li.copy_from_slice(&self.init);
        self.cycle = 0;
    }

    /// Drives input port `idx` (canonicalized to the port type).
    pub fn set_input(&mut self, idx: usize, value: u64) {
        let (w, signed) = self.input_types[idx];
        self.li[self.input_slots[idx] as usize] = canonicalize(value, w as u32, signed);
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        self.input_slots.len()
    }

    /// Output value by port index.
    pub fn output(&self, idx: usize) -> u64 {
        self.li[self.output_slots[idx].1 as usize]
    }

    /// Output value by port name.
    pub fn output_by_name(&self, name: &str) -> Option<u64> {
        self.output_slots
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| self.li[*s as usize])
    }

    /// Reads an arbitrary slot (probe / waveform path).
    pub fn slot(&self, s: u32) -> u64 {
        self.li[s as usize]
    }

    /// Writes a register slot directly (DMI poke).
    pub fn poke_slot(&mut self, s: u32, value: u64) {
        self.li[s as usize] = value;
    }

    /// Cycles completed.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Two-phase register commit — the final `LI_{i+1}` Einsum of
    /// Cascade 1, i.e. the "write LO back to LI" loop of Algorithm 3.
    ///
    /// `unroll` amortizes the loop-overhead accounting (PSU unrolls this
    /// loop 24×, §5.2); `code_addr` locates the loop in the code-space
    /// model.
    #[inline]
    pub fn commit<P: Probe>(&mut self, probe: &mut P, unroll: usize, code_addr: u64) {
        let unroll = unroll.max(1);
        for (k, &(_, src)) in self.commits.iter().enumerate() {
            probe.load(li_addr(src));
            self.commit_buf[k] = self.li[src as usize];
            if k % unroll == 0 {
                probe.branch(code_addr);
            }
        }
        for (k, &(dst, _)) in self.commits.iter().enumerate() {
            probe.store(li_addr(dst));
            self.li[dst as usize] = self.commit_buf[k];
            if k % unroll == 0 {
                probe.branch(code_addr + 64);
            }
        }
        self.cycle += 1;
    }

    /// Default commit code address (shared loop in the interpreter region).
    pub fn commit_code_addr() -> u64 {
        CODE_BASE + 0x200
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::NoProbe;
    use rteaal_dfg::plan::plan;
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    fn state_of(src: &str) -> (SimPlan, LiState) {
        let g = rteaal_dfg::build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap();
        let p = plan(&g);
        let s = LiState::new(&p);
        (p, s)
    }

    const SWAP: &str = "\
circuit S :
  module S :
    input clock : Clock
    output oa : UInt<4>
    output ob : UInt<4>
    reg a : UInt<4>, clock
    reg b : UInt<4>, clock
    a <= b
    b <= a
    oa <= a
    ob <= b
";

    #[test]
    fn commit_is_two_phase() {
        let (p, mut st) = state_of(SWAP);
        // Registers occupy the first slots; poke them directly.
        st.poke_slot(p.commits[0].0, 3);
        st.poke_slot(p.commits[1].0, 9);
        st.commit(&mut NoProbe, 1, LiState::commit_code_addr());
        assert_eq!(st.output_by_name("oa"), Some(9));
        assert_eq!(st.output_by_name("ob"), Some(3));
        assert_eq!(st.cycle(), 1);
    }

    #[test]
    fn inputs_canonicalized() {
        let (_, mut st) = state_of(
            "\
circuit I :
  module I :
    input x : UInt<4>
    output o : UInt<4>
    o <= x
",
        );
        st.set_input(0, 0xfff);
        // Input and output share the slot here (pure wire).
        assert_eq!(st.output(0), 0xf);
    }

    #[test]
    fn reset_restores_registers() {
        let (p, mut st) = state_of(SWAP);
        st.poke_slot(p.commits[0].0, 7);
        st.reset();
        assert_eq!(st.slot(p.commits[0].0), 0);
        assert_eq!(st.cycle(), 0);
    }
}
