//! The unrolled kernels: SU and TI (paper §5.2).
//!
//! **SU** fully unrolls the `S` rank: the `OIM` is encoded *into the
//! instruction stream* — one straight-line instruction block per
//! operation, no coordinate metadata, no loop overhead. Data becomes
//! instructions: D-cache pressure turns into I-cache pressure (Table 6's
//! L1D-load collapse and L1I-miss explosion between IU and SU).
//!
//! **TI** adds *tensor inlining*: the array-based `LI`/`LO` representation
//! is replaced by individual variables wherever possible, giving the
//! compiler "maximum flexibility to bind values to registers, reorder
//! instructions, or eliminate them entirely". Concretely:
//!
//! - reads of constant slots become immediates,
//! - a value consumed only by the immediately following instruction is
//!   forwarded through a virtual accumulator instead of `LI`,
//! - stores of values nobody else reads are eliminated,
//! - instruction blocks are laid out compactly (TI's binary is *smaller*
//!   than SU's, Table 4: 5.3 MB vs 6.0 MB).

use crate::config::{KernelConfig, KernelKind, OptLevel};
use crate::profile::{li_addr, Probe, CODE_BASE, INSTR_BYTES};
use crate::rolled::{exec_cost, param_count};
use crate::state::LiState;
use rteaal_dfg::op::{canonicalize, eval_raw, DfgOp};
use rteaal_dfg::SimPlan;
use std::collections::{HashMap, HashSet};

/// Base of the unrolled instruction stream in the code-space model.
const STREAM_BASE: u64 = CODE_BASE + 0x100_0000;

/// An operand source after tensor inlining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Load from an `LI` slot.
    Slot(u32),
    /// Inlined immediate (constant slot).
    Imm(u64),
    /// Forwarded from the previous instruction's result (virtual
    /// register).
    Acc,
}

/// One straight-line instruction: a fully specialized operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// The operation.
    pub op: DfgOp,
    /// Destination slot.
    pub out: u32,
    /// Whether the result is written back to `LI` (TI elides dead
    /// stores).
    pub store_out: bool,
    /// Operand sources.
    pub operands: Vec<Operand>,
    /// Static parameters.
    pub params: [u64; 2],
    /// Result width.
    pub width: u8,
    /// Result signedness.
    pub signed: bool,
    /// Code address of this block.
    pub code_addr: u64,
}

impl Instr {
    /// Modeled machine instructions in this block: one compute sequence,
    /// a load per slot operand, a store if kept.
    pub fn machine_instrs(&self) -> u32 {
        let loads = self
            .operands
            .iter()
            .filter(|o| matches!(o, Operand::Slot(_)))
            .count();
        exec_cost(self.op, self.operands.len()) + loads as u32 + if self.store_out { 1 } else { 0 }
    }

    /// Code bytes this block occupies.
    pub fn code_bytes(&self) -> u64 {
        (self.machine_instrs() as u64 * INSTR_BYTES).max(4)
    }
}

/// A compiled straight-line kernel (SU or TI).
#[derive(Debug, Clone)]
pub struct UnrolledKernel {
    cfg: KernelConfig,
    instrs: Vec<Instr>,
    code_bytes: u64,
    /// Stores eliminated by TI (reporting).
    pub stores_elided: usize,
    /// Operands turned into immediates by TI.
    pub imms_inlined: usize,
    /// Operands forwarded through the accumulator by TI.
    pub forwards: usize,
}

impl UnrolledKernel {
    /// Compiles a plan into a straight-line kernel.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.kind` is not SU or TI.
    pub fn compile(plan: &SimPlan, cfg: KernelConfig) -> Self {
        assert!(
            cfg.kind.is_unrolled(),
            "rolled kernels live in RolledKernel"
        );
        let mut instrs: Vec<Instr> = Vec::with_capacity(plan.total_ops());
        for layer in &plan.layers {
            for op in layer {
                let mut params = [0u64; 2];
                for (k, &p) in op.params.iter().take(2).enumerate() {
                    params[k] = p;
                }
                instrs.push(Instr {
                    op: op.op(),
                    out: op.out,
                    store_out: true,
                    operands: op.ins.iter().map(|&r| Operand::Slot(r)).collect(),
                    params,
                    width: op.width,
                    signed: op.signed,
                    code_addr: 0,
                });
            }
        }
        let mut kernel = UnrolledKernel {
            cfg,
            instrs,
            code_bytes: 0,
            stores_elided: 0,
            imms_inlined: 0,
            forwards: 0,
        };
        // Tensor inlining only applies to TI at the -O3 analog (at -O0
        // the compiler would not perform these bindings).
        if cfg.kind == KernelKind::Ti && cfg.opt == OptLevel::Full {
            kernel.tensor_inline(plan);
        }
        kernel.layout();
        kernel
    }

    /// The tensor-inlining peephole (TI's defining transformation).
    fn tensor_inline(&mut self, plan: &SimPlan) {
        // Slots that must stay in LI: read by commits or outputs.
        let mut pinned: HashSet<u32> = plan.commits.iter().map(|&(_, src)| src).collect();
        pinned.extend(plan.commits.iter().map(|&(dst, _)| dst));
        pinned.extend(plan.output_slots.iter().map(|(_, s)| *s));
        // Reader map: slot -> instruction indices that read it.
        let mut readers: HashMap<u32, Vec<usize>> = HashMap::new();
        for (k, instr) in self.instrs.iter().enumerate() {
            for op in &instr.operands {
                if let Operand::Slot(s) = op {
                    readers.entry(*s).or_default().push(k);
                }
            }
        }
        let (c_lo, c_hi) = plan.const_slots;
        for k in 0..self.instrs.len() {
            // Immediates: constant-slot reads become inline constants.
            let ops = self.instrs[k].operands.clone();
            for (j, op) in ops.iter().enumerate() {
                if let Operand::Slot(s) = op {
                    if *s >= c_lo && *s < c_hi {
                        self.instrs[k].operands[j] = Operand::Imm(plan.init_values[*s as usize]);
                        self.imms_inlined += 1;
                    } else if k > 0 && *s == self.instrs[k - 1].out {
                        // Forward from the previous instruction.
                        self.instrs[k].operands[j] = Operand::Acc;
                        self.forwards += 1;
                    }
                }
            }
        }
        // Dead-store elimination: a slot whose only reader is the next
        // instruction (now forwarding through Acc) and which is not
        // pinned never needs its LI store.
        for k in 0..self.instrs.len() {
            let out = self.instrs[k].out;
            if pinned.contains(&out) {
                continue;
            }
            let rs = readers.get(&out).map(Vec::as_slice).unwrap_or(&[]);
            if rs.iter().all(|&r| r == k + 1) && !rs.is_empty() {
                self.instrs[k].store_out = false;
                self.stores_elided += 1;
            }
        }
    }

    /// Assigns code addresses: every block occupies its actual encoded
    /// size, so TI's elided loads/stores shrink the stream (Table 4).
    fn layout(&mut self) {
        let mut addr = STREAM_BASE;
        for instr in &mut self.instrs {
            instr.code_addr = addr;
            addr += instr.code_bytes();
        }
        self.code_bytes = addr - STREAM_BASE;
    }

    /// The configuration.
    pub fn config(&self) -> KernelConfig {
        self.cfg
    }

    /// Static code footprint: the whole design is instructions (Table 4's
    /// SU/TI rows).
    pub fn code_bytes(&self) -> u64 {
        0x1000 + self.code_bytes // interpreter prologue + stream
    }

    /// OIM data resident in memory: none — it is embedded in the code.
    pub fn data_bytes(&self) -> u64 {
        0
    }

    /// Number of straight-line instruction blocks.
    pub fn num_instrs(&self) -> usize {
        self.instrs.len()
    }

    /// One simulated clock cycle.
    pub fn step<P: Probe>(&self, st: &mut LiState, probe: &mut P) {
        let o0 = match self.cfg.opt {
            OptLevel::Full => 1,
            OptLevel::None => 4,
        };
        let mut buf: Vec<u64> = Vec::with_capacity(16);
        let mut acc = 0u64;
        for instr in &self.instrs {
            buf.clear();
            for op in &instr.operands {
                match op {
                    Operand::Slot(s) => {
                        probe.load(li_addr(*s));
                        buf.push(st.li[*s as usize]);
                    }
                    Operand::Imm(v) => buf.push(*v),
                    Operand::Acc => buf.push(acc),
                }
            }
            probe.exec(
                instr.code_addr,
                exec_cost(instr.op, instr.operands.len()) * o0,
            );
            let raw = eval_raw(instr.op, &instr.params[..param_count(instr.op)], &buf);
            let v = canonicalize(raw, instr.width as u32, instr.signed);
            if instr.store_out {
                probe.store(li_addr(instr.out));
                st.li[instr.out as usize] = v;
            }
            acc = v;
        }
        st.commit(probe, usize::MAX, LiState::commit_code_addr());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{MemProbe, NoProbe};
    use rand::{Rng, SeedableRng};
    use rteaal_dfg::plan::{plan, PlanSim};
    use rteaal_firrtl::{lower::lower_typed, parser::parse};
    use rteaal_perfmodel::Machine;

    const DESIGN: &str = "\
circuit D :
  module D :
    input clock : Clock
    input x : UInt<16>
    input sel : UInt<1>
    output out : UInt<16>
    output flag : UInt<1>
    reg a : UInt<16>, clock
    reg b : UInt<16>, clock
    node s = tail(add(a, x), 1)
    node t = xor(b, cat(bits(x, 7, 0), bits(x, 15, 8)))
    a <= mux(sel, s, t)
    b <= tail(sub(a, xor(x, UInt<16>(0xff))), 1)
    out <= a
    flag <= orr(b)
";

    fn plan_of(src: &str) -> SimPlan {
        plan(&rteaal_dfg::build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap())
    }

    #[test]
    fn su_and_ti_match_plan_sim() {
        let p = plan_of(DESIGN);
        for kind in [KernelKind::Su, KernelKind::Ti] {
            let kernel = UnrolledKernel::compile(&p, KernelConfig::new(kind));
            let mut st = LiState::new(&p);
            let mut golden = PlanSim::new(&p);
            let mut rng = rand::rngs::StdRng::seed_from_u64(kind as u64 + 10);
            for _ in 0..300 {
                let x: u64 = rng.gen();
                let sel: u64 = rng.gen();
                st.set_input(0, x);
                st.set_input(1, sel);
                golden.set_input(0, x);
                golden.set_input(1, sel);
                kernel.step(&mut st, &mut NoProbe);
                golden.step();
                assert_eq!(st.output(0), golden.output(0), "{kind:?} out diverged");
                assert_eq!(st.output(1), golden.output(1), "{kind:?} flag diverged");
            }
        }
    }

    #[test]
    fn ti_transformations_fire_and_preserve_behavior() {
        let p = plan_of(DESIGN);
        let ti = UnrolledKernel::compile(&p, KernelConfig::new(KernelKind::Ti));
        assert!(ti.imms_inlined > 0, "constants should inline");
        // Behavior check even when forwarding/elision fire.
        let su = UnrolledKernel::compile(&p, KernelConfig::new(KernelKind::Su));
        let mut s1 = LiState::new(&p);
        let mut s2 = LiState::new(&p);
        for c in 0..100u64 {
            s1.set_input(0, c.wrapping_mul(0x9e37));
            s1.set_input(1, c & 1);
            s2.set_input(0, c.wrapping_mul(0x9e37));
            s2.set_input(1, c & 1);
            su.step(&mut s1, &mut NoProbe);
            ti.step(&mut s2, &mut NoProbe);
            assert_eq!(s1.output(0), s2.output(0));
            assert_eq!(s1.output(1), s2.output(1));
        }
    }

    #[test]
    fn ti_executes_fewer_dynamic_instructions_than_su() {
        let p = plan_of(DESIGN);
        let run = |kind| {
            let kernel = UnrolledKernel::compile(&p, KernelConfig::new(kind));
            let mut st = LiState::new(&p);
            let mut mem = Machine::intel_core().mem_sim();
            let mut probe = MemProbe::new(&mut mem);
            for _ in 0..20 {
                kernel.step(&mut st, &mut probe);
            }
            (probe.counters.instructions, probe.counters.loads)
        };
        let (su_i, su_l) = run(KernelKind::Su);
        let (ti_i, ti_l) = run(KernelKind::Ti);
        assert!(ti_i < su_i, "TI {ti_i} !< SU {su_i}");
        assert!(ti_l < su_l, "TI loads {ti_l} !< SU loads {su_l}");
    }

    #[test]
    fn ti_code_is_smaller_than_su() {
        // Table 4: TI 5.3 MB < SU 6.0 MB.
        let p = plan_of(DESIGN);
        let su = UnrolledKernel::compile(&p, KernelConfig::new(KernelKind::Su));
        let ti = UnrolledKernel::compile(&p, KernelConfig::new(KernelKind::Ti));
        assert!(ti.code_bytes() < su.code_bytes());
        assert_eq!(su.data_bytes(), 0);
    }

    #[test]
    fn code_grows_linearly_with_design() {
        // Two copies of the logic ≈ twice the stream.
        let small = plan_of(DESIGN);
        let big_src = DESIGN.replace(
            "    out <= a\n",
            "    reg c : UInt<16>, clock\n    c <= tail(add(b, x), 1)\n    out <= xor(a, c)\n",
        );
        let big = plan_of(&big_src);
        let k_small = UnrolledKernel::compile(&small, KernelConfig::new(KernelKind::Su));
        let k_big = UnrolledKernel::compile(&big, KernelConfig::new(KernelKind::Su));
        assert!(k_big.code_bytes() > k_small.code_bytes());
        assert!(k_big.num_instrs() > k_small.num_instrs());
    }

    #[test]
    fn su_o0_matches_su_o3_behavior() {
        let p = plan_of(DESIGN);
        let k3 = UnrolledKernel::compile(&p, KernelConfig::new(KernelKind::Su));
        let k0 = UnrolledKernel::compile(&p, KernelConfig::unoptimized(KernelKind::Su));
        let mut s3 = LiState::new(&p);
        let mut s0 = LiState::new(&p);
        for c in 0..50u64 {
            s3.set_input(0, c * 31);
            s0.set_input(0, c * 31);
            k3.step(&mut s3, &mut NoProbe);
            k0.step(&mut s0, &mut NoProbe);
            assert_eq!(s3.output(0), s0.output(0));
        }
    }

    #[test]
    fn ti_o0_disables_inlining() {
        let p = plan_of(DESIGN);
        let ti0 = UnrolledKernel::compile(&p, KernelConfig::unoptimized(KernelKind::Ti));
        assert_eq!(ti0.imms_inlined, 0);
        assert_eq!(ti0.forwards, 0);
    }
}
