//! C++ kernel source emission.
//!
//! The paper's compiler generates a C++ simulation kernel and compiles it
//! with clang (Figure 14). This module emits the equivalent C++ source
//! text for each kernel configuration so the repository has a concrete
//! artifact for "generated code": rolled kernels emit a fixed interpreter
//! whose size is independent of the design; SU/TI emit one statement per
//! operation, growing linearly — the Table 4 contrast in source form.

use crate::config::{KernelConfig, KernelKind};
use rteaal_dfg::op::{DfgOp, NUM_OPCODES};
use rteaal_dfg::SimPlan;
use std::fmt::Write as _;

/// Emits the C++ source for a kernel configuration over a plan.
pub fn emit_cpp(plan: &SimPlan, config: KernelConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// RTeAAL Sim generated kernel: {} for design {}",
        config, plan.name
    );
    let _ = writeln!(out, "#include <cstdint>");
    let _ = writeln!(out, "extern uint64_t LI[{}];", plan.num_slots);
    if config.kind.is_unrolled() {
        emit_unrolled(&mut out, plan, config);
    } else {
        emit_rolled(&mut out, plan, config);
    }
    out
}

fn cpp_expr(op: DfgOp, args: &[String], params: &[u64]) -> String {
    use DfgOp::*;
    match op {
        Add => format!("{} + {}", args[0], args[1]),
        Sub => format!("{} - {}", args[0], args[1]),
        Mul => format!("{} * {}", args[0], args[1]),
        Divu | Divs => format!("{} ? {} / {} : 0", args[1], args[0], args[1]),
        Remu | Rems => format!("{} ? {} % {} : 0", args[1], args[0], args[1]),
        And => format!("{} & {}", args[0], args[1]),
        Or => format!("{} | {}", args[0], args[1]),
        Xor => format!("{} ^ {}", args[0], args[1]),
        Ltu | Lts => format!("{} < {}", args[0], args[1]),
        Leu | Les => format!("{} <= {}", args[0], args[1]),
        Gtu | Gts => format!("{} > {}", args[0], args[1]),
        Geu | Ges => format!("{} >= {}", args[0], args[1]),
        Eq => format!("{} == {}", args[0], args[1]),
        Neq => format!("{} != {}", args[0], args[1]),
        Dshl => format!("{} << {}", args[0], args[1]),
        Dshr => format!("{} >> {}", args[0], args[1]),
        Cat => format!("({} << {}) | {}", args[0], params[1], args[1]),
        Not => format!("~{}", args[0]),
        Neg => format!("-{}", args[0]),
        Andr => format!(
            "{} == 0x{:x}",
            args[0],
            rteaal_firrtl::ty::mask(params[0] as u32)
        ),
        Orr => format!("{} != 0", args[0]),
        Xorr => format!("__builtin_parityll({})", args[0]),
        Shl => format!("{} << {}", args[0], params[0]),
        Shr => format!("{} >> {}", args[0], params[0]),
        Bits => format!(
            "({} >> {}) & 0x{:x}",
            args[0],
            params[1],
            rteaal_firrtl::ty::mask((params[0] - params[1] + 1) as u32)
        ),
        Head => format!("{} >> {}", args[0], params[1] - params[0]),
        Resize | Identity => args[0].clone(),
        Mux => format!("{} ? {} : {}", args[0], args[1], args[2]),
        ValidIf => format!("{} ? {} : 0", args[0], args[1]),
        MuxChain => {
            let mut s = String::new();
            let pairs = (args.len() - 1) / 2;
            for k in 0..pairs {
                let _ = write!(s, "{} ? {} : ", args[2 * k], args[2 * k + 1]);
            }
            s + &args[args.len() - 1]
        }
        Input | RegState | Const => unreachable!("sources are not emitted"),
    }
}

fn emit_rolled(out: &mut String, _plan: &SimPlan, config: KernelConfig) {
    let swizzled = config.kind.is_swizzled();
    let _ = writeln!(
        out,
        "// rolled kernel: traverses the OIM arrays loaded from JSON"
    );
    let _ = writeln!(
        out,
        "extern const uint32_t OIM_S[]; extern const uint16_t OIM_N[];"
    );
    let _ = writeln!(
        out,
        "extern const uint32_t OIM_R[]; extern const uint32_t OIM_CNT[];"
    );
    let _ = writeln!(out, "void cycle() {{");
    if swizzled {
        // One specialized loop per op type (Algorithm 4).
        let _ = writeln!(
            out,
            "  const uint32_t* s = OIM_S; const uint32_t* r = OIM_R;"
        );
        let _ = writeln!(out, "  for (int i = 0; i < NUM_LAYERS; i++) {{");
        for n in 0..NUM_OPCODES as u16 {
            let op = DfgOp::from_n_coord(n).unwrap();
            if matches!(op, DfgOp::Input | DfgOp::RegState | DfgOp::Const) {
                continue;
            }
            let arity = op.arity().unwrap_or(3);
            let args: Vec<String> = (0..arity).map(|o| format!("LI[r[{o}]]")).collect();
            let params = [1u64, 1u64];
            let _ = writeln!(
                out,
                "    for (uint32_t k = 0; k < OIM_CNT[i*{NUM_OPCODES}+{n}]; k++) {{ LI[*s++] = {}; r += {arity}; }} // {op}",
                cpp_expr(op, &args, &params)
            );
        }
        let _ = writeln!(out, "  }}");
    } else {
        // Algorithm 3: one case statement (here elided to a dispatch stub).
        let _ = writeln!(
            out,
            "  // [I, S, N, O, R] traversal with op_r[n]/op_u[n] dispatch"
        );
        let _ = writeln!(out, "  for (int i = 0; i < NUM_LAYERS; i++)");
        let _ = writeln!(out, "    for (uint32_t k = 0; k < OIM_CNT[i]; k++)");
        let _ = writeln!(out, "      dispatch(OIM_N[k], OIM_S, OIM_R);");
        for n in 0..NUM_OPCODES as u16 {
            let op = DfgOp::from_n_coord(n).unwrap();
            if matches!(op, DfgOp::Input | DfgOp::RegState | DfgOp::Const) {
                continue;
            }
            let arity = op.arity().unwrap_or(3);
            let args: Vec<String> = (0..arity).map(|o| format!("in{o}")).collect();
            let _ = writeln!(
                out,
                "  // case {n}: {op}: out = {};",
                cpp_expr(op, &args, &[1, 1])
            );
        }
    }
    let _ = writeln!(out, "}}");
}

fn emit_unrolled(out: &mut String, plan: &SimPlan, config: KernelConfig) {
    let _ = writeln!(out, "// straight-line kernel: the OIM is the code");
    let _ = writeln!(out, "void cycle() {{");
    let use_vars = config.kind == KernelKind::Ti;
    for layer in &plan.layers {
        for op in layer {
            let args: Vec<String> = op
                .ins
                .iter()
                .map(|&r| {
                    let (c_lo, c_hi) = plan.const_slots;
                    if use_vars && r >= c_lo && r < c_hi {
                        format!("0x{:x}ull", plan.init_values[r as usize])
                    } else if use_vars {
                        format!("v{r}")
                    } else {
                        format!("LI[{r}]")
                    }
                })
                .collect();
            let mut params = [0u64; 2];
            for (k, &p) in op.params.iter().take(2).enumerate() {
                params[k] = p;
            }
            let expr = cpp_expr(op.op(), &args, &params);
            let mask = rteaal_firrtl::ty::mask(op.width as u32);
            if use_vars {
                let _ = writeln!(out, "  uint64_t v{} = ({expr}) & 0x{mask:x};", op.out);
            } else {
                let _ = writeln!(out, "  LI[{}] = ({expr}) & 0x{mask:x};", op.out);
            }
        }
    }
    if use_vars {
        for &(dst, src) in &plan.commits {
            let _ = writeln!(out, "  LI[{dst}] = v{src};");
        }
    } else {
        for &(dst, src) in &plan.commits {
            let _ = writeln!(out, "  LI[{dst}] = LI[{src}];");
        }
    }
    let _ = writeln!(out, "}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rteaal_dfg::plan::plan;
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    fn plan_of(extra_regs: usize) -> SimPlan {
        let mut src = String::from(
            "\
circuit G :
  module G :
    input clock : Clock
    input x : UInt<8>
    output out : UInt<8>
",
        );
        for i in 0..extra_regs {
            src.push_str(&format!("    reg r{i} : UInt<8>, clock\n"));
        }
        src.push_str("    r0 <= tail(add(r0, xor(x, UInt<8>(3))), 1)\n");
        for i in 1..extra_regs {
            src.push_str(&format!("    r{i} <= xor(r{}, x)\n", i - 1));
        }
        src.push_str(&format!("    out <= r{}\n", extra_regs - 1));
        plan(&rteaal_dfg::build(&lower_typed(&parse(&src).unwrap()).unwrap()).unwrap())
    }

    #[test]
    fn rolled_source_is_design_independent() {
        let small = plan_of(4);
        let big = plan_of(64);
        let cfg = KernelConfig::new(KernelKind::Psu);
        assert_eq!(
            emit_cpp(&small, cfg).lines().count(),
            emit_cpp(&big, cfg).lines().count()
        );
    }

    #[test]
    fn unrolled_source_grows_with_design() {
        let small = plan_of(4);
        let big = plan_of(64);
        let cfg = KernelConfig::new(KernelKind::Su);
        let s = emit_cpp(&small, cfg);
        let b = emit_cpp(&big, cfg);
        assert!(b.len() > 4 * s.len());
        assert!(s.contains("LI["));
    }

    #[test]
    fn ti_source_uses_variables_and_immediates() {
        let p = plan_of(4);
        let src = emit_cpp(&p, KernelConfig::new(KernelKind::Ti));
        assert!(src.contains("uint64_t v"), "{src}");
        assert!(src.contains("ull"), "constants should inline:\n{src}");
    }

    #[test]
    fn swizzled_rolled_source_has_per_type_loops() {
        let p = plan_of(4);
        let src = emit_cpp(&p, KernelConfig::new(KernelKind::Nu));
        assert!(src.contains("// add"));
        assert!(src.contains("// xor"));
        assert!(src.contains("OIM_CNT"));
    }
}
