//! Execution instrumentation: the probe interface and the address-space
//! model.
//!
//! Every kernel executor is generic over a [`Probe`]. The zero-sized
//! [`NoProbe`] compiles to nothing (the fast path used for wall-clock
//! benchmarks); [`MemProbe`] drives a [`MemSim`] cache hierarchy with the
//! kernel's actual reference streams and counts dynamic instructions,
//! producing the inputs of the top-down model (Tables 5–6, Figures 7/16).
//!
//! ## Address-space model
//!
//! | region | base | contents |
//! |--------|------|----------|
//! | `LI`   | [`LI_BASE`]   | the signal slot array, 8 B/slot |
//! | OIM    | [`OIM_BASE`]… | coordinate/payload/side-table arrays |
//! | code   | [`CODE_BASE`] | rolled: interpreter + per-op handlers; unrolled: one 16-B instruction block per operation |
//!
//! Rolled kernels execute from a small fixed code region (high reuse);
//! SU/TI walk a code region proportional to the design — precisely the
//! I-cache/D-cache pressure trade-off of §5.2 and Table 6.

use rteaal_perfmodel::cache::MemSim;
use serde::{Deserialize, Serialize};

/// Base of the `LI` slot array (8 bytes per slot).
pub const LI_BASE: u64 = 0x1000_0000;
/// Base of the OIM coordinate/payload arrays; each array gets a
/// [`OIM_ARRAY_STRIDE`]-spaced region.
pub const OIM_BASE: u64 = 0x2000_0000;
/// Spacing between OIM array regions.
pub const OIM_ARRAY_STRIDE: u64 = 0x0100_0000;
/// Base of the code region.
pub const CODE_BASE: u64 = 0x4000_0000;
/// Bytes per modeled machine instruction.
pub const INSTR_BYTES: u64 = 4;
/// Code bytes reserved per opcode handler in rolled kernels.
pub const HANDLER_BYTES: u64 = 256;
/// Code bytes per operation in the unrolled (SU/TI) instruction stream.
pub const UNROLLED_OP_BYTES: u64 = 16;

/// Index of an OIM array region (for address computation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OimArray {
    /// `I`-rank payloads (ops per layer).
    IPayloads = 0,
    /// `S`-rank coordinates (output slots).
    SCoords = 1,
    /// `N`-rank coordinates (opcodes).
    NCoords = 2,
    /// `R`-rank coordinates (operand slots).
    RCoords = 3,
    /// Swizzled `N`-rank payloads (per-type counts).
    NPayloads = 4,
    /// Per-op side table (params / width).
    Meta = 5,
    /// Format (a) payload arrays (unoptimized traversal only).
    ExtraPayloads = 6,
}

/// Address of element `idx` (of `elem_bytes` each) in an OIM array.
#[inline]
pub fn oim_addr(array: OimArray, idx: usize, elem_bytes: u64) -> u64 {
    OIM_BASE + array as u64 * OIM_ARRAY_STRIDE + idx as u64 * elem_bytes
}

/// Address of `LI` slot `s`.
#[inline]
pub fn li_addr(slot: u32) -> u64 {
    LI_BASE + slot as u64 * 8
}

/// Dynamic-event counters accumulated by [`MemProbe`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Dynamic instructions.
    pub instructions: u64,
    /// Dynamic branches (loop back-edges, dispatch jumps).
    pub branches: u64,
    /// Data loads issued.
    pub loads: u64,
    /// Data stores issued.
    pub stores: u64,
}

/// The instrumentation interface. All methods default to nothing so the
/// fast path monomorphizes to straight code.
pub trait Probe {
    /// `count` machine instructions executed starting at code address
    /// `addr` (fetch stream).
    #[inline(always)]
    fn exec(&mut self, addr: u64, count: u32) {
        let _ = (addr, count);
    }

    /// A data load from `addr`.
    #[inline(always)]
    fn load(&mut self, addr: u64) {
        let _ = addr;
    }

    /// A data store to `addr`.
    #[inline(always)]
    fn store(&mut self, addr: u64) {
        let _ = addr;
    }

    /// A dynamic branch instruction (also counts as one instruction at
    /// `addr`).
    #[inline(always)]
    fn branch(&mut self, addr: u64) {
        let _ = addr;
    }
}

/// The no-op probe: the fast execution path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl Probe for NoProbe {}

/// A probe that feeds a cache hierarchy and counts events.
#[derive(Debug)]
pub struct MemProbe<'a> {
    /// The machine's cache hierarchy.
    pub mem: &'a mut MemSim,
    /// Event counters.
    pub counters: Counters,
}

impl<'a> MemProbe<'a> {
    /// Wraps a hierarchy.
    pub fn new(mem: &'a mut MemSim) -> Self {
        MemProbe {
            mem,
            counters: Counters::default(),
        }
    }
}

impl Probe for MemProbe<'_> {
    #[inline]
    fn exec(&mut self, addr: u64, count: u32) {
        self.counters.instructions += count as u64;
        // Fetch at instruction granularity; the cache dedupes by line.
        // To bound cost we touch each 16-byte fetch block once.
        let bytes = count as u64 * INSTR_BYTES;
        let mut a = addr;
        while a < addr + bytes {
            self.mem.fetch(a);
            a += 16;
        }
    }

    #[inline]
    fn load(&mut self, addr: u64) {
        self.counters.loads += 1;
        self.counters.instructions += 1;
        self.mem.load(addr);
    }

    #[inline]
    fn store(&mut self, addr: u64) {
        self.counters.stores += 1;
        self.counters.instructions += 1;
        self.mem.store(addr);
    }

    #[inline]
    fn branch(&mut self, addr: u64) {
        self.counters.branches += 1;
        self.exec(addr, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rteaal_perfmodel::Machine;

    #[test]
    fn address_regions_do_not_overlap() {
        assert!(li_addr(1 << 24) < OIM_BASE);
        assert!(oim_addr(OimArray::ExtraPayloads, 1 << 20, 8) < CODE_BASE);
    }

    #[test]
    fn mem_probe_counts_and_feeds_caches() {
        let mut mem = Machine::intel_core().mem_sim();
        let mut p = MemProbe::new(&mut mem);
        p.exec(CODE_BASE, 8);
        p.load(li_addr(3));
        p.store(li_addr(3));
        p.branch(CODE_BASE + 32);
        assert_eq!(p.counters.instructions, 8 + 1 + 1 + 1);
        assert_eq!(p.counters.loads, 1);
        assert_eq!(p.counters.stores, 1);
        assert_eq!(p.counters.branches, 1);
        let stats = mem.stats();
        assert!(stats.l1i.accesses >= 2);
        assert_eq!(stats.l1d.accesses, 2);
        assert_eq!(stats.l1d.misses, 1); // load misses, store hits
    }

    #[test]
    fn no_probe_is_free() {
        // Just exercises the default impls.
        let mut p = NoProbe;
        p.exec(0, 100);
        p.load(0);
        p.store(0);
        p.branch(0);
    }
}
