//! # rteaal-kernels
//!
//! The seven RTeAAL Sim kernels (paper §5.2) and their instrumentation.
//!
//! - [`config`]: kernel configurations — RU/OU/NU/PSU/IU/SU/TI, the
//!   `-O3`/`-O0` compile analog, and the 8/24 partial-unroll factors.
//! - [`rolled`]: the OIM-traversing kernels (Algorithms 3 and 4).
//! - [`unrolled`]: the straight-line kernels, including TI's tensor
//!   inlining (immediates, accumulator forwarding, dead-store elision).
//! - [`kernel`]: the [`Kernel`] facade — compile, simulate, and profile.
//! - [`profile`]: the probe interface and address-space model that feed
//!   the `rteaal-perfmodel` cache hierarchy with real reference streams.
//! - [`codegen`]: C++ source emission (the Figure 14 artifact).
//! - [`batch`]: the batched, layer-parallel engine — `B` stimulus lanes
//!   per `LI` slot, ops split across threads within each layer, each op
//!   pre-lowered to a specialized lane kernel (with the interpreted walk
//!   retained as the differential golden model).
//!
//! ## Example
//!
//! ```
//! use rteaal_firrtl::{parser::parse, lower::lower_typed};
//! use rteaal_dfg::{build, plan::plan};
//! use rteaal_kernels::{Kernel, KernelConfig, KernelKind};
//!
//! let src = "\
//! circuit Acc :
//!   module Acc :
//!     input clock : Clock
//!     input x : UInt<8>
//!     output out : UInt<8>
//!     reg acc : UInt<8>, clock
//!     acc <= tail(add(acc, x), 1)
//!     out <= acc
//! ";
//! let plan = plan(&build(&lower_typed(&parse(src)?)?)?);
//! let mut kernel = Kernel::compile(&plan, KernelConfig::new(KernelKind::Psu));
//! kernel.set_input(0, 3);
//! kernel.run(4);
//! assert_eq!(kernel.output(0), 12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod batch;
pub mod codegen;
pub mod config;
pub mod kernel;
pub mod profile;
pub mod rolled;
pub mod state;
pub mod unrolled;

pub use batch::{BatchKernel, BatchLiState, LanePoker, LayerSample};
pub use config::{KernelConfig, KernelKind, OptLevel, ALL_KERNELS};
pub use kernel::{CompileReport, Kernel};
pub use rteaal_dfg::lane_kernel::{BatchEngine, LaneWindow};
pub use state::LiState;
